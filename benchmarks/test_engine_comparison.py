"""Engine comparison: one CPU-bound k-means pass per execution engine.

The process engine exists to escape the GIL: slave folds run in real OS
processes, chunks cross the boundary through shared memory, and
reduction objects come back as out-of-band pickle buffers.  On a
multi-core host that turns the GIL-serialized fold pipeline into true
parallelism, so with >= 4 workers the process engine must beat the
threaded engine outright.  On a single-core host (small CI containers)
no engine can parallelize compute -- every fold serializes onto the one
core regardless of which side of a process boundary it runs on -- so
there the benchmark bounds the process engine's fork/IPC overhead
instead of asserting a speedup that is physically impossible.

Since every engine now runs the same ``SlaveRuntime`` worker loop, each
is also timed with the full pipeline on -- ``EngineOptions(prefetch=True,
chunk_cache=...)``, a warm pass then a measured pass -- so the JSON
shows what the data pipeline buys per engine, not just per feature.

Writes ``benchmarks/results/BENCH_engines.json``: one record per engine
with wall-clock (best of ROUNDS), fold/IPC/serialization timings,
shared-memory traffic, and warm pipelined wall/prefetch/cache columns,
plus the workload shape and host core count.
"""

import os
import time

import numpy as np

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.bursting.report import format_table
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_points
from repro.runtime import ClusterConfig, EngineOptions, make_engine
from repro.storage.cache import ChunkCache
from repro.storage.local import MemoryStore

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

ENGINES = ("threaded", "process", "actor")
WORKERS = 4
ROUNDS = 3
# Heavy fold per byte: large k keeps the per-group scatter-add loop hot,
# small unit groups maximize fold invocations per chunk.
K, DIM, N_POINTS, N_CHUNKS = 64, 32, 250_000, 16
GROUP_NBYTES = 16 * 1024


def build_env():
    pts = generate_points(N_POINTS, DIM, n_clusters=16, seed=41)
    spec = KMeansSpec(generate_points(K, DIM, seed=42))
    stores = {"local": MemoryStore("local")}
    index = write_dataset(
        pts, spec.fmt, stores["local"], n_files=4,
        chunk_units=N_POINTS // N_CHUNKS,
    )
    index = distribute_dataset(index, stores, {"local": 1.0}, stores["local"])
    clusters = [ClusterConfig("local", "local", WORKERS, 2)]
    return pts, spec, stores, index, clusters


def time_engine(name, spec, stores, index, clusters, ref):
    best, stats = None, None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        rr = make_engine(
            name, clusters, stores, group_nbytes=GROUP_NBYTES
        ).run(spec, index)
        wall = time.perf_counter() - t0
        np.testing.assert_allclose(
            rr.result.centroids, ref.centroids,
            err_msg=f"{name} centroids diverged",
        )
        if best is None or wall < best:
            best, stats = wall, rr.stats
    row = stats.breakdown_rows()[0]
    return {
        "engine": name,
        "workers": WORKERS,
        "wall_s": round(best, 4),
        "rounds": ROUNDS,
        "processing_s": row["processing_s"],
        "ipc_s": row["ipc_s"],
        "ser_s": row["ser_s"],
        "shm_nbytes": stats.shm_nbytes,
        "fold_s": round(stats.fold_s, 4),
        "fold_ns_per_byte": round(stats.fold_ns_per_byte, 3),
        "n_fold_calls": stats.n_fold_calls,
        "n_copies": stats.n_copies,
    }


def time_pipelined(name, spec, stores, index, clusters, ref):
    """One warm pipelined pass: prefetch on, chunk cache pre-loaded.

    The first pass fills the cache (an iterative workload's iteration
    1); the measured second pass is iteration 2+, where every fetch is
    a cache hit and the prefetcher overlaps what little retrieval
    remains with folding.  Same ``EngineOptions`` object on all three
    engines -- that the option set is engine-agnostic is the point.
    """
    cache = ChunkCache(256 << 20)
    opts = EngineOptions(
        group_nbytes=GROUP_NBYTES, prefetch=True, chunk_cache=cache,
    )
    make_engine(name, clusters, stores, options=opts).run(spec, index)
    t0 = time.perf_counter()
    rr = make_engine(name, clusters, stores, options=opts).run(spec, index)
    wall = time.perf_counter() - t0
    np.testing.assert_allclose(
        rr.result.centroids, ref.centroids,
        err_msg=f"{name} pipelined centroids diverged",
    )
    return {
        "pipelined_wall_s": round(wall, 4),
        "prefetch_hits": rr.stats.prefetch_hits,
        "cache_hits": rr.stats.cache_hits,
        "cache_hit_rate": round(rr.stats.cache_hit_rate, 3),
    }


def test_engine_comparison(benchmark, record_table, write_bench_json):
    pts, spec, stores, index, clusters = build_env()
    ref = lloyd_step(pts, spec.centroids)

    def run_all():
        rows = []
        for name in ENGINES:
            row = time_engine(name, spec, stores, index, clusters, ref)
            row.update(time_pipelined(name, spec, stores, index, clusters, ref))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by = {r["engine"]: r for r in rows}
    threaded_wall = by["threaded"]["wall_s"]
    for r in rows:
        r["speedup_vs_threaded"] = round(threaded_wall / r["wall_s"], 3)

    n_cpus = os.cpu_count() or 1
    payload = {
        "workload": {
            "app": "kmeans", "k": K, "dim": DIM, "points": N_POINTS,
            "chunks": N_CHUNKS, "group_nbytes": GROUP_NBYTES,
            # Self-describing BENCH metadata: the transfer/fold settings
            # these numbers were measured under.
            "codec": None,
            "batch_fold": EngineOptions().batch_fold,
        },
        "cpus": n_cpus,
        "engines": rows,
    }
    write_bench_json("engines", payload)
    record_table(
        "BENCH_engines",
        format_table(
            rows, f"Execution engines -- kmeans, {WORKERS} workers, "
            f"{n_cpus} host cpu(s), best of {ROUNDS}",
        ),
    )

    # The chunk path really went through shared memory, and the
    # in-process engines pay no IPC at all.
    assert by["process"]["shm_nbytes"] > 0
    assert by["threaded"]["ipc_s"] == 0.0
    assert by["threaded"]["shm_nbytes"] == 0

    # The unified pipeline works on every engine: the warm pass served
    # every chunk from the shared cache, no matter the transport.
    for r in rows:
        assert r["cache_hits"] == N_CHUNKS, (
            f"{r['engine']}: warm pass hit cache {r['cache_hits']}/"
            f"{N_CHUNKS} times"
        )

    proc_wall = by["process"]["wall_s"]
    if n_cpus >= 2:
        # The point of the process engine: folds escape the GIL, so
        # with 4 workers it must win on CPU-bound kmeans.
        assert proc_wall < threaded_wall, (
            f"process {proc_wall}s did not beat threaded {threaded_wall}s "
            f"on {n_cpus} cpus"
        )
    else:
        # Single core: speedup is physically impossible; fork + shm +
        # queue overhead must stay within a modest envelope instead.
        assert proc_wall < 1.6 * threaded_wall + 0.2, (
            f"process overhead out of envelope: {proc_wall}s vs "
            f"threaded {threaded_wall}s on 1 cpu"
        )
