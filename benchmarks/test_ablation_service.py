"""Extension bench: multi-tenant service vs sequential one-shot runs.

The multi-tenant :class:`~repro.service.BurstingService` keeps one
slave fleet alive and interleaves concurrent jobs chunk-by-chunk, so
the dead time a one-shot run pays at its tail -- the drain barrier
while stragglers finish, plus the serialize/ship/global-reduce epilogue
-- overlaps with other jobs' useful work.  K sequential one-shot runs
pay that tail K times; the service pays it roughly once.

Two claims are asserted and recorded:

* **makespan**: K=4 jobs submitted concurrently to one service finish
  sooner than the same 4 jobs run back-to-back as one-shot engine runs;
* **fairness**: with two tenants at weights 2:1 submitting identical
  work, the chunks served to each tenant while both still hold work
  track the weight ratio to within 25%.

Writes ``benchmarks/results/BENCH_service.json``; ``SERVICE_PROFILE=
tiny`` shrinks the workload for the CI perf-smoke leg.
"""

import os
import time

from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.bursting.report import format_table
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_tokens
from repro.runtime import ClusterConfig, make_engine
from repro.service import BurstingService, TenantConfig
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store

TINY = os.environ.get("SERVICE_PROFILE", "").lower() == "tiny"

N_TOKENS = 20_000 if TINY else 90_000
N_CHUNKS = 16 if TINY else 24
#: Simulated cloud fetch latency: gives every run a straggler tail the
#: service can overlap with other jobs' work.
FETCH_LATENCY_S = 0.002 if TINY else 0.004
K_JOBS = 4
WEIGHTS = {"analytics": 2.0, "ingest": 1.0}

CLUSTERS = [
    ClusterConfig("local", "local", 2, 2),
    ClusterConfig("cloud", "cloud", 2, 2),
]


def build_env():
    stores = {
        "local": MemoryStore("local"),
        "cloud": SimulatedS3Store(
            profile=S3Profile(request_latency_s=FETCH_LATENCY_S)
        ),
    }
    toks = generate_tokens(N_TOKENS, 400, seed=91)
    spec = WordCountSpec()
    index = write_dataset(
        toks, spec.fmt, stores["local"], n_files=4,
        chunk_units=max(1, N_TOKENS // N_CHUNKS),
    )
    index = distribute_dataset(
        index, stores, {"local": 0.25, "cloud": 0.75}, stores["local"]
    )
    return stores, index, spec, wordcount_exact(toks)


def run_sequential(stores, index, spec, ref):
    """K back-to-back one-shot engine runs (the historical session path)."""
    t0 = time.perf_counter()
    for _ in range(K_JOBS):
        rr = make_engine("threaded", CLUSTERS, stores, batch_size=1).run(
            spec, index
        )
        assert rr.result == ref, "sequential run diverged"
    return time.perf_counter() - t0


def run_concurrent(stores, index, spec, ref):
    """K jobs on one service: 2 per tenant, weights 2:1."""
    service = BurstingService(
        CLUSTERS, stores, batch_size=1,
        tenants={t: TenantConfig(weight=w) for t, w in WEIGHTS.items()},
    )
    tenants = ["analytics", "ingest", "analytics", "ingest"]
    t0 = time.perf_counter()
    try:
        handles = [
            service.submit(spec, index, tenant=t) for t in tenants[:K_JOBS]
        ]
        for h in handles:
            assert h.result(timeout=120).result == ref, "service run diverged"
        makespan = time.perf_counter() - t0
        done_times = {
            t: sorted(
                ts
                for h in handles
                if h.tenant == t
                for ts in h.chunk_done_times()
            )
            for t in WEIGHTS
        }
    finally:
        service.shutdown()
    return makespan, done_times


def fairness_ratio(done_times):
    """Served-chunk ratio while both tenants still held work.

    Cut at the moment the first tenant drained completely; past that
    point the survivor gets the whole fleet and the ratio is
    meaningless.
    """
    t_cut = min(max(ts) for ts in done_times.values())
    served = {
        t: sum(1 for x in ts if x <= t_cut) for t, ts in done_times.items()
    }
    return served["analytics"] / max(1, served["ingest"]), served, t_cut


def test_service_ablation(benchmark, record_table, write_bench_json):
    stores, index, spec, ref = build_env()

    def run_all():
        seq_s = run_sequential(stores, index, spec, ref)
        conc_s, done_times = run_concurrent(stores, index, spec, ref)
        ratio, served, t_cut = fairness_ratio(done_times)
        return seq_s, conc_s, ratio, served, t_cut

    seq_s, conc_s, ratio, served, t_cut = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    weight_ratio = WEIGHTS["analytics"] / WEIGHTS["ingest"]
    rows = [
        {
            "mode": "sequential (4 one-shot runs)",
            "makespan_s": round(seq_s, 3),
            "speedup": 1.0,
        },
        {
            "mode": "service (4 concurrent jobs)",
            "makespan_s": round(conc_s, 3),
            "speedup": round(seq_s / conc_s, 2),
        },
    ]
    record_table(
        "ablation_service",
        format_table(
            rows,
            f"Extension -- multi-tenant service vs sequential "
            f"({K_JOBS} wordcount jobs, {N_CHUNKS} chunks each)",
        )
        + f"\n\nfair-share while contended (weights 2:1, cut at "
        f"{t_cut:.3f}s):\n"
        f"  analytics served {served['analytics']}, "
        f"ingest served {served['ingest']}  "
        f"(ratio {ratio:.2f} vs weight ratio {weight_ratio:.1f})",
    )
    write_bench_json(
        "service",
        {
            "workload": {
                "k_jobs": K_JOBS,
                "n_tokens": N_TOKENS,
                "n_chunks": N_CHUNKS,
                "fetch_latency_s": FETCH_LATENCY_S,
                "weights": WEIGHTS,
            },
            "makespan": {
                "sequential_s": round(seq_s, 4),
                "concurrent_s": round(conc_s, 4),
                "speedup": round(seq_s / conc_s, 3),
            },
            "fairness": {
                "served": served,
                "cut_s": round(t_cut, 4),
                "ratio": round(ratio, 3),
                "weight_ratio": weight_ratio,
                "tolerance": 0.25,
            },
        },
        profile="tiny" if TINY else "full",
    )
    # Tripwires: concurrency must win, fairness must track the weights.
    assert conc_s < seq_s, (
        f"service makespan {conc_s:.3f}s did not beat sequential {seq_s:.3f}s"
    )
    assert weight_ratio * 0.75 <= ratio <= weight_ratio * 1.25, (
        f"fair-share ratio {ratio:.2f} outside 25% of {weight_ratio}"
    )
