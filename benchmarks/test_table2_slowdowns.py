"""Table II: slowdowns of the applications with respect to data distribution.

Regenerates global-reduction time, idle time, extra local retrieval, and
total slowdown vs env-local for every application and hybrid
configuration, plus the headline number: the average slowdown of cloud
bursting over centralized processing.

Paper shape: average slowdown 15.55%; knn grows 1.7% -> 15.4% -> 45.9%;
kmeans stays under 1.4%; pagerank pays a visible global-reduction cost.
"""

from repro.bursting.driver import run_paper_sweep
from repro.bursting.report import average_slowdown_pct, format_table, table2_rows

PAPER_NOTES = """\
Paper reference (Table II):
  - average slowdown of bursting vs centralized: 15.55%
  - knn: 1.7% / 15.4% / 45.9% (data retrieval dominates the slowdown)
  - kmeans: worst case 1.4% (compute hides all overheads)
  - pagerank: global reduction is significant (large reduction object)"""


def test_table2_slowdowns(benchmark, record_table):
    def sweep_all():
        return {app: run_paper_sweep(app) for app in ("knn", "kmeans", "pagerank")}

    per_app = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    sections = []
    for app, results in per_app.items():
        sections.append(
            format_table(table2_rows(results), f"Table II -- slowdowns ({app})")
        )
    avg = average_slowdown_pct(per_app)
    sections.append(f"Average hybrid slowdown: {avg:.2f}%  (paper: 15.55%)")
    record_table("table2_slowdowns", "\n\n".join(sections) + "\n\n" + PAPER_NOTES)

    assert 8.0 < avg < 25.0
    knn = {r["env"]: r["slowdown_pct"] for r in table2_rows(per_app["knn"])}
    assert knn["env-50/50"] < knn["env-33/67"] < knn["env-17/83"]
    assert knn["env-17/83"] > 25.0
    kmeans = [abs(r["slowdown_pct"]) for r in table2_rows(per_app["kmeans"])]
    assert max(kmeans) < 5.0
