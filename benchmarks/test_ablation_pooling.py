"""Ablation: pooling + work stealing vs strict co-location.

The paper's conclusion claims "our middleware is able to effectively
balance the amount of computation at both ends, even if the initial
data distribution is not even".  This ablation disables work stealing
(a :class:`StaticScheduler` that only co-locates, like conventional
MapReduce deployments) and measures the cost across the three data
skews of Figure 3, for knn.
"""

from repro.bursting.config import paper_environments
from repro.bursting.driver import simulate_environment
from repro.bursting.report import format_table
from repro.runtime.scheduler import StaticScheduler
from repro.sim.calibration import APP_PROFILES

PAPER_NOTES = """\
Paper reference (Section VI, conclusion 2):
  - pooling + stealing balances computation across clusters even under
    skewed data placement; without stealing the data-poor cluster idles
    and the data-rich cluster becomes the critical path
  - the penalty of disabling stealing grows with the skew"""


def test_ablation_pooling_vs_static(benchmark, record_table):
    envs = [
        e for e in paper_environments(APP_PROFILES["knn"])
        if e.local_cores and e.cloud_cores
    ]

    def run_all():
        rows = []
        for env in envs:
            stealing = simulate_environment("knn", env)
            static = simulate_environment(
                "knn", env, scheduler_factory=StaticScheduler
            )
            rows.append(
                {
                    "env": env.name,
                    "stealing_total_s": round(stealing.total_s, 2),
                    "static_total_s": round(static.total_s, 2),
                    "static_penalty_pct": round(
                        100 * (static.total_s - stealing.total_s) / stealing.total_s, 1
                    ),
                    "local_idle_static_s": round(
                        static.stats.clusters["local"].idle_s, 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_table(
        "ablation_pooling",
        format_table(rows, "Ablation -- work stealing vs strict co-location (knn)")
        + "\n\n" + PAPER_NOTES,
    )
    penalties = [r["static_penalty_pct"] for r in rows]
    # Stealing never loses, and its advantage grows with data skew.
    assert all(p >= -1.0 for p in penalties)
    assert penalties == sorted(penalties)
    assert penalties[-1] > 15.0
    # Without stealing, the data-poor cluster idles for a long time.
    assert rows[-1]["local_idle_static_s"] > 5.0
