"""Table I: job assignment per application and environment.

Regenerates, for each application and data distribution, how many jobs
each cluster processed and how many of those were stolen (data at the
other site).

Paper shape: both clusters process comparable job counts in every
hybrid configuration (pooling balances load), and the local cluster's
stolen-job count rises as its local data share shrinks.
"""

from repro.bursting.driver import run_paper_sweep
from repro.bursting.report import format_table, table1_rows

PAPER_NOTES = """\
Paper reference (Table I):
  - total jobs = 960 in every cell
  - stolen jobs (right of the dotted line in the paper) grow with the
    skew toward S3: 50/50 < 33/67 < 17/83"""


def test_table1_jobs(benchmark, record_table):
    def sweep_all():
        return {app: run_paper_sweep(app) for app in ("knn", "kmeans", "pagerank")}

    per_app = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    sections = []
    for app, results in per_app.items():
        rows = table1_rows(results)
        sections.append(format_table(rows, f"Table I -- job assignment ({app})"))
        # Every job processed exactly once.
        for r in rows:
            assert r["local_jobs"] + r["cloud_jobs"] == 960
        hybrid = {r["env"]: r for r in rows}
        stolen = [
            hybrid[e]["local_stolen"] + hybrid[e]["cloud_stolen"]
            for e in ("env-50/50", "env-33/67", "env-17/83")
        ]
        assert stolen[0] < stolen[1] < stolen[2], app
    record_table("table1_jobs", "\n\n".join(sections) + "\n\n" + PAPER_NOTES)
