"""Figure 3(b): k-means cloud-bursting execution over the five environments.

kmeans uses more cloud cores (44 all-cloud, 22 hybrid) because m1.large
cores are slower; the paper equalized throughput.

Paper shape: computation dominates; hybrid overheads are tiny (worst
slowdown 1.4%) -- compute-intensive applications exploit cloud bursting
with very little penalty.
"""

from repro.bursting.driver import run_paper_sweep
from repro.bursting.report import fig3_rows, format_table, table2_rows

PAPER_NOTES = """\
Paper reference (Fig. 3b, kmeans):
  - computation dominates retrieval in every environment
  - cores: env-local (32,0), env-cloud (0,44), hybrids (16,22)
  - worst-case total slowdown only 1.4%; sync overheads 1% - 4.1%"""


def test_fig3_kmeans(benchmark, record_table):
    results = benchmark.pedantic(run_paper_sweep, args=("kmeans",), rounds=3, iterations=1)
    rows = fig3_rows(results)
    record_table(
        "fig3_kmeans",
        format_table(rows, "Figure 3(b) -- kmeans execution breakdown (simulated seconds)")
        + "\n\n" + PAPER_NOTES,
    )
    by_env = {(r["env"], r["cluster"]): r for r in rows}
    # Compute-dominated everywhere.
    for key, r in by_env.items():
        assert r["processing_s"] > r["retrieval_s"], key
    # Hybrid slowdowns tiny.
    for r in table2_rows(results):
        assert abs(r["slowdown_pct"]) < 5.0
    # The cloud cluster really has 22 cores in hybrids, 44 standalone.
    assert by_env[("env-cloud", "cloud")]["cores"] == 44
    assert by_env[("env-50/50", "cloud")]["cores"] == 22
