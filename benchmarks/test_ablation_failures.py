"""Ablation: overhead of worker failures under dynamic reassignment.

Not a table in the poster paper, but the direct consequence of its
pooling design (and the subject of the authors' fault-tolerance
follow-up): because jobs are pulled on demand, a dead core's pending
work simply flows to the survivors -- the cost of losing k of 16 local
cores mid-run should be close to the lost capacity fraction, not a
restart of the whole run.
"""

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index
from repro.bursting.report import format_table
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.simrun import FailureSpec, simulate_run

PAPER_NOTES = """\
Design consequence of pooling (Sections III-B, VI):
  - on-demand job distribution makes worker loss a capacity loss, not a
    correctness event; the run completes with all 960 jobs processed
  - overhead stays near the lost-capacity fraction x remaining runtime"""


def test_ablation_failures(benchmark, record_table):
    env = EnvironmentConfig("h", 0.5, 16, 16)
    profile = APP_PROFILES["kmeans"]
    params = ResourceParams()
    index = paper_index(profile, env)

    def run_all():
        base = simulate_run(index, env.clusters(params), profile, params, seed=0)
        rows = [
            {
                "failed_cores": 0,
                "total_s": round(base.total_s, 2),
                "overhead_pct": 0.0,
                "jobs": base.stats.jobs_processed,
            }
        ]
        t_fail = base.total_s / 2
        for k in (1, 2, 4, 8):
            res = simulate_run(
                index, env.clusters(params), profile, params, seed=0,
                failures=[FailureSpec("local", k, t_fail)],
            )
            rows.append(
                {
                    "failed_cores": k,
                    "total_s": round(res.total_s, 2),
                    "overhead_pct": round(
                        100 * (res.total_s - base.total_s) / base.total_s, 1
                    ),
                    "jobs": res.stats.jobs_processed,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_table(
        "ablation_failures",
        format_table(rows, "Ablation -- mid-run worker failures (kmeans, env-50/50, fail at T/2)")
        + "\n\n" + PAPER_NOTES,
    )
    # Correctness: every run processes all jobs.
    assert all(r["jobs"] == 960 for r in rows)
    # Overhead grows with failures but stays graceful: losing 8/32 of
    # aggregate capacity for half the run costs well under a restart.
    overheads = [r["overhead_pct"] for r in rows]
    assert overheads == sorted(overheads)
    assert overheads[-1] < 50.0
