"""Figure 4(a): kNN scalability, all data in S3, cores (4,4) -> (32,32).

Paper shape: per-doubling speedup efficiencies between 73.3% and 89.3%,
dropping once aggregate S3/WAN bandwidth saturates; sync overheads stay
small.
"""

from repro.bursting.driver import run_scalability_sweep
from repro.bursting.report import fig4_rows, format_table

PAPER_NOTES = """\
Paper reference (Fig. 4a, knn):
  - speedup efficiency per doubling: 73.3% - 89.3%
  - retrieval dominates at every scale (all data in S3)
  - cloud finishes before the cluster (its S3 path is faster)"""


def test_fig4_knn(benchmark, record_table):
    results = benchmark.pedantic(run_scalability_sweep, args=("knn",), rounds=3, iterations=1)
    rows = fig4_rows(results)
    record_table(
        "fig4_knn",
        format_table(rows, "Figure 4(a) -- knn scalability (simulated seconds)")
        + "\n\n" + PAPER_NOTES,
    )
    effs = [r["efficiency_pct"] for r in rows if r["efficiency_pct"] is not None]
    assert all(60.0 < e <= 100.0 for e in effs)
    # Efficiency degrades at the largest scale (bandwidth saturation).
    assert effs[-1] < effs[0]
    # Retrieval dominates processing at every scale.
    for r in rows:
        assert r["local_retrieval_s"] > r["local_processing_s"]
