"""Chaos ablation: erasure-coded striping vs replication.

Compares the robustness ladder's two redundancy rungs end to end
through the real threaded middleware on the *identical* seeded stall
schedule:

* **baseline+stall** -- single copy, the cloud store stalls every read:
  the unprotected p95;
* **2x replication + hedge** -- one full extra copy (2.0x storage);
  hedging races the healthy replica past the stall;
* **(k=4, m=2) striping + hedge** -- fragments spread over six stores
  (1.5x storage); fastest-4-of-6 completion masks the stalled leg at
  lower overhead than replication;
* **striping, m stores down + breaker** -- two entire stores dead after
  placement; parity decodes mask the outage with zero failed workers.

Also runs the striped outage on all three engines (results must be
bit-identical) and the DES counterpart on the same seeded-stall idea
(simulated striped run must beat the simulated baseline), so the
ablation and the simulator agree on the shape of the win.

Writes ``benchmarks/results/BENCH_erasure.json``; ``ERASURE_PROFILE=
tiny`` shrinks the workload for the CI perf-smoke job.  The completion,
overhead, and p95 assertions hold on every profile.
"""

import os
import time

from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.bursting.config import paper_environments
from repro.bursting.driver import paper_index, run_threaded_bursting
from repro.bursting.report import format_table
from repro.data.generator import generate_tokens
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.simrun import simulate_run
from repro.storage.faults import FaultInjectingStore, FaultSpec
from repro.storage.health import BreakerPolicy, HedgePolicy
from repro.storage.local import MemoryStore
from repro.storage.retry import RetryPolicy

TINY = os.environ.get("ERASURE_PROFILE", "").lower() == "tiny"

N_TOKENS = 20_000 if TINY else 120_000
VOCAB = 500
N_FILES = 6
SEED = 45
K, M = 4, 2
SPARES = ("s1", "s2", "s3", "s4")
RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.001, max_delay_s=0.001)
DOWN = FaultSpec(permanent_keys=("part",))
STALL = FaultSpec(stall_p=1.0, stall_s=0.02 if TINY else 0.05, seed=7)
HEDGE = HedgePolicy(multiplier=3.0, min_threshold_s=0.005, max_hedges=2)
BREAKER = BreakerPolicy(fail_threshold=2, recovery_s=60.0)

PAPER_NOTES = """\
Replication vs erasure coding (the redundancy rungs):
  - 2x replication masks one lost store at 2.0x storage; (4, 2) striping
    masks two lost stores at 1.5x -- more failures for less space
  - fastest-k-of-n turns a stalled fragment leg into a race the healthy
    legs win, so the striped p95 under seeded stalls stays at or below
    the replication+hedging p95 on the identical schedule
  - losing m entire stores is a rerouting event: parity decodes rebuild
    every affected chunk with zero failed workers"""


def stored_nbytes(stores):
    return sum(s.size(key) for s in stores.values() for key in s.list_keys())


def run_scenario(toks, ref, *, engine="threaded", stall_cloud=False,
                 dead=(), spares=(), replicas=0, stripe=None,
                 hedge=None, breaker=None):
    stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
    for name in spares:
        stores[name] = MemoryStore(name)
    injectors = []
    if stall_cloud:
        stores["cloud"] = FaultInjectingStore(stores["cloud"], STALL, armed=False)
        injectors.append(stores["cloud"])
    for name in dead:
        stores[name] = FaultInjectingStore(stores[name], DOWN, armed=False)
        injectors.append(stores[name])
    t0 = time.perf_counter()
    rr = run_threaded_bursting(
        WordCountSpec(), toks, stores, engine=engine, local_fraction=0.5,
        local_workers=2, cloud_workers=2, n_files=N_FILES,
        retrieval_threads=2, retry=RETRY,
        replicas=replicas, stripe=stripe, hedge=hedge, breaker=breaker,
    )
    wall = time.perf_counter() - t0
    assert rr.result == ref, "chaos must never change the answer"
    injected = sum(
        sum(inj.injection_counts().values()) for inj in injectors
    )
    return wall, rr, stored_nbytes(stores), injected


def test_erasure_ablation(benchmark, record_table, write_bench_json):
    toks = generate_tokens(N_TOKENS, VOCAB, seed=SEED)
    ref = wordcount_exact(toks)

    def run_all():
        scenarios = [
            ("single-copy", {}),
            ("single-copy+stall", {"stall_cloud": True}),
            ("2x-rep+stall+hedge",
             {"stall_cloud": True, "replicas": 1, "hedge": HEDGE}),
            ("stripe-4+2+stall+hedge",
             {"stall_cloud": True, "spares": SPARES, "stripe": (K, M),
              "hedge": HEDGE}),
            ("stripe-4+2+2-stores-down",
             {"spares": SPARES, "dead": ("s1", "s2"), "stripe": (K, M),
              "breaker": BREAKER}),
        ]
        rows = []
        base_nbytes = None
        for name, kwargs in scenarios:
            wall, rr, nbytes, injected = run_scenario(toks, ref, **kwargs)
            if base_nbytes is None:
                base_nbytes = nbytes
            stats = rr.stats
            rows.append({
                "scenario": name,
                "wall_s": round(wall, 4),
                "jobs": stats.jobs_processed,
                "failed_workers": stats.n_failed_workers,
                "storage_x": round(nbytes / base_nbytes, 3),
                "fetch_p95_ms": round(1e3 * stats.fetch_p95_s, 2),
                "n_fragments": stats.n_fragments,
                "n_parity_decodes": stats.n_parity_decodes,
                "wasted_frag_kb": round(stats.fragments_wasted_bytes / 1024, 1),
                "n_failovers": stats.n_failovers,
                "n_hedges": stats.n_hedges,
                "breaker_skips": stats.n_breaker_skips,
                "injected": injected,
            })
        # -- engine agreement: striped outage, all three engines ----------
        engine_rows = []
        for engine in ("threaded", "process", "actor"):
            _, rr, _, _ = run_scenario(
                toks, ref, engine=engine, spares=SPARES, dead=("s1", "s2"),
                stripe=(K, M), breaker=BREAKER,
            )
            engine_rows.append({
                "engine": engine,
                "jobs": rr.stats.jobs_processed,
                "failed_workers": rr.stats.n_failed_workers,
                "n_parity_decodes": rr.stats.n_parity_decodes,
                "bit_identical": rr.result == ref,
            })
        # -- DES agreement: same stall idea through the simulator ---------
        profile = APP_PROFILES["kmeans"]
        params = ResourceParams()
        env_cfg = paper_environments(profile)[0]
        index = paper_index(profile, env_cfg)
        clusters = env_cfg.clusters(params)
        stalls = {
            loc: FaultSpec(stall_p=0.3, stall_s=5.0, seed=7)
            for loc in ("local", "cloud")
        }
        sim_base = simulate_run(index, clusters, profile, params, seed=1,
                                store_stalls=stalls)
        sim_striped = simulate_run(index, clusters, profile, params, seed=1,
                                   stripe=(K, M), store_stalls=stalls)
        sim_rows = [
            {"scenario": "sim-baseline+stall",
             "total_s": round(sim_base.total_s, 2),
             "n_parity_decodes": 0},
            {"scenario": "sim-stripe-4+2+stall",
             "total_s": round(sim_striped.total_s, 2),
             "n_parity_decodes": sim_striped.stats.n_parity_decodes},
        ]
        return rows, engine_rows, sim_rows

    rows, engine_rows, sim_rows = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    by_name = {r["scenario"]: r for r in rows}

    payload = {
        "workload": {
            "app": "wordcount", "tokens": N_TOKENS, "vocab": VOCAB,
            "files": N_FILES, "seed": SEED, "k": K, "m": M,
            "stall_s": STALL.stall_s, "retry_attempts": RETRY.max_attempts,
            "profile": "tiny" if TINY else "full",
        },
        "cpus": os.cpu_count() or 1,
        "scenarios": rows,
        "engines": engine_rows,
        "sim": sim_rows,
    }
    write_bench_json("erasure", payload, profile="tiny" if TINY else "full")
    record_table(
        "BENCH_erasure",
        format_table(
            rows,
            f"Erasure-coded striping vs replication -- wordcount, "
            f"{N_TOKENS} tokens, stall {STALL.stall_s * 1e3:.0f} ms",
        )
        + "\n\n" + format_table(engine_rows, "striped outage, engine matrix")
        + "\n" + format_table(sim_rows, "DES agreement")
        + "\n\n" + PAPER_NOTES,
    )

    # -- completion: chaos never costs a job or a worker ----------------------
    n_jobs = by_name["single-copy"]["jobs"]
    for r in rows:
        assert r["jobs"] == n_jobs, f"{r['scenario']} lost jobs"
        assert r["failed_workers"] == 0, f"{r['scenario']} failed workers"
    # -- storage overhead: striping beats replication -------------------------
    rep, striped = by_name["2x-rep+stall+hedge"], by_name["stripe-4+2+stall+hedge"]
    assert 1.9 <= rep["storage_x"] <= 2.1, rep["storage_x"]
    assert 1.45 <= striped["storage_x"] <= 1.6, striped["storage_x"]
    # -- m dead stores are masked by parity, not fatal ------------------------
    outage = by_name["stripe-4+2+2-stores-down"]
    assert outage["injected"] > 0, "the outage never fired"
    assert outage["n_parity_decodes"] > 0, "no parity decode ever ran"
    assert outage["n_failovers"] > 0, "no fragment failover recorded"
    assert outage["storage_x"] < rep["storage_x"], (
        "striping must mask the outage at lower overhead than replication"
    )
    # -- fastest-k-of-n holds the p95 line vs replication+hedging -------------
    stalled = by_name["single-copy+stall"]
    assert stalled["injected"] > 0
    assert striped["fetch_p95_ms"] <= rep["fetch_p95_ms"] * 1.1, (
        f"striped p95 {striped['fetch_p95_ms']} ms above replication+hedge "
        f"p95 {rep['fetch_p95_ms']} ms"
    )
    assert striped["fetch_p95_ms"] < stalled["fetch_p95_ms"], (
        "striping must beat the unprotected stall p95"
    )
    # -- engine matrix: identical answers, zero failed workers ----------------
    for r in engine_rows:
        assert r["bit_identical"], f"{r['engine']} diverged"
        assert r["failed_workers"] == 0
        assert r["n_parity_decodes"] > 0
    # -- DES agreement: the simulator sees the same win -----------------------
    assert sim_rows[1]["total_s"] < sim_rows[0]["total_s"]
    assert sim_rows[1]["n_parity_decodes"] > 0
