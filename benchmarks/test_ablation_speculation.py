"""Ablation: speculative execution under persistent stragglers.

The related work the paper builds on (Zaharia et al., OSDI 2008) showed
Hadoop's homogeneity assumption breaks on EC2 and proposed LATE-style
backup tasks.  Our middleware's pull-based pools already absorb most
heterogeneity (slow cores simply take fewer jobs); this ablation
quantifies the residual tail and how much simplified-LATE speculation
recovers, across straggler severities.
"""

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index
from repro.bursting.report import format_table
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.simrun import StragglerSpec, simulate_run

PAPER_NOTES = """\
Context (related work [29], Zaharia et al.):
  - virtualized clouds create persistent stragglers; speculative backup
    tasks cut the job tail
  - our pull-based pools already keep slow cores lightly loaded, so the
    residual tail is one job long -- which speculation then removes"""


def test_ablation_speculation(benchmark, record_table):
    env = EnvironmentConfig("h", 0.5, 8, 8)
    profile = APP_PROFILES["kmeans"]
    params = ResourceParams()
    index = paper_index(profile, env)

    def run_all():
        base = simulate_run(index, env.clusters(params), profile, params, seed=0)
        rows = []
        for slowdown in (0.5, 0.2, 0.1, 0.05):
            stragglers = [StragglerSpec("local", 2, slowdown)]
            plain = simulate_run(
                index, env.clusters(params), profile, params, seed=0,
                stragglers=stragglers,
            )
            spec = simulate_run(
                index, env.clusters(params), profile, params, seed=0,
                stragglers=stragglers, speculation=True,
            )
            rows.append(
                {
                    "straggler_speed": slowdown,
                    "baseline_s": round(base.total_s, 1),
                    "no_spec_s": round(plain.total_s, 1),
                    "with_spec_s": round(spec.total_s, 1),
                    "recovered_pct": round(
                        100 * (plain.total_s - spec.total_s)
                        / max(plain.total_s - base.total_s, 1e-9), 1,
                    ),
                    "wasted_execs": spec.wasted_executions,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_table(
        "ablation_speculation",
        format_table(rows, "Ablation -- simplified-LATE speculation vs stragglers (kmeans)")
        + "\n\n" + PAPER_NOTES,
    )
    # Speculation is near-free at worst (wasted backups cost a little
    # bandwidth), and recovers much of the severe tails.
    for r in rows:
        assert r["with_spec_s"] <= r["no_spec_s"] * 1.02
    severe = rows[-1]
    assert severe["with_spec_s"] < severe["no_spec_s"]
    assert severe["recovered_pct"] > 30.0
