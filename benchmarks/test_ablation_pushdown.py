"""Pushdown ablation: metadata-first retrieval, selectivity x codec x engine.

The tentpole claim: when a query is selective and the data is clustered
on the filtered field, per-chunk min/max statistics let the head prune
most of the job pool *before any byte moves* -- the wire traffic drops
by the pruned fraction while the answer stays bit-identical.  This
benchmark runs the range-filtered wordcount over sorted tokens through
all three engines:

* **selectivity** -- a narrow (~5% of the value domain), medium (~25%)
  and full-domain filter; the narrow filter must cut ``bytes_wire`` by
  at least 5x, the full-domain filter must prune nothing;
* **codec None/shuffle** -- pruning composes with compression: stats
  are computed over decoded values at write time, and ``bytes_pruned``
  accounts *encoded* (wire) bytes for coded chunks;
* **engine threaded/process/actor** -- the pruning happens at the head,
  before job-pool creation, so all engines see identical plans;
* **DES agreement** -- the simulator consumes the same planner over the
  same index, so its predicted bytes saved must match the live threaded
  run within 10% (it is exact by construction).

Writes ``benchmarks/results/BENCH_pushdown.json``: one record per
(engine, codec, selectivity, mode) cell with wall-clock, wire bytes,
pruned bytes/chunks, and reorder counts.  ``PUSHDOWN_PROFILE=tiny``
shrinks the workload for the CI perf-smoke job; the soundness and
byte-accounting assertions hold on every profile.
"""

import os
import time

import numpy as np

from repro.apps.filtered import FilteredWordCountSpec, filtered_wordcount_exact
from repro.bursting.report import format_table
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.formats import tokens_format
from repro.runtime import ClusterConfig, make_engine
from repro.storage.local import MemoryStore

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

TINY = os.environ.get("PUSHDOWN_PROFILE", "").lower() == "tiny"

ENGINES = ("threaded", "process", "actor")
CODECS = (None, "shuffle")
N_TOKENS = 24_000 if TINY else 200_000
VOCAB = 1000
N_FILES = 8
CHUNKS_PER_FILE = 4
SEED = 47
WORKERS = 2

#: Filter ranges over the [0, VOCAB) token domain, by selectivity.
FILTERS = {
    "narrow": (0, VOCAB // 20 - 1),      # ~5% of the domain
    "medium": (0, VOCAB // 4 - 1),       # ~25%
    "full": (0, VOCAB - 1),              # everything: pruning must no-op
}


def build_env(codec):
    rng = np.random.default_rng(SEED)
    # Sorted tokens: clustered on the filtered field, so chunk min/max
    # ranges are narrow and the metadata can actually exclude chunks.
    toks = np.sort(rng.integers(0, VOCAB, size=N_TOKENS))
    stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
    index = write_dataset(
        toks, tokens_format(), stores["local"], n_files=N_FILES,
        chunk_units=-(-N_TOKENS // (N_FILES * CHUNKS_PER_FILE)), codec=codec,
    )
    index = distribute_dataset(
        index, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
    )
    clusters = [
        ClusterConfig("local", "local", WORKERS, 2),
        ClusterConfig("cloud", "cloud", WORKERS, 2),
    ]
    return toks, stores, index, clusters


def run_cell(engine, spec, stores, index, clusters, pushdown):
    t0 = time.perf_counter()
    rr = make_engine(
        engine, clusters, stores, batch_size=2, pushdown=pushdown
    ).run(spec, index)
    wall = time.perf_counter() - t0
    return wall, rr


def test_pushdown_ablation(benchmark, record_table, write_bench_json):
    envs = {codec: build_env(codec) for codec in CODECS}

    def sweep():
        rows = []
        for codec in CODECS:
            toks, stores, index, clusters = envs[codec]
            for sel, (lo, hi) in FILTERS.items():
                spec = FilteredWordCountSpec(lo, hi)
                ref = filtered_wordcount_exact(toks, lo, hi)
                for engine in ENGINES:
                    for mode in (None, "prune"):
                        wall, rr = run_cell(
                            engine, spec, stores, index, clusters, mode
                        )
                        assert rr.result == ref, (
                            f"{engine}/{codec}/{sel}/mode={mode} diverged"
                        )
                        rows.append({
                            "engine": engine,
                            "codec": codec or "none",
                            "selectivity": sel,
                            "filter": f"{lo}:{hi}",
                            "pushdown": mode or "off",
                            "wall_s": round(wall, 4),
                            "jobs": rr.stats.jobs_processed,
                            "bytes_wire": rr.stats.bytes_wire,
                            "bytes_pruned": rr.stats.bytes_pruned,
                            "n_pruned_chunks": rr.stats.n_pruned_chunks,
                            "n_reordered": rr.stats.n_reordered,
                        })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def cell(engine, codec, sel, mode):
        return next(
            r for r in rows
            if r["engine"] == engine and r["codec"] == (codec or "none")
            and r["selectivity"] == sel and r["pushdown"] == mode
        )

    # -- DES agreement: predicted bytes saved within 10% of live --------------
    from repro.sim.calibration import AppSimProfile, ResourceParams
    from repro.sim.simrun import SimClusterConfig, simulate_run

    des_rows = []
    for codec in CODECS:
        _toks, _stores, index, _clusters = envs[codec]
        for sel, (lo, hi) in FILTERS.items():
            sim = simulate_run(
                index,
                [SimClusterConfig("local", "local", WORKERS),
                 SimClusterConfig("cloud", "cloud", WORKERS)],
                AppSimProfile(name="filtered-wc", unit_nbytes=8,
                              compute_s_per_unit=1e-7, robj_nbytes=8 * VOCAB),
                ResourceParams(),
                pushdown=FilteredWordCountSpec(lo, hi),
            )
            live = cell("threaded", codec, sel, "prune")
            des_rows.append({
                "codec": codec or "none",
                "selectivity": sel,
                "sim_bytes_pruned": sim.stats.bytes_pruned,
                "live_bytes_pruned": live["bytes_pruned"],
                "sim_n_pruned": sim.stats.n_pruned_chunks,
                "live_n_pruned": live["n_pruned_chunks"],
            })
            tol = 0.10 * max(live["bytes_pruned"], 1)
            assert abs(sim.stats.bytes_pruned - live["bytes_pruned"]) <= tol, (
                f"{codec}/{sel}: DES predicted {sim.stats.bytes_pruned} "
                f"pruned bytes, live saved {live['bytes_pruned']}"
            )

    payload = {
        "workload": {
            "app": "filtered-wordcount", "tokens": N_TOKENS, "vocab": VOCAB,
            "files": N_FILES, "chunks_per_file": CHUNKS_PER_FILE,
            "seed": SEED, "sorted": True,
            "filters": {k: f"{lo}:{hi}" for k, (lo, hi) in FILTERS.items()},
        },
        "cells": rows,
        "des_agreement": des_rows,
    }
    write_bench_json("pushdown", payload, profile="tiny" if TINY else "full")
    record_table(
        "BENCH_pushdown",
        format_table(
            rows,
            f"Metadata-first retrieval -- filtered wordcount, {N_TOKENS} "
            f"sorted tokens, {N_FILES} files x {CHUNKS_PER_FILE} chunks",
        ),
    )

    # -- acceptance: >=5x wire reduction at high selectivity, all engines -----
    for engine in ENGINES:
        for codec in CODECS:
            off = cell(engine, codec, "narrow", "off")
            on = cell(engine, codec, "narrow", "prune")
            assert on["n_pruned_chunks"] > 0, f"{engine}/{codec}: no pruning"
            assert off["bytes_wire"] >= 5 * on["bytes_wire"], (
                f"{engine}/{codec}: narrow filter moved {on['bytes_wire']} "
                f"wire bytes vs {off['bytes_wire']} unpruned -- less than "
                "the 5x acceptance bar"
            )
            # Byte conservation: pruned + fetched == unpruned wire total.
            assert on["bytes_wire"] + on["bytes_pruned"] == off["bytes_wire"]
    # -- pruning only on proof: the full-domain filter keeps every chunk ------
    for engine in ENGINES:
        for codec in CODECS:
            full = cell(engine, codec, "full", "prune")
            assert full["n_pruned_chunks"] == 0
            assert full["bytes_wire"] == cell(
                engine, codec, "full", "off"
            )["bytes_wire"]
