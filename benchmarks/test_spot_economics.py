"""Extension bench: spot-market economics under revocation.

Composes the middleware's fault tolerance with the cost model: spot
capacity is ~70% cheaper but revocable; because revoked cores' jobs are
reassigned and survivors absorb the load, the run always completes --
revocation only trades time for the discount.  Sweeps revocation
aggressiveness and reports the time/cost distribution vs on-demand.
"""

from repro.bursting.config import EnvironmentConfig
from repro.bursting.report import format_table
from repro.cost.spot import SpotMarket, spot_analysis

PAPER_NOTES = """\
Context (spot-market follow-up literature, e.g. optimal bidding):
  - data-aware pull scheduling turns revocation into graceful capacity
    loss: all 960 jobs complete in every trial
  - the operator reads this table as an SLA: expected savings vs the
    slowdown distribution (mean and p95)"""


def test_spot_economics(benchmark, record_table):
    env = EnvironmentConfig("h", 0.5, 8, 8)

    def run_all():
        rows = []
        for rate in (0.0, 5.0, 15.0, 30.0):
            summary = spot_analysis(
                "kmeans", env,
                SpotMarket(discount=0.3, revocation_rate_per_hour=rate,
                           revocation_fraction=0.5),
                n_trials=8, seed=0,
            )
            rows.append(
                {
                    "revocations_per_h": rate,
                    "revoked_runs_pct": round(100 * summary.revocation_frequency),
                    "mean_time_s": round(summary.mean_time_s, 1),
                    "p95_time_s": round(summary.p95_time_s, 1),
                    "mean_slowdown_pct": round(summary.mean_slowdown_pct, 1),
                    "mean_savings_pct": round(summary.mean_savings_pct, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_table(
        "spot_economics",
        format_table(rows, "Extension -- spot capacity under revocation (kmeans, 8 local + 8 spot cores)")
        + "\n\n" + PAPER_NOTES,
    )
    # No revocations: pure discount, no slowdown.
    assert rows[0]["mean_slowdown_pct"] < 2.0
    assert rows[0]["mean_savings_pct"] > 60.0
    # More aggressive markets slow runs but never lose the discount.
    slowdowns = [r["mean_slowdown_pct"] for r in rows]
    assert slowdowns[-1] > slowdowns[0]
    assert all(r["mean_savings_pct"] > 40.0 for r in rows)
