"""Hot-path ablation: zero-copy decode -> batch fold, engine x codec sweep.

The decode->fold loop is where a slave spends its non-retrieval life,
and this benchmark measures exactly what the hot-path work changed:

* **batch_fold on/off** -- one ``local_reduction_batch`` call per chunk
  versus the per-unit-group Python loop, on the same engine and data;
* **codec None/shuffle** -- the zero-copy identity path (fold kernels
  alias fetch buffers / shm pages, ``n_copies == 0``) versus a real
  inflate per chunk;
* **threaded vs process** -- with decode-in-worker, the process engine
  ships encoded frames through shared memory and decompresses on worker
  cores instead of serializing decode in the parent's feeders;
* **sync vs pipelined** on the process engine -- the regression this PR
  chases: prefetch must not make the process engine *slower*.

Writes ``benchmarks/results/BENCH_hotpath.json``: one record per
(engine, batch_fold, codec) cell with wall-clock (best of ROUNDS),
``fold_s``/``fold_ns_per_byte``/``n_fold_calls``/``n_copies``, plus
sync-vs-pipelined process rows and self-describing workload metadata.

Speedup assertions are CPU-gated like ``test_engine_comparison``: on a
single-core host no transport can beat any other on CPU-bound work, so
there the envelope (not the win) is asserted.  ``HOTPATH_PROFILE=tiny``
shrinks the workload for the CI perf-smoke job, which checks only the
regression tripwires (finite per-byte cost, batch fold not slower than
1.5x the per-group loop, zero copies on the identity path).

The batch-vs-loop fold tripwire is measured on a dedicated
single-worker run: ``fold_s`` sums per-worker wall-clock intervals, and
with several workers timesharing few cores a long GIL-released batch
kernel absorbs other workers' compute into its interval, so only the
uncontended measurement reflects the kernel itself.
"""

import math
import os
import time

import numpy as np

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.bursting.report import format_table
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_points
from repro.runtime import ClusterConfig, EngineOptions, make_engine
from repro.storage.local import MemoryStore

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

TINY = os.environ.get("HOTPATH_PROFILE", "").lower() == "tiny"

ENGINES = ("threaded", "process")
CODECS = (None, "shuffle")
WORKERS = 4
ROUNDS = 1 if TINY else 3
K, DIM = 64, 32
N_POINTS = 30_000 if TINY else 250_000
N_CHUNKS = 8 if TINY else 16
GROUP_NBYTES = 16 * 1024  # small groups keep the per-group loop honest


def build_env(codec):
    pts = generate_points(N_POINTS, DIM, n_clusters=16, seed=41)
    spec = KMeansSpec(generate_points(K, DIM, seed=42))
    stores = {"local": MemoryStore("local")}
    index = write_dataset(
        pts, spec.fmt, stores["local"], n_files=4,
        chunk_units=N_POINTS // N_CHUNKS, codec=codec,
    )
    index = distribute_dataset(index, stores, {"local": 1.0}, stores["local"])
    clusters = [ClusterConfig("local", "local", WORKERS, 2)]
    ref = lloyd_step(pts, spec.centroids)
    return spec, stores, index, clusters, ref


def run_once(engine, spec, stores, index, clusters, ref, *, rounds=ROUNDS,
             **opt_kwargs):
    best, stats = None, None
    for _ in range(rounds):
        opts = EngineOptions(group_nbytes=GROUP_NBYTES, **opt_kwargs)
        t0 = time.perf_counter()
        rr = make_engine(engine, clusters, stores, options=opts).run(spec, index)
        wall = time.perf_counter() - t0
        np.testing.assert_allclose(
            rr.result.centroids, ref.centroids,
            err_msg=f"{engine} centroids diverged",
        )
        if best is None or wall < best:
            best, stats = wall, rr.stats
    return best, stats


def test_hotpath_ablation(benchmark, record_table, write_bench_json):
    envs = {codec: build_env(codec) for codec in CODECS}

    def sweep():
        rows = []
        for engine in ENGINES:
            for codec in CODECS:
                for batch_fold in (True, False):
                    spec, stores, index, clusters, ref = envs[codec]
                    wall, stats = run_once(
                        engine, spec, stores, index, clusters, ref,
                        batch_fold=batch_fold,
                    )
                    rows.append({
                        "engine": engine,
                        "codec": codec or "none",
                        "batch_fold": batch_fold,
                        "wall_s": round(wall, 4),
                        "fold_s": round(stats.fold_s, 4),
                        "fold_ns_per_byte": round(stats.fold_ns_per_byte, 3),
                        "n_fold_calls": stats.n_fold_calls,
                        "n_copies": stats.n_copies,
                        "decode_s": round(stats.decode_s, 4),
                        "shm_nbytes": stats.shm_nbytes,
                    })
        # Uncontended kernel tripwire: one worker, so fold_s intervals
        # never overlap another worker's compute.
        spec, stores, index, clusters, ref = envs[None]
        solo_clusters = [ClusterConfig("local", "local", 1, 2)]
        solo = {}
        for batch_fold in (True, False):
            _, stats = run_once(
                "threaded", spec, stores, index, solo_clusters, ref,
                rounds=max(ROUNDS, 2), batch_fold=batch_fold,
            )
            solo[batch_fold] = {
                "fold_s": round(stats.fold_s, 4),
                "n_fold_calls": stats.n_fold_calls,
            }
        # Sync vs pipelined on the process engine, default hot path.
        pipe = []
        for prefetch in (False, True):
            spec, stores, index, clusters, ref = envs[None]
            wall, stats = run_once(
                "process", spec, stores, index, clusters, ref,
                prefetch=prefetch,
            )
            pipe.append({
                "engine": "process",
                "prefetch": prefetch,
                "wall_s": round(wall, 4),
                "retrieval_s": round(
                    sum(c.retrieval_s for c in stats.clusters.values()), 4
                ),
                "overlap_s": round(
                    sum(c.overlap_s for c in stats.clusters.values()), 4
                ),
            })
        return rows, pipe, solo

    rows, pipe, solo = benchmark.pedantic(sweep, rounds=1, iterations=1)
    n_cpus = os.cpu_count() or 1

    def cell(engine, codec, batch_fold):
        return next(
            r for r in rows
            if r["engine"] == engine and r["codec"] == codec
            and r["batch_fold"] == batch_fold
        )

    payload = {
        "workload": {
            "app": "kmeans", "k": K, "dim": DIM, "points": N_POINTS,
            "chunks": N_CHUNKS, "group_nbytes": GROUP_NBYTES,
            "profile": "tiny" if TINY else "full", "rounds": ROUNDS,
        },
        "cpus": n_cpus,
        "cells": rows,
        "process_pipeline": pipe,
        "solo_fold": {
            "batch": solo[True], "per_group": solo[False], "workers": 1,
        },
    }
    write_bench_json("hotpath", payload, profile="tiny" if TINY else "full")
    record_table(
        "BENCH_hotpath",
        format_table(
            rows, f"Hot path -- kmeans, {WORKERS} workers, {n_cpus} host "
            f"cpu(s), best of {ROUNDS}",
        )
        + "\n"
        + format_table(pipe, "process engine: sync vs pipelined"),
    )

    # -- regression tripwires (every host, every profile) ---------------------
    for r in rows:
        assert math.isfinite(r["fold_ns_per_byte"]) and r["fold_ns_per_byte"] > 0
    for engine in ENGINES:
        for codec in ("none", "shuffle"):
            batch, loop = cell(engine, codec, True), cell(engine, codec, False)
            # Batch folding must collapse kernel dispatches to 1/chunk.
            assert batch["n_fold_calls"] == N_CHUNKS
            assert loop["n_fold_calls"] > batch["n_fold_calls"]
    # The batch kernel must never cost more than 1.5x the per-group loop
    # (it should be faster; the envelope absorbs timer noise).  Asserted
    # on the uncontended single-worker run -- see the module docstring.
    assert solo[True]["n_fold_calls"] == N_CHUNKS
    assert solo[True]["fold_s"] <= 1.5 * solo[False]["fold_s"] + 0.05, (
        f"solo batch fold {solo[True]['fold_s']}s vs per-group "
        f"{solo[False]['fold_s']}s"
    )
    # Zero-copy proof: on the identity path no whole-chunk copy survives
    # between wire reassembly and the fold kernels, on either engine.
    assert cell("threaded", "none", True)["n_copies"] == 0
    assert cell("process", "none", True)["n_copies"] == 0
    # The encoded threaded path pays exactly one inflate per chunk.
    assert cell("threaded", "shuffle", True)["n_copies"] == N_CHUNKS
    # Decode-in-worker: the process engine ships *encoded* frames (less
    # shm traffic than logical bytes) and the parent makes no copy.
    enc = cell("process", "shuffle", True)
    assert enc["n_copies"] == 0
    assert enc["shm_nbytes"] < cell("process", "none", True)["shm_nbytes"]

    # -- CPU-gated speed targets ----------------------------------------------
    proc = cell("process", "none", True)["wall_s"]
    thr = cell("threaded", "none", True)["wall_s"]
    sync = next(p for p in pipe if not p["prefetch"])["wall_s"]
    piped = next(p for p in pipe if p["prefetch"])["wall_s"]
    if TINY:
        return  # the smoke profile only checks the tripwires above
    if n_cpus >= 2:
        # Real cores: folds escape the GIL, so the process engine must
        # beat threaded on CPU-bound kmeans, and prefetch must not slow
        # the process engine down.
        assert proc < thr, f"process {proc}s did not beat threaded {thr}s"
        assert piped <= sync * 1.05, (
            f"pipelined {piped}s slower than sync {sync}s on process engine"
        )
    else:
        # Single core: a speedup is physically impossible; bound the
        # overhead envelope instead (same policy as the engine
        # comparison benchmark).
        assert proc < 1.6 * thr + 0.2, (
            f"process overhead out of envelope: {proc}s vs threaded {thr}s"
        )
        assert piped < 1.3 * sync + 0.2, (
            f"pipelined overhead out of envelope: {piped}s vs sync {sync}s"
        )
