"""Extension bench: the time/cost and placement trade-off surfaces.

Not a table in the poster, but the quantification its conclusion calls
for ("cloud bursting can allow flexibility in combining limited local
resources with pay-as-you-go cloud resources") and the subject of the
authors' follow-up paper.  Regenerates two curves for knn:

* time vs dollars as rented cloud cores grow (fixed 17/83 placement);
* time and dollars as the data placement shifts (fixed 16+16 cores).
"""

from repro.bursting.report import format_table
from repro.cost.placement import best_placement, placement_curve
from repro.cost.provisioning import pareto_frontier, tradeoff_curve

PAPER_NOTES = """\
Paper context (Sections I, VI; follow-up work):
  - bursting buys response time with pay-as-you-go dollars; the whole
    curve (not one point) is the deliverable for an operator
  - 'having a perfect distribution would likely minimize the total
    slowdown' -- the placement curve is U-shaped with its minimum where
    data shares match compute shares"""


def test_cost_tradeoff(benchmark, record_table):
    def run_all():
        prov = tradeoff_curve(
            "knn", local_cores=16, local_data_fraction=1 / 6,
            cloud_core_options=(0, 4, 8, 16, 32, 64),
        )
        place = placement_curve(
            "knn", local_cores=16, cloud_cores=16,
            fractions=(0.0, 1 / 6, 1 / 3, 0.5, 2 / 3, 5 / 6, 1.0),
        )
        return prov, place

    prov, place = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        [p.to_dict() for p in prov],
        "Extension -- cloud cores vs time/cost (knn, 17/83 data)",
    )
    text += "\n\n" + format_table(
        [p.to_dict() for p in place],
        "Extension -- data placement vs time/cost (knn, 16+16 cores)",
    )
    record_table("cost_tradeoff", text + "\n\n" + PAPER_NOTES)

    # Provisioning curve: time monotone down, compute dollars monotone up.
    times = [p.time_s for p in prov]
    assert times == sorted(times, reverse=True)
    compute = [p.cost.compute_usd for p in prov]
    assert compute == sorted(compute)
    # The frontier spans at least the slowest-cheapest and fastest points.
    frontier = pareto_frontier(prov)
    assert len(frontier) >= 2

    # Placement curve: U-shaped in time with an interior optimum.
    best = best_placement(place, objective="time")
    assert 0.0 < best.local_fraction < 1.0
    ends = (place[0].time_s, place[-1].time_s)
    assert best.time_s < min(ends)
