"""Chaos ablation: replica-aware retrieval under slow and dead stores.

Exercises the robustness ladder end to end through the real threaded
middleware (``run_threaded_bursting``) with deterministic fault
injection, one scenario per rung:

* **baseline** -- no chaos, no replicas: the reference wall clock and
  fetch p95;
* **store down, 1 replica + breaker** -- the cloud store hard-fails
  every read *after* placement (dormant injector armed by the driver);
  the run must complete with zero failed workers, every cloud chunk
  failing over to its local replica and the cloud breaker opening;
* **store down, 2 replicas + breaker** -- same outage with a third
  (spare) store holding a second replica of every chunk;
* **stall vs stall+hedge** -- the cloud store stalls every read by a
  seeded 25-50 ms; the hedged run races the local replica after an
  adaptive threshold and must beat the unhedged run's p95 chunk-fetch
  latency on the identical fault schedule.

Writes ``benchmarks/results/BENCH_replicas.json`` with one record per
scenario (wall clock, p95 fetch latency, failover/hedge/breaker
counters) plus self-describing workload metadata.  All chaos is seeded
(`stall` durations are pure hashes), so the schedule -- though not the
thread interleaving -- is identical across runs.  ``REPLICAS_PROFILE=
tiny`` shrinks the workload for the CI perf-smoke job; the completion
and failover assertions hold on every profile.
"""

import os
import time

from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.bursting.driver import run_threaded_bursting
from repro.bursting.report import format_table
from repro.data.generator import generate_tokens
from repro.storage.faults import FaultInjectingStore, FaultSpec
from repro.storage.health import BreakerPolicy, HedgePolicy
from repro.storage.local import MemoryStore
from repro.storage.retry import RetryPolicy

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

TINY = os.environ.get("REPLICAS_PROFILE", "").lower() == "tiny"

N_TOKENS = 20_000 if TINY else 120_000
VOCAB = 500
N_FILES = 6
SEED = 45
# Fast retries: the dead-store scenario burns max_attempts per chunk
# before failing over, so keep the backoff out of the measurement.
RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.001, max_delay_s=0.001)
DOWN = FaultSpec(permanent_keys=("part",))
STALL = FaultSpec(stall_p=1.0, stall_s=0.02 if TINY else 0.05, seed=7)
HEDGE = HedgePolicy(multiplier=3.0, min_threshold_s=0.005, max_hedges=1)
BREAKER = BreakerPolicy(recovery_s=60.0)

PAPER_NOTES = """\
Robustness ladder (retry -> failover -> hedge -> breaker):
  - a dead replica store is a rerouting event, not a job failure: every
    chunk whose primary is down fails over to a surviving replica
  - hedging turns a slow store into a latency race the healthy replica
    wins, cutting p95 chunk-fetch latency on the identical stall schedule
  - breakers stop paying the retry tax per chunk once a store is known
    dead, and the scheduler steals healthy work past blocked files"""


def run_scenario(toks, ref, *, fault=None, spare=False, replicas=0,
                 hedge=None, breaker=None):
    stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
    if spare:
        stores["spare"] = MemoryStore("spare")
    injector = None
    if fault is not None:
        # Dormant: placement/replication reads pass through untouched;
        # the driver arms the injector right before the engine runs.
        injector = FaultInjectingStore(stores["cloud"], fault, armed=False)
        stores["cloud"] = injector
    t0 = time.perf_counter()
    rr = run_threaded_bursting(
        WordCountSpec(), toks, stores, local_fraction=0.5,
        local_workers=2, cloud_workers=2, n_files=N_FILES,
        retrieval_threads=2, retry=RETRY,
        replicas=replicas, hedge=hedge, breaker=breaker,
    )
    wall = time.perf_counter() - t0
    assert rr.result == ref, "chaos must never change the answer"
    return wall, rr.stats, injector


def test_replica_chaos_ablation(benchmark, record_table, write_bench_json):
    toks = generate_tokens(N_TOKENS, VOCAB, seed=SEED)
    ref = wordcount_exact(toks)

    def run_all():
        scenarios = [
            ("baseline", {}),
            ("down+1rep+breaker",
             {"fault": DOWN, "replicas": 1, "breaker": BREAKER}),
            ("down+2rep+breaker",
             {"fault": DOWN, "spare": True, "replicas": 2, "breaker": BREAKER}),
            ("stall+1rep", {"fault": STALL, "replicas": 1}),
            ("stall+1rep+hedge",
             {"fault": STALL, "replicas": 1, "hedge": HEDGE}),
        ]
        rows = []
        for name, kwargs in scenarios:
            wall, stats, injector = run_scenario(toks, ref, **kwargs)
            rows.append({
                "scenario": name,
                "wall_s": round(wall, 4),
                "jobs": stats.jobs_processed,
                "failed_workers": stats.n_failed_workers,
                "fetch_p95_ms": round(1e3 * stats.fetch_p95_s, 2),
                "n_failovers": stats.n_failovers,
                "n_hedges": stats.n_hedges,
                "hedge_wins": stats.hedge_wins,
                "breaker_skips": stats.n_breaker_skips,
                "breaker_transitions": stats.n_breaker_transitions,
                "injected": (
                    sum(injector.injection_counts().values()) if injector else 0
                ),
            })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_name = {r["scenario"]: r for r in rows}

    payload = {
        "workload": {
            "app": "wordcount", "tokens": N_TOKENS, "vocab": VOCAB,
            "files": N_FILES, "seed": SEED,
            "stall_s": STALL.stall_s, "retry_attempts": RETRY.max_attempts,
            "profile": "tiny" if TINY else "full",
        },
        "cpus": os.cpu_count() or 1,
        "scenarios": rows,
    }
    write_bench_json("replicas", payload, profile="tiny" if TINY else "full")
    record_table(
        "BENCH_replicas",
        format_table(
            rows,
            f"Replica-aware retrieval under chaos -- wordcount, "
            f"{N_TOKENS} tokens, stall {STALL.stall_s * 1e3:.0f} ms",
        )
        + "\n\n" + PAPER_NOTES,
    )

    # -- completion: chaos never costs a job or a worker ----------------------
    n_jobs = by_name["baseline"]["jobs"]
    for r in rows:
        assert r["jobs"] == n_jobs, f"{r['scenario']} lost jobs"
        assert r["failed_workers"] == 0, f"{r['scenario']} failed workers"
    # -- a dead replica store is routed around, not fatal ---------------------
    for name in ("down+1rep+breaker", "down+2rep+breaker"):
        r = by_name[name]
        assert r["injected"] > 0, f"{name}: the outage never fired"
        assert r["n_failovers"] > 0, f"{name}: no failovers recorded"
        assert r["breaker_transitions"] > 0, f"{name}: breaker never opened"
    # -- hedging beats the identical stall schedule on p95 --------------------
    plain, hedged = by_name["stall+1rep"], by_name["stall+1rep+hedge"]
    assert plain["injected"] > 0 and hedged["injected"] > 0
    assert hedged["n_hedges"] > 0, "stalls never triggered a hedge"
    assert hedged["hedge_wins"] > 0, "no hedge ever won its race"
    assert hedged["fetch_p95_ms"] < plain["fetch_p95_ms"], (
        f"hedged p95 {hedged['fetch_p95_ms']} ms did not beat "
        f"unhedged {plain['fetch_p95_ms']} ms"
    )
