"""Ablation: locality/contention-aware scheduling vs random assignment.

The paper's head node assigns consecutive local jobs first and steals
from the least-contended remote file.  This ablation replaces the policy
with seeded random assignment (no locality, no consecutive batches) and
measures the cost on the knn Figure-3 environments.
"""

from repro.bursting.config import paper_environments
from repro.bursting.driver import simulate_environment
from repro.bursting.report import format_table
from repro.runtime.scheduler import RandomScheduler
from repro.sim.calibration import APP_PROFILES

PAPER_NOTES = """\
Design rationale (Section III-B):
  - 'the selection of consecutive jobs is an important optimization'
  - locality-first assignment avoids needless WAN crossings; random
    assignment forces both clusters to fetch remote data constantly"""


def test_ablation_scheduling(benchmark, record_table):
    envs = [e for e in paper_environments(APP_PROFILES["knn"]) if e.local_cores and e.cloud_cores]

    def run_all():
        rows = []
        for env in envs:
            policy = simulate_environment("knn", env)
            random = simulate_environment(
                "knn", env, scheduler_factory=lambda jobs: RandomScheduler(jobs, seed=0)
            )
            rows.append(
                {
                    "env": env.name,
                    "policy_total_s": round(policy.total_s, 2),
                    "random_total_s": round(random.total_s, 2),
                    "random_penalty_pct": round(
                        100 * (random.total_s - policy.total_s) / policy.total_s, 1
                    ),
                    "policy_stolen": policy.stats.jobs_stolen,
                    "random_remote_jobs": random.stats.jobs_stolen,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_table(
        "ablation_sched",
        format_table(rows, "Ablation -- locality-aware policy vs random assignment (knn)")
        + "\n\n" + PAPER_NOTES,
    )
    for r in rows:
        # Random assignment moves far more jobs across the WAN...
        assert r["random_remote_jobs"] > 2 * max(1, r["policy_stolen"])
        # ...and is never faster.
        assert r["random_total_s"] >= r["policy_total_s"] * 0.99
    # At least one configuration shows a substantial penalty.
    assert max(r["random_penalty_pct"] for r in rows) > 10.0
