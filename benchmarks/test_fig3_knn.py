"""Figure 3(a): kNN cloud-bursting execution over the five environments.

Regenerates the stacked processing / data-retrieval / sync breakdown for
env-local(32,0), env-cloud(0,32), env-50/50, env-33/67, env-17/83(16,16).

Paper shape: knn is retrieval-dominated; env-cloud retrieval is shorter
than env-local; retrieval (and total time) grow as more data sits in S3.
"""

from repro.bursting.driver import run_paper_sweep
from repro.bursting.report import fig3_rows, format_table

PAPER_NOTES = """\
Paper reference (Fig. 3a, knn):
  - retrieval dominates processing in every environment
  - env-cloud retrieval < env-local retrieval (multi-threaded S3 GETs)
  - totals rise monotonically over env-50/50 -> env-33/67 -> env-17/83
  - slowdown vs env-local: 1.7% / 15.4% / 45.9%"""


def test_fig3_knn(benchmark, record_table):
    results = benchmark.pedantic(run_paper_sweep, args=("knn",), rounds=3, iterations=1)
    rows = fig3_rows(results)
    record_table(
        "fig3_knn",
        format_table(rows, "Figure 3(a) -- knn execution breakdown (simulated seconds)")
        + "\n\n" + PAPER_NOTES,
    )
    by_env = {(r["env"], r["cluster"]): r for r in rows}
    # Retrieval-dominated.
    assert by_env[("env-local", "local")]["retrieval_s"] > by_env[("env-local", "local")]["processing_s"]
    # env-cloud retrieval beats env-local.
    assert by_env[("env-cloud", "cloud")]["retrieval_s"] < by_env[("env-local", "local")]["retrieval_s"]
    # Totals rise with S3 share.
    totals = [results[e].total_s for e in ("env-50/50", "env-33/67", "env-17/83")]
    assert totals[0] < totals[1] < totals[2]
