"""Ablation: pipelined prefetching + the cross-iteration chunk cache.

Three claims, demonstrated end-to-end in both engines:

* **prefetch** -- on an I/O-bound knn in the threaded engine, double
  buffering hides fetch latency under compute: wall clock drops, and
  ``retrieval_s + overlap_s`` of the pipelined run reproduces the serial
  run's retrieval bar (the cost didn't vanish, it moved off the critical
  path);
* **cache** -- a warmed :class:`ChunkCache` makes iteration 2+ of an
  iterative workload much faster than iteration 1 (every remote chunk is
  fetched exactly once per session);
* **model** -- the discrete-event simulator reports the same
  overlap/cache decomposition for the same policies, so sweeps can
  predict the win at paper scale.

Both optimizations are result-invariant: the ablation asserts
bit-identical outputs with the pipeline on and off.
"""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec
from repro.apps.knn import KnnSpec
from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import simulate_environment
from repro.bursting.report import format_table
from repro.bursting.session import BurstingSession
from repro.data.dataset import write_dataset
from repro.data.formats import points_format
from repro.data.generator import generate_points
from repro.runtime.engine import ClusterConfig, ThreadedEngine
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store

PAPER_NOTES = """\
Context (Section II-B of the paper):
  - 'each slave retrieves jobs using multiple retrieval threads' -- the
    retrieval path is the dominant cost for cloud-resident data;
  - prefetching and caching attack the same term: prefetch hides the
    per-job latency under compute, the chunk cache removes repeat
    transfers entirely for iterative workloads (k-means, PageRank)."""

GB = 1 << 30


def _knn_dataset(latency_s: float):
    """An I/O-bound knn workload: per-chunk compute ~= per-chunk fetch."""
    dims, chunk_units, n_files, chunks_per_file = 32, 8000, 16, 4
    pts = generate_points(chunk_units * chunks_per_file, dims, seed=9)
    units = np.tile(pts, (n_files, 1))
    store = SimulatedS3Store(profile=S3Profile(request_latency_s=latency_s))
    idx = write_dataset(
        units, points_format(dims), store,
        n_files=n_files, chunk_units=chunk_units,
    )
    return {"cloud": store}, idx, KnnSpec(np.zeros(dims), 16)


def test_ablation_prefetch(benchmark, record_table):
    rows = []

    def run_all():
        # -- (a) threaded engine: prefetch on vs off ---------------------
        stores, idx, spec = _knn_dataset(latency_s=0.0007)
        cluster = [ClusterConfig("cloud", "cloud", 1, retrieval_threads=1)]
        serial = ThreadedEngine(cluster, stores).run(spec, idx)
        pipelined = ThreadedEngine(cluster, stores, prefetch=True).run(spec, idx)
        s_c, p_c = serial.stats.clusters["cloud"], pipelined.stats.clusters["cloud"]
        rows.append({
            "case": "threaded knn serial",
            "wall_s": round(serial.stats.total_s, 4),
            "retrieval_s": round(s_c.retrieval_s, 4),
            "overlap_s": 0.0,
            "cache_hit_rate": "-",
        })
        rows.append({
            "case": "threaded knn prefetch",
            "wall_s": round(pipelined.stats.total_s, 4),
            "retrieval_s": round(p_c.retrieval_s, 4),
            "overlap_s": round(p_c.overlap_s, 4),
            "cache_hit_rate": "-",
        })

        # -- (b) session: cold vs warmed chunk cache ---------------------
        lat_stores = {
            "local": MemoryStore("local"),
            "cloud": SimulatedS3Store(
                profile=S3Profile(request_latency_s=0.002)
            ),
        }
        pts = generate_points(4000, 8, seed=21)
        session = BurstingSession.from_units(
            pts, points_format(8), lat_stores,
            local_fraction=0.25, prefetch=True, cache_mb=64,
        )
        cents = generate_points(8, 8, seed=22)
        cold = session.run(KMeansSpec(cents))
        warm = session.run(KMeansSpec(cents))
        rows.append({
            "case": "session pass 1 (cold cache)",
            "wall_s": round(cold.stats.total_s, 4),
            "retrieval_s": round(
                sum(c.retrieval_s for c in cold.stats.clusters.values()), 4
            ),
            "overlap_s": round(
                sum(c.overlap_s for c in cold.stats.clusters.values()), 4
            ),
            "cache_hit_rate": round(cold.stats.cache_hit_rate, 3),
        })
        rows.append({
            "case": "session pass 2 (warm cache)",
            "wall_s": round(warm.stats.total_s, 4),
            "retrieval_s": round(
                sum(c.retrieval_s for c in warm.stats.clusters.values()), 4
            ),
            "overlap_s": round(
                sum(c.overlap_s for c in warm.stats.clusters.values()), 4
            ),
            "cache_hit_rate": round(warm.stats.cache_hit_rate, 3),
        })

        # -- (c) DES: same policies at paper scale -----------------------
        env = EnvironmentConfig("hybrid", 0.5, 8, 8)
        sim_serial = simulate_environment("kmeans", env)
        sim_pre = simulate_environment("kmeans", env, prefetch=True)
        sim_it1 = simulate_environment("kmeans", env, prefetch=True,
                                       cache_nbytes=16 * GB)
        sim_it2 = simulate_environment("kmeans", env, prefetch=True,
                                       caches=sim_it1.caches)
        for name, res in [("sim kmeans serial", sim_serial),
                          ("sim kmeans prefetch", sim_pre),
                          ("sim kmeans iter2 warm cache", sim_it2)]:
            rows.append({
                "case": name,
                "wall_s": round(res.total_s, 2),
                "retrieval_s": round(
                    sum(c.retrieval_s for c in res.stats.clusters.values()), 2
                ),
                "overlap_s": round(
                    sum(c.overlap_s for c in res.stats.clusters.values()), 2
                ),
                "cache_hit_rate": round(res.stats.cache_hit_rate, 3),
            })
        return (serial, pipelined, s_c, p_c, cold, warm,
                sim_serial, sim_pre, sim_it1, sim_it2)

    (serial, pipelined, s_c, p_c, cold, warm,
     sim_serial, sim_pre, sim_it1, sim_it2) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    record_table(
        "ablation_prefetch",
        format_table(rows, "Ablation -- prefetch pipeline + chunk cache")
        + "\n\n" + PAPER_NOTES,
    )

    # (a) prefetch wins on the I/O-bound workload...
    assert pipelined.stats.total_s < 0.85 * serial.stats.total_s
    assert p_c.overlap_s > 0
    assert p_c.prefetch_hits + p_c.prefetch_misses > 0
    # ...and the hidden fetch time is conserved, not lost:
    recovered = p_c.retrieval_s + p_c.overlap_s
    assert recovered > 0.7 * s_c.retrieval_s
    # determinism: identical results with the pipeline on.
    np.testing.assert_array_equal(
        [d for d, _ in serial.result], [d for d, _ in pipelined.result]
    )

    # (b) the warmed cache removes the retrieval term from pass 2.
    assert warm.stats.total_s < 0.6 * cold.stats.total_s
    assert warm.stats.cache_hit_rate == 1.0
    # Multi-worker fold order varies run to run (fp summation), so the
    # passes agree to tolerance; bit-identity is asserted on the
    # single-worker case above.
    np.testing.assert_allclose(
        cold.result.centroids, warm.result.centroids
    )

    # (c) the DES shows the same decomposition at paper scale.
    assert sim_pre.total_s < sim_serial.total_s
    for name, sc in sim_serial.stats.clusters.items():
        pc = sim_pre.stats.clusters[name]
        assert pc.retrieval_s + pc.overlap_s == pytest.approx(
            sc.retrieval_s, rel=0.15
        )
    assert sim_it2.stats.cache_hit_rate > 0.8
    assert sim_it2.total_s < sim_it1.total_s
