"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures and
writes the rows to ``benchmarks/results/<name>.txt`` (also echoed to
stdout when pytest runs with ``-s``), alongside the paper's reference
values so the shapes can be compared at a glance.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_table():
    """Write a rendered table (plus paper reference notes) to disk."""

    def _record(name: str, text: str) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print("\n" + text)
        return path

    return _record
