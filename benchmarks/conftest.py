"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures and
writes the rows to ``benchmarks/results/<name>.txt`` (also echoed to
stdout when pytest runs with ``-s``), alongside the paper's reference
values so the shapes can be compared at a glance.
"""

from __future__ import annotations

import datetime
import json
import os
import platform

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Version of the stamped BENCH_*.json envelope (bump on layout changes).
BENCH_SCHEMA_VERSION = 1


@pytest.fixture
def record_table():
    """Write a rendered table (plus paper reference notes) to disk."""

    def _record(name: str, text: str) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print("\n" + text)
        return path

    return _record


@pytest.fixture
def write_bench_json():
    """Write a machine-readable BENCH_<name>.json with a stamped envelope.

    Every benchmark JSON carries the same header -- schema version,
    profile name (tiny/full), and run metadata (timestamp, python,
    platform, cpu count) -- so results from different hosts and CI runs
    are comparable without guessing where they came from.
    """

    def _write(name: str, payload: dict, *, profile: str | None = None) -> str:
        stamped = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "bench": name,
            "profile": profile,
            "run": {
                "timestamp_utc": datetime.datetime.now(
                    datetime.timezone.utc
                ).isoformat(timespec="seconds"),
                "python": platform.python_version(),
                "platform": platform.platform(),
                "cpus": os.cpu_count() or 1,
            },
            **payload,
        }
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(stamped, fh, indent=2)
            fh.write("\n")
        return path

    return _write
