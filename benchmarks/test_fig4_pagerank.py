"""Figure 4(c): PageRank scalability, all data in S3, cores (4,4) -> (32,32).

Paper shape: the worst-scaling application -- the reduction-object
exchange is a fixed cost that does not shrink with core count, so sync
overhead climbs from 3.3% to 13.3% and efficiency falls to ~66-73%.
"""

from repro.bursting.driver import run_scalability_sweep
from repro.bursting.report import fig4_rows, format_table

PAPER_NOTES = """\
Paper reference (Fig. 4c, pagerank):
  - speedup efficiency per doubling: 66.4% - 73.2% (worst of the three)
  - sync overhead grows 3.3% -> 13.3% with core count (fixed robj cost)
  - high I/O requirement: S3 -> cluster retrieval slows the local side"""


def test_fig4_pagerank(benchmark, record_table):
    results = benchmark.pedantic(run_scalability_sweep, args=("pagerank",), rounds=3, iterations=1)
    rows = fig4_rows(results)
    record_table(
        "fig4_pagerank",
        format_table(rows, "Figure 4(c) -- pagerank scalability (simulated seconds)")
        + "\n\n" + PAPER_NOTES,
    )
    sync = [r["sync_pct"] for r in rows]
    # Fixed robj exchange: sync share grows with core count.
    assert sync[-1] > 2 * sync[0]
    assert sync[-1] > 8.0
    # Worst scaler: final-doubling efficiency below kmeans's typical band.
    effs = [r["efficiency_pct"] for r in rows if r["efficiency_pct"] is not None]
    assert effs[-1] < 85.0
