"""Extension bench: deadline-driven elastic scale-out.

The bursting motivation of Section I ("maintain an acceptable response
time during workload peaks") made operational: as the deadline tightens
the monitor leases more cloud cores mid-run, each paying a boot
latency, and the finish time tracks the deadline until the lease cap
binds.
"""

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index
from repro.bursting.report import format_table
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.elastic import ElasticPolicy, simulate_elastic_run
from repro.sim.simrun import simulate_run

PAPER_NOTES = """\
Context (related work [21], Marshall et al.'s Elastic Site):
  - middleware transparently extends the cluster into the cloud when
    the queue projects past the deadline
  - integrated here with data-aware scheduling: leased cores enter the
    same pull loop and steal whatever data placement requires"""


def test_ablation_elastic(benchmark, record_table):
    env = EnvironmentConfig("h", 0.5, 8, 8)
    profile = APP_PROFILES["kmeans"]
    params = ResourceParams()
    index = paper_index(profile, env)
    clusters = env.clusters(params)

    def run_all():
        base = simulate_run(index, clusters, profile, params, seed=0)
        rows = [{
            "deadline_x": "none",
            "leased_cores": 0,
            "total_s": round(base.total_s, 1),
            "met": "-",
        }]
        for factor in (0.9, 0.7, 0.5):
            policy = ElasticPolicy(
                deadline_s=base.total_s * factor,
                check_interval_s=base.total_s / 25,
                startup_latency_s=base.total_s / 25,
                step_cores=4,
                max_extra_cores=24,
            )
            res = simulate_elastic_run(index, clusters, profile, policy, params, seed=0)
            rows.append({
                "deadline_x": f"{factor:.1f}x",
                "leased_cores": res.extra_cores_leased,
                "total_s": round(res.total_s, 1),
                "met": "yes" if res.met_deadline else "no",
            })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_table(
        "ablation_elastic",
        format_table(rows, "Extension -- elastic scale-out vs deadline (kmeans, 8+8 base cores)")
        + "\n\n" + PAPER_NOTES,
    )
    leased = [r["leased_cores"] for r in rows]
    totals = [r["total_s"] for r in rows]
    # Tighter deadlines lease more and finish faster.
    assert leased == sorted(leased)
    assert totals == sorted(totals, reverse=True)
    assert leased[-1] > leased[1] > 0
