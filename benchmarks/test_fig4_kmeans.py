"""Figure 4(b): k-means scalability, all data in S3, cores (4,4) -> (32,32).

Paper shape: the best-scaling application (~86-88% per doubling) --
computation dominates, so adding cores pays off almost linearly; sync
overhead 0.1% - 2.5%, worst at (4,4).
"""

from repro.bursting.driver import run_scalability_sweep
from repro.bursting.report import fig4_rows, format_table

PAPER_NOTES = """\
Paper reference (Fig. 4b, kmeans):
  - speedup efficiency per doubling: 85.8% - 88.3% (best of the three)
  - compute-dominated at every scale
  - sync overhead 0.1% - 2.5%"""


def test_fig4_kmeans(benchmark, record_table):
    results = benchmark.pedantic(run_scalability_sweep, args=("kmeans",), rounds=1, iterations=1)
    rows = fig4_rows(results)
    record_table(
        "fig4_kmeans",
        format_table(rows, "Figure 4(b) -- kmeans scalability (simulated seconds)")
        + "\n\n" + PAPER_NOTES,
    )
    effs = [r["efficiency_pct"] for r in rows if r["efficiency_pct"] is not None]
    assert all(e > 80.0 for e in effs)
    # Compute dominates at every scale.
    for r in rows:
        assert r["local_processing_s"] > r["local_retrieval_s"]
        assert r["cloud_processing_s"] > r["cloud_retrieval_s"]
    # Sync overhead stays small.
    assert all(r["sync_pct"] < 8.0 for r in rows)
