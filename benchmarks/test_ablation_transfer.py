"""Transfer-layer ablation: codecs on real bytes, autotuning in the DES.

Two halves:

1. **Real engine, real bytes.**  The threaded engine runs wordcount over
   a dataset organized with each codec, at three placements.  The codec
   changes only what crosses the stores -- the answer is fixed -- so the
   interesting columns are bytes-on-wire and the compress ratio.  The
   shuffle codec (byte-transpose then deflate) must at least halve the
   hybrid run's wire bytes versus its logical bytes.

2. **DES, paper scale.**  With a compressed dataset the retrieval
   fan-out that saturates the WAN changes; the AIMD autotuner must find
   it.  We sweep fixed ``retrieval_threads`` in {1, 2, 4, 8, 16} for the
   retrieval-dominated knn hybrid and require the adaptive run to land
   within 10% of the best fixed setting -- without being told which.

Writes ``benchmarks/results/BENCH_transfer.json`` plus a rendered table.
"""

import json
import os

from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index, simulate_environment
from repro.bursting.report import format_table
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_tokens
from repro.runtime import ClusterConfig, make_engine
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.simrun import simulate_run
from repro.sim.topology import TransferSimModel
from repro.storage.autotune import AutotuneParams
from repro.storage.local import MemoryStore

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

CODECS = (None, "zlib", "shuffle")
PLACEMENTS = {"local-only": 1.0, "hybrid": 0.5, "cloud-only": 0.0}
FIXED_THREADS = (1, 2, 4, 8, 16)
N_TOKENS, VOCAB = 60_000, 400


def run_real(codec, local_fraction, toks, spec, ref):
    stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
    index = write_dataset(
        toks, spec.fmt, stores["local"], n_files=4,
        chunk_units=N_TOKENS // 24, codec=codec,
    )
    fractions = {}
    if local_fraction > 0:
        fractions["local"] = local_fraction
    if local_fraction < 1:
        fractions["cloud"] = 1.0 - local_fraction
    index = distribute_dataset(index, stores, fractions, stores["local"])
    clusters = [
        ClusterConfig("local", "local", 2, 2),
        ClusterConfig("cloud", "cloud", 2, 2),
    ]
    rr = make_engine("threaded", clusters, stores, batch_size=2).run(spec, index)
    assert rr.result == ref, f"{codec} changed the wordcount answer"
    return {
        "codec": codec or "identity",
        "bytes_logical": rr.stats.bytes_logical,
        "bytes_wire": rr.stats.bytes_wire,
        "compress_ratio": round(rr.stats.compress_ratio, 4),
        "decode_s": round(rr.stats.decode_s, 4),
    }


def test_codec_ablation_real_bytes(record_table, write_bench_json):
    toks = generate_tokens(N_TOKENS, VOCAB, seed=31)
    spec = WordCountSpec()
    ref = wordcount_exact(toks)
    rows = []
    for pname, frac in PLACEMENTS.items():
        for codec in CODECS:
            row = run_real(codec, frac, toks, spec, ref)
            row["placement"] = pname
            rows.append(row)
    by = {(r["placement"], r["codec"]): r for r in rows}

    # Identity is the control: the full logical payload crosses.
    for pname in PLACEMENTS:
        ident = by[(pname, "identity")]
        assert ident["bytes_wire"] == ident["bytes_logical"]
        # Both deflate codecs shrink the wire; shuffle shrinks it most.
        assert (
            by[(pname, "shuffle")]["bytes_wire"]
            < by[(pname, "zlib")]["bytes_wire"]
            < ident["bytes_wire"]
        )
    # Acceptance: shuffle at least halves hybrid's wire bytes.
    hyb = by[("hybrid", "shuffle")]
    assert hyb["bytes_wire"] < 0.5 * hyb["bytes_logical"]

    # The DES half appends to the same payload file.
    write_bench_json("transfer", {"real_bytes": rows})
    record_table(
        "BENCH_transfer_codecs",
        format_table(
            rows,
            f"Codec ablation -- threaded wordcount, {N_TOKENS} tokens, "
            "3 placements",
        ),
    )


def test_adaptive_vs_fixed_threads_sim(record_table, write_bench_json):
    env = EnvironmentConfig("hybrid", 0.5, 16, 16)
    profile = APP_PROFILES["knn"]
    params = ResourceParams()
    model = TransferSimModel.for_codec("shuffle")
    index = paper_index(profile, env)

    rows = []
    for n in FIXED_THREADS:
        res = simulate_run(
            index, env.clusters(params, retrieval_threads=n), profile,
            params, transfer=model,
        )
        rows.append({
            "retrieval": f"fixed-{n}",
            "total_s": round(res.total_s, 2),
            "bytes_wire": res.stats.bytes_wire,
        })
    # The tuner starts from the engines' default fan-out (8) -- the same
    # place a fixed deployment starts -- and adapts per path from there.
    adaptive = simulate_environment(
        "knn", env, params, codec="shuffle", adaptive_fetch=True,
        autotune_params=AutotuneParams(start_parts=8),
    )
    tuner_parts = {
        f"{c.name}->{loc}": snap["parts"]
        for c in adaptive.stats.clusters.values()
        for loc, snap in c.autotune.items()
    }
    rows.append({
        "retrieval": "adaptive",
        "total_s": round(adaptive.total_s, 2),
        "bytes_wire": adaptive.stats.bytes_wire,
    })

    best_fixed = min(r["total_s"] for r in rows if r["retrieval"] != "adaptive")
    # Acceptance: AIMD finds the knee on its own -- within 10% of the
    # best fixed fan-out, which it was never told.
    assert adaptive.total_s <= best_fixed * 1.10, (
        f"adaptive {adaptive.total_s:.1f}s vs best fixed {best_fixed:.1f}s"
    )

    path = os.path.join(RESULTS_DIR, "BENCH_transfer.json")
    payload = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        # Re-stamped below; keep only the measurement sections.
        for key in ("schema_version", "bench", "profile", "run"):
            payload.pop(key, None)
    payload["sim_retrieval_sweep"] = {
        "app": "knn", "env": "hybrid-50/50", "codec": "shuffle",
        "rows": rows,
        "best_fixed_s": best_fixed,
        "adaptive_s": round(adaptive.total_s, 2),
        "tuner_parts": tuner_parts,
    }
    write_bench_json("transfer", payload)
    record_table(
        "BENCH_transfer_adaptive",
        format_table(
            rows,
            "Retrieval fan-out -- knn hybrid DES, shuffle codec: "
            "fixed sweep vs AIMD",
        ),
    )
