"""Ablation: multi-threaded S3 retrieval vs single-stream GETs.

The paper attributes env-cloud's retrieval advantage to multi-threaded
chunk retrieval over S3's per-connection throughput cap.  This ablation
runs the all-cloud knn configuration with 1, 2, 4, and 8 retrieval
threads per worker.
"""

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index
from repro.bursting.report import format_table
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.simrun import simulate_run

PAPER_NOTES = """\
Paper reference (Sections III-B / IV-B):
  - 'Each slave retrieves jobs using multiple retrieval threads'
  - 'the available bandwidth between the EC2 instances and S3 was
    efficiently utilized by our multi-threaded data retrieval approach'
    (env-cloud retrieval < env-local retrieval)"""


def test_ablation_retrieval_threads(benchmark, record_table):
    env = EnvironmentConfig("env-cloud", 0.0, 0, 32)
    profile = APP_PROFILES["knn"]
    params = ResourceParams()
    index = paper_index(profile, env)

    def run_all():
        rows = []
        for threads in (1, 2, 4, 8):
            clusters = env.clusters(params, retrieval_threads=threads)
            res = simulate_run(index, clusters, profile, params, seed=0)
            c = res.stats.clusters["cloud"]
            rows.append(
                {
                    "retrieval_threads": threads,
                    "retrieval_s": round(c.retrieval_s, 2),
                    "total_s": round(res.total_s, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_table(
        "ablation_threads",
        format_table(rows, "Ablation -- S3 retrieval threads per worker (knn, env-cloud)")
        + "\n\n" + PAPER_NOTES,
    )
    # Retrieval time falls monotonically with thread count...
    rets = [r["retrieval_s"] for r in rows]
    assert rets[0] > rets[1] > rets[2] >= rets[3]
    # ...and single-stream retrieval is several times slower.
    assert rets[0] > 3 * rets[3]
