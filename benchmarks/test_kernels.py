"""Microbenchmarks of the vectorized local-reduction kernels.

These are real wall-clock benchmarks (pytest-benchmark statistics) of
the hot path each slave runs per unit group, useful for tracking kernel
regressions independent of the simulator.
"""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec
from repro.apps.knn import KnnSpec
from repro.apps.pagerank import PageRankSpec, out_degrees
from repro.apps.wordcount import WordCountSpec
from repro.data.generator import generate_edges, generate_points, generate_tokens

GROUP = 8192


@pytest.fixture(scope="module")
def point_group():
    return generate_points(GROUP, 8, seed=71)


def test_kernel_knn(benchmark, point_group):
    spec = KnnSpec(np.full(8, 0.5), 10)
    robj = spec.create_reduction_object()
    benchmark(spec.local_reduction, robj, point_group)


def test_kernel_kmeans(benchmark, point_group):
    spec = KMeansSpec(generate_points(10, 8, seed=72))
    robj = spec.create_reduction_object()
    benchmark(spec.local_reduction, robj, point_group)


def test_kernel_pagerank(benchmark):
    n_pages = 100_000
    edges = generate_edges(n_pages, GROUP, seed=73)
    outdeg = out_degrees(edges, n_pages)
    spec = PageRankSpec(np.full(n_pages, 1 / n_pages), outdeg)
    robj = spec.create_reduction_object()
    benchmark(spec.local_reduction, robj, edges)


def test_kernel_wordcount(benchmark):
    tokens = generate_tokens(GROUP, 10_000, seed=74)
    spec = WordCountSpec()
    robj = spec.create_reduction_object()
    benchmark(spec.local_reduction, robj, tokens)


def test_kernel_topk_merge(benchmark):
    from repro.core.reduction_object import TopKReductionObject

    a = TopKReductionObject(100)
    a.update_batch(np.random.default_rng(1).random(1000), list(range(1000)))

    def merge_fresh():
        b = TopKReductionObject(100)
        b.update_batch(np.random.default_rng(2).random(1000), list(range(1000)))
        b.merge(a)
        return b

    benchmark(merge_fresh)
