"""Ablation: Generalized Reduction vs MapReduce (Section III-A's argument).

The paper claims the fused proc/combine/reduce API avoids the memory and
communication overheads of MapReduce, even with the Combine function.
This benchmark quantifies both on identical datasets:

* shuffle volume (bytes that would cross the network / inter-cluster);
* mapper-side buffered pairs (memory pressure combine cannot avoid);
* wall-clock of the two engines on the same workload.
"""

import numpy as np

from repro.apps.kmeans import KMeansMapReduceSpec, KMeansSpec
from repro.apps.wordcount import WordCountMapReduceSpec, WordCountSpec
from repro.bursting.report import format_table
from repro.core.serialization import serialized_nbytes
from repro.data.dataset import write_dataset
from repro.data.formats import points_format, tokens_format
from repro.data.generator import generate_points, generate_tokens
from repro.mapreduce.engine import MapReduceEngine
from repro.runtime.engine import ClusterConfig, ThreadedEngine
from repro.storage.local import MemoryStore

PAPER_NOTES = """\
Paper reference (Section III-A):
  - 'Using the Combine function can only reduce communication ... the
    (key, value) pairs are still generated on each map node and can
    result in high memory requirements'
  - generalized reduction 'avoids intermediate memory overheads':
    only the reduction object ever exists or moves"""


def _setup(units, fmt):
    store = MemoryStore("local")
    idx = write_dataset(units, fmt, store, n_files=4, chunk_units=max(1, len(units) // 16))
    return {"local": store}, idx


def test_ablation_api(benchmark, record_table):
    toks = generate_tokens(60000, 512, seed=61)
    stores, idx = _setup(toks, tokens_format())
    pts = generate_points(20000, 8, seed=62)
    pstores, pidx = _setup(pts, points_format(8))
    cents = generate_points(10, 8, seed=63)

    rows = []

    def run_case(name, gr_spec, mr_plain, mr_combine, s, i):
        mr_engine = MapReduceEngine(s, n_mappers=2, n_reducers=2, combine_flush_pairs=4096)
        gr_engine = ThreadedEngine([ClusterConfig("local", "local", 2)], s)
        plain = mr_engine.run(mr_plain, i)
        comb = mr_engine.run(mr_combine, i)
        gr = gr_engine.run(gr_spec, i)
        rows.append(
            {
                "workload": name,
                "mr_shuffle_bytes": plain.stats.intermediate_nbytes,
                "mr+combine_shuffle_bytes": comb.stats.intermediate_nbytes,
                "gr_robj_bytes": serialized_nbytes(gr.robj),
                "mr+combine_peak_buffer_pairs": comb.stats.peak_buffer_pairs,
            }
        )
        return gr

    def run_all():
        run_case(
            "wordcount", WordCountSpec(),
            WordCountMapReduceSpec(False), WordCountMapReduceSpec(True),
            stores, idx,
        )
        run_case(
            "kmeans", KMeansSpec(cents),
            KMeansMapReduceSpec(cents, False), KMeansMapReduceSpec(cents, True),
            pstores, pidx,
        )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_table(
        "ablation_api",
        format_table(rows, "Ablation -- shuffle volume and buffering, MR vs GR")
        + "\n\n" + PAPER_NOTES,
    )
    for r in rows:
        # Combine shrinks the shuffle, but the robj is smaller still.
        assert r["mr+combine_shuffle_bytes"] < r["mr_shuffle_bytes"]
        assert r["gr_robj_bytes"] < r["mr+combine_shuffle_bytes"]
        # And combine still buffers thousands of pairs in memory.
        assert r["mr+combine_peak_buffer_pairs"] >= 4096
