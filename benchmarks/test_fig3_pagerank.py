"""Figure 3(c): PageRank cloud-bursting execution over the five environments.

Paper shape: computation and retrieval are balanced; the very large
reduction object makes hybrid sync times visibly larger than the
centralized baselines (the robj must cross the WAN), and slowdowns sit
between knn's and kmeans's.
"""

from repro.bursting.driver import run_paper_sweep
from repro.bursting.report import fig3_rows, format_table, table2_rows

PAPER_NOTES = """\
Paper reference (Fig. 3c, pagerank):
  - balanced between computation and data retrieval
  - hybrid sync times exceed centralized ones (robj crosses the WAN;
    inter-cluster reduction overheads 6.8% - 12.1%)
  - retrieval rises across 50/50 -> 33/67 -> 17/83"""


def test_fig3_pagerank(benchmark, record_table):
    results = benchmark.pedantic(run_paper_sweep, args=("pagerank",), rounds=3, iterations=1)
    rows = fig3_rows(results)
    record_table(
        "fig3_pagerank",
        format_table(rows, "Figure 3(c) -- pagerank execution breakdown (simulated seconds)")
        + "\n\n" + PAPER_NOTES,
    )
    by_env = {(r["env"], r["cluster"]): r for r in rows}
    # Balanced compute/retrieval in the local baseline.
    base = by_env[("env-local", "local")]
    assert 0.4 < base["processing_s"] / base["retrieval_s"] < 2.5
    # Hybrid global reduction is a visible overhead.
    for r in table2_rows(results):
        assert r["global_reduction_s"] > 1.0
    # Hybrid sync exceeds the centralized baseline's.
    assert by_env[("env-50/50", "local")]["sync_s"] + by_env[("env-50/50", "cloud")]["sync_s"] \
        > by_env[("env-local", "local")]["sync_s"]
