"""Execution-time accounting.

The paper reports, per cluster, the decomposition of overall execution
time into **processing**, **data retrieval**, and **sync** (barrier wait
plus global-reduction exchange), and additionally tracks per-cluster job
counts (Table I) and idle/global-reduction overheads (Table II).  Both
execution engines populate these structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorkerStats", "ClusterStats", "RunStats"]


@dataclass
class WorkerStats:
    """Timers accumulated by one worker (one core in the simulator)."""

    processing_s: float = 0.0
    retrieval_s: float = 0.0
    sync_s: float = 0.0
    jobs_processed: int = 0
    jobs_stolen: int = 0        # jobs whose data lived at another site
    finished_at: float = 0.0    # when this worker ran out of work
    failed: bool = False        # worker died before the run finished
    # Pipelined-retrieval accounting.  With prefetching, ``retrieval_s``
    # counts only the *stall* (time the worker actually waited for data);
    # ``overlap_s`` is the fetch time hidden under processing, so
    # retrieval_s + overlap_s recovers the serial engine's retrieval bar.
    overlap_s: float = 0.0
    prefetch_hits: int = 0      # prefetched data ready before it was needed
    prefetch_misses: int = 0    # worker stalled waiting for the prefetch
    cache_hits: int = 0         # fetches served from the chunk cache
    cache_misses: int = 0       # fetches that went to the store

    @property
    def busy_s(self) -> float:
        return self.processing_s + self.retrieval_s


@dataclass
class ClusterStats:
    """Aggregated view of one cluster's workers."""

    name: str
    location: str
    workers: list[WorkerStats] = field(default_factory=list)
    robj_nbytes: int = 0            # size of the reduction object it shipped
    robj_transfer_s: float = 0.0    # time to send it to the head
    finished_at: float = 0.0        # when the last worker finished jobs
    idle_s: float = 0.0             # waiting for the other cluster, unable to steal

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def _mean(self, attr: str) -> float:
        if not self.workers:
            return 0.0
        return sum(getattr(w, attr) for w in self.workers) / len(self.workers)

    @property
    def processing_s(self) -> float:
        """Mean per-worker processing time (the stacked-bar component)."""
        return self._mean("processing_s")

    @property
    def retrieval_s(self) -> float:
        return self._mean("retrieval_s")

    @property
    def sync_s(self) -> float:
        return self._mean("sync_s")

    @property
    def total_s(self) -> float:
        return self.processing_s + self.retrieval_s + self.sync_s

    @property
    def jobs_processed(self) -> int:
        return sum(w.jobs_processed for w in self.workers)

    @property
    def jobs_stolen(self) -> int:
        return sum(w.jobs_stolen for w in self.workers)

    @property
    def workers_failed(self) -> int:
        return sum(1 for w in self.workers if w.failed)

    @property
    def overlap_s(self) -> float:
        """Mean per-worker fetch time hidden under processing."""
        return self._mean("overlap_s")

    @property
    def prefetch_hits(self) -> int:
        return sum(w.prefetch_hits for w in self.workers)

    @property
    def prefetch_misses(self) -> int:
        return sum(w.prefetch_misses for w in self.workers)

    @property
    def cache_hits(self) -> int:
        return sum(w.cache_hits for w in self.workers)

    @property
    def cache_misses(self) -> int:
        return sum(w.cache_misses for w in self.workers)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this cluster's fetches served by the chunk cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class RunStats:
    """Complete accounting for one execution."""

    clusters: dict[str, ClusterStats] = field(default_factory=dict)
    total_s: float = 0.0              # wall-clock (sim or real) of the run
    global_reduction_s: float = 0.0   # robj exchange + final merge
    processing_end_s: float = 0.0     # when the last cluster finished jobs

    @property
    def jobs_processed(self) -> int:
        return sum(c.jobs_processed for c in self.clusters.values())

    @property
    def jobs_stolen(self) -> int:
        return sum(c.jobs_stolen for c in self.clusters.values())

    @property
    def prefetch_hits(self) -> int:
        return sum(c.prefetch_hits for c in self.clusters.values())

    @property
    def cache_hits(self) -> int:
        return sum(c.cache_hits for c in self.clusters.values())

    @property
    def cache_misses(self) -> int:
        return sum(c.cache_misses for c in self.clusters.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def breakdown_rows(self) -> list[dict]:
        """Rows for the Figure-3-style stacked breakdown."""
        return [
            {
                "cluster": c.name,
                "processing_s": round(c.processing_s, 4),
                "retrieval_s": round(c.retrieval_s, 4),
                "sync_s": round(c.sync_s, 4),
                "total_s": round(c.total_s, 4),
            }
            for c in self.clusters.values()
        ]

    def pipeline_rows(self) -> list[dict]:
        """Rows decomposing the prefetch/cache pipeline per cluster.

        ``retrieval_s`` is the residual stall, ``overlap_s`` the fetch
        time hidden under computation; their sum is what a serial
        (non-pipelined) run would have shown as its retrieval bar.
        """
        return [
            {
                "cluster": c.name,
                "retrieval_s": round(c.retrieval_s, 4),
                "overlap_s": round(c.overlap_s, 4),
                "prefetch_hits": c.prefetch_hits,
                "prefetch_misses": c.prefetch_misses,
                "cache_hits": c.cache_hits,
                "cache_misses": c.cache_misses,
                "cache_hit_rate": round(c.cache_hit_rate, 4),
            }
            for c in self.clusters.values()
        ]
