"""Execution-time accounting.

The paper reports, per cluster, the decomposition of overall execution
time into **processing**, **data retrieval**, and **sync** (barrier wait
plus global-reduction exchange), and additionally tracks per-cluster job
counts (Table I) and idle/global-reduction overheads (Table II).  Both
execution engines populate these structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorkerStats", "ClusterStats", "RunStats"]


def _percentile(samples: list, q: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * len(ordered) + 0.5)) - 1))
    return ordered[rank]


@dataclass
class WorkerStats:
    """Timers accumulated by one worker (one core in the simulator)."""

    processing_s: float = 0.0
    retrieval_s: float = 0.0
    sync_s: float = 0.0
    jobs_processed: int = 0
    jobs_stolen: int = 0        # jobs whose data lived at another site
    finished_at: float = 0.0    # when this worker ran out of work
    failed: bool = False        # worker died before the run finished
    # Pipelined-retrieval accounting.  With prefetching, ``retrieval_s``
    # counts only the *stall* (time the worker actually waited for data);
    # ``overlap_s`` is the fetch time hidden under processing, so
    # retrieval_s + overlap_s recovers the serial engine's retrieval bar.
    overlap_s: float = 0.0
    prefetch_hits: int = 0      # prefetched data ready before it was needed
    prefetch_misses: int = 0    # worker stalled waiting for the prefetch
    cache_hits: int = 0         # fetches served from the chunk cache
    cache_misses: int = 0       # fetches that went to the store
    # Fault-recovery accounting: jobs this worker re-executed after a
    # failed worker returned them to the head, and the compute time
    # those re-executions cost (the re-fetch lands in ``retrieval_s``).
    jobs_recovered: int = 0
    recovery_s: float = 0.0
    # Cross-process accounting (ProcessEngine).  ``ipc_s`` is time spent
    # moving data across the process boundary (copying chunk bytes into
    # shared memory, queue round-trips); ``ser_s`` is reduction-object
    # serialize/deserialize time; ``shm_nbytes`` counts bytes that
    # crossed through shared-memory segments.  All zero for in-process
    # engines.
    ipc_s: float = 0.0
    ser_s: float = 0.0
    shm_nbytes: int = 0
    # Transfer-layer accounting.  ``bytes_wire`` is what this worker's
    # fetches actually pulled over store connections (encoded size for
    # compressed chunks, zero on cache hits); ``bytes_logical`` the
    # decoded payload handed to the fold; ``decode_s`` codec decode time
    # (kept separate from retrieval stall).
    bytes_wire: int = 0
    bytes_logical: int = 0
    decode_s: float = 0.0
    # Hot-path accounting.  ``fold_s`` is time inside local-reduction
    # kernels only (a subset of ``processing_s``, which also covers
    # decode and verify); ``bytes_folded`` the unit bytes those kernels
    # consumed; ``n_fold_calls`` how many kernel invocations they took
    # (1 per chunk on the batch path, chunk/group on the loop path);
    # ``n_copies`` whole-chunk buffer copies made after wire reassembly
    # (codec inflations, shm copies, cache-hit copies -- 0 is the
    # zero-copy ideal).
    fold_s: float = 0.0
    bytes_folded: int = 0
    n_fold_calls: int = 0
    n_copies: int = 0
    # Replica-aware retrieval: sources that failed before a fetch
    # succeeded elsewhere, hedged duplicate launches, and hedges whose
    # backup beat the primary.
    n_failovers: int = 0
    n_hedges: int = 0
    hedge_wins: int = 0
    # Erasure-striped retrieval: fragments that fed reassemblies (k per
    # striped fetch), reconstructions that needed a parity decode, and
    # -- in the DES, where losers are observable synchronously -- bytes
    # of losing fragments fetched but unused.  Real engines account
    # wasted bytes on the fetcher instead (losers land after the fetch
    # returns); ClusterStats sums both.
    n_fragments: int = 0
    n_parity_decodes: int = 0
    fragments_wasted_bytes: int = 0

    @property
    def busy_s(self) -> float:
        return self.processing_s + self.retrieval_s

    @property
    def fold_ns_per_byte(self) -> float:
        """Fold-kernel nanoseconds per unit byte (the per-byte fold cost)."""
        return self.fold_s * 1e9 / self.bytes_folded if self.bytes_folded else 0.0


@dataclass
class ClusterStats:
    """Aggregated view of one cluster's workers."""

    name: str
    location: str
    workers: list[WorkerStats] = field(default_factory=list)
    robj_nbytes: int = 0            # size of the reduction object it shipped
    robj_transfer_s: float = 0.0    # time to send it to the head
    finished_at: float = 0.0        # when the last worker finished jobs
    idle_s: float = 0.0             # waiting for the other cluster, unable to steal
    # Fetch-path fault counters, filled from this cluster's fetchers.
    n_retries: int = 0              # sub-range retries issued
    n_errors: int = 0               # fetches that failed past the retry policy
    bytes_retried: int = 0          # bytes re-requested by those retries
    n_breaker_skips: int = 0        # replica sources skipped (breaker open)
    n_abandoned: int = 0            # attempts abandoned by per-attempt timeouts
    # Bytes of losing striped fragments fetched but unused, rolled up
    # from this cluster's fetchers (see WorkerStats for the DES path).
    fragments_wasted_bytes: int = 0
    # Per-successful-fetch wall seconds (cache hits excluded), pooled
    # from this cluster's fetchers -- the p95 latency sample set.
    fetch_latencies: list = field(default_factory=list)
    # Transfer-layer state per data location, filled from this cluster's
    # autotuners when adaptive fetch is on: location -> snapshot dict
    # (parts, effective_bw, trajectory, ...).
    autotune: dict = field(default_factory=dict)

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def _mean(self, attr: str) -> float:
        if not self.workers:
            return 0.0
        return sum(getattr(w, attr) for w in self.workers) / len(self.workers)

    @property
    def processing_s(self) -> float:
        """Mean per-worker processing time (the stacked-bar component)."""
        return self._mean("processing_s")

    @property
    def retrieval_s(self) -> float:
        return self._mean("retrieval_s")

    @property
    def sync_s(self) -> float:
        return self._mean("sync_s")

    @property
    def total_s(self) -> float:
        """Stacked-bar total: all per-worker mean components."""
        return (
            self.processing_s + self.retrieval_s + self.sync_s
            + self.ipc_s + self.ser_s
        )

    @property
    def jobs_processed(self) -> int:
        return sum(w.jobs_processed for w in self.workers)

    @property
    def jobs_stolen(self) -> int:
        return sum(w.jobs_stolen for w in self.workers)

    @property
    def workers_failed(self) -> int:
        return sum(1 for w in self.workers if w.failed)

    @property
    def overlap_s(self) -> float:
        """Mean per-worker fetch time hidden under processing."""
        return self._mean("overlap_s")

    @property
    def prefetch_hits(self) -> int:
        return sum(w.prefetch_hits for w in self.workers)

    @property
    def prefetch_misses(self) -> int:
        return sum(w.prefetch_misses for w in self.workers)

    @property
    def cache_hits(self) -> int:
        return sum(w.cache_hits for w in self.workers)

    @property
    def cache_misses(self) -> int:
        return sum(w.cache_misses for w in self.workers)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this cluster's fetches served by the chunk cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def jobs_recovered(self) -> int:
        return sum(w.jobs_recovered for w in self.workers)

    @property
    def recovery_s(self) -> float:
        """Total compute time spent re-executing requeued jobs."""
        return sum(w.recovery_s for w in self.workers)

    @property
    def ipc_s(self) -> float:
        """Mean per-worker cross-process data-movement time."""
        return self._mean("ipc_s")

    @property
    def ser_s(self) -> float:
        """Mean per-worker reduction-object (de)serialization time."""
        return self._mean("ser_s")

    @property
    def shm_nbytes(self) -> int:
        """Total bytes this cluster moved through shared memory."""
        return sum(w.shm_nbytes for w in self.workers)

    @property
    def bytes_wire(self) -> int:
        """Total bytes this cluster's fetches pulled over connections."""
        return sum(w.bytes_wire for w in self.workers)

    @property
    def bytes_logical(self) -> int:
        """Total decoded chunk bytes this cluster's workers consumed."""
        return sum(w.bytes_logical for w in self.workers)

    @property
    def compress_ratio(self) -> float:
        """Wire bytes per logical byte (1.0 = uncompressed, <1 = shrunk)."""
        return self.bytes_wire / self.bytes_logical if self.bytes_logical else 1.0

    @property
    def decode_s(self) -> float:
        """Total codec decode time across this cluster's workers."""
        return sum(w.decode_s for w in self.workers)

    @property
    def fold_s(self) -> float:
        """Total fold-kernel time across this cluster's workers."""
        return sum(w.fold_s for w in self.workers)

    @property
    def bytes_folded(self) -> int:
        return sum(w.bytes_folded for w in self.workers)

    @property
    def n_fold_calls(self) -> int:
        return sum(w.n_fold_calls for w in self.workers)

    @property
    def n_copies(self) -> int:
        """Total post-reassembly buffer copies across this cluster."""
        return sum(w.n_copies for w in self.workers)

    @property
    def fold_ns_per_byte(self) -> float:
        """Cluster-wide fold-kernel nanoseconds per unit byte."""
        return self.fold_s * 1e9 / self.bytes_folded if self.bytes_folded else 0.0

    @property
    def effective_bw(self) -> float:
        """Best EWMA path bandwidth (bytes/s) the autotuners measured."""
        return max(
            (snap.get("effective_bw", 0.0) for snap in self.autotune.values()),
            default=0.0,
        )

    @property
    def n_failovers(self) -> int:
        return sum(w.n_failovers for w in self.workers)

    @property
    def n_hedges(self) -> int:
        return sum(w.n_hedges for w in self.workers)

    @property
    def hedge_wins(self) -> int:
        return sum(w.hedge_wins for w in self.workers)

    @property
    def n_fragments(self) -> int:
        return sum(w.n_fragments for w in self.workers)

    @property
    def n_parity_decodes(self) -> int:
        return sum(w.n_parity_decodes for w in self.workers)

    @property
    def wasted_fragment_bytes(self) -> int:
        """Losing-fragment bytes: fetcher rollup plus DES worker counts."""
        return self.fragments_wasted_bytes + sum(
            w.fragments_wasted_bytes for w in self.workers
        )

    @property
    def fetch_p95_s(self) -> float:
        """95th-percentile successful-fetch latency (0 with no samples)."""
        return _percentile(self.fetch_latencies, 0.95)


@dataclass
class RunStats:
    """Complete accounting for one execution."""

    clusters: dict[str, ClusterStats] = field(default_factory=dict)
    total_s: float = 0.0              # wall-clock (sim or real) of the run
    global_reduction_s: float = 0.0   # robj exchange + final merge
    processing_end_s: float = 0.0     # when the last cluster finished jobs
    n_requeued_jobs: int = 0          # jobs returned to the head by reassign()
    # Per-store health/breaker snapshot at run end (location -> dict of
    # state, EWMAs, transition counters), filled when a health registry
    # was active (hedge or breaker configured).
    breakers: dict = field(default_factory=dict)
    # Metadata-first retrieval (predicate pushdown).  Pruning happens at
    # the head before any job is assigned, so these are run-level
    # counters, not per-worker sums: mode that ran (None = off), chunks
    # pruned by relevant(), wire bytes those chunks would have cost, and
    # surviving jobs the priority() hint moved off chunk-id order.
    pushdown_mode: str | None = None
    n_pruned_chunks: int = 0
    bytes_pruned: int = 0
    n_reordered: int = 0

    @property
    def jobs_processed(self) -> int:
        return sum(c.jobs_processed for c in self.clusters.values())

    @property
    def jobs_stolen(self) -> int:
        return sum(c.jobs_stolen for c in self.clusters.values())

    @property
    def prefetch_hits(self) -> int:
        return sum(c.prefetch_hits for c in self.clusters.values())

    @property
    def cache_hits(self) -> int:
        return sum(c.cache_hits for c in self.clusters.values())

    @property
    def cache_misses(self) -> int:
        return sum(c.cache_misses for c in self.clusters.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def n_retries(self) -> int:
        return sum(c.n_retries for c in self.clusters.values())

    @property
    def n_errors(self) -> int:
        return sum(c.n_errors for c in self.clusters.values())

    @property
    def bytes_retried(self) -> int:
        return sum(c.bytes_retried for c in self.clusters.values())

    @property
    def n_failed_workers(self) -> int:
        return sum(c.workers_failed for c in self.clusters.values())

    @property
    def n_failovers(self) -> int:
        return sum(c.n_failovers for c in self.clusters.values())

    @property
    def n_hedges(self) -> int:
        return sum(c.n_hedges for c in self.clusters.values())

    @property
    def hedge_wins(self) -> int:
        return sum(c.hedge_wins for c in self.clusters.values())

    @property
    def n_breaker_skips(self) -> int:
        return sum(c.n_breaker_skips for c in self.clusters.values())

    @property
    def n_abandoned(self) -> int:
        return sum(c.n_abandoned for c in self.clusters.values())

    @property
    def n_fragments(self) -> int:
        return sum(c.n_fragments for c in self.clusters.values())

    @property
    def n_parity_decodes(self) -> int:
        return sum(c.n_parity_decodes for c in self.clusters.values())

    @property
    def fragments_wasted_bytes(self) -> int:
        return sum(c.wasted_fragment_bytes for c in self.clusters.values())

    @property
    def n_breaker_transitions(self) -> int:
        """Total breaker state transitions across every store."""
        return sum(
            b.get("n_opened", 0) + b.get("n_half_opened", 0) + b.get("n_closed", 0)
            for b in self.breakers.values()
        )

    @property
    def fetch_p95_s(self) -> float:
        """Run-wide 95th-percentile successful-fetch latency."""
        pooled: list = []
        for c in self.clusters.values():
            pooled.extend(c.fetch_latencies)
        return _percentile(pooled, 0.95)

    @property
    def jobs_recovered(self) -> int:
        return sum(c.jobs_recovered for c in self.clusters.values())

    @property
    def recovery_s(self) -> float:
        return sum(c.recovery_s for c in self.clusters.values())

    @property
    def shm_nbytes(self) -> int:
        return sum(c.shm_nbytes for c in self.clusters.values())

    @property
    def bytes_wire(self) -> int:
        return sum(c.bytes_wire for c in self.clusters.values())

    @property
    def bytes_logical(self) -> int:
        return sum(c.bytes_logical for c in self.clusters.values())

    @property
    def compress_ratio(self) -> float:
        return self.bytes_wire / self.bytes_logical if self.bytes_logical else 1.0

    @property
    def decode_s(self) -> float:
        return sum(c.decode_s for c in self.clusters.values())

    @property
    def fold_s(self) -> float:
        return sum(c.fold_s for c in self.clusters.values())

    @property
    def bytes_folded(self) -> int:
        return sum(c.bytes_folded for c in self.clusters.values())

    @property
    def n_fold_calls(self) -> int:
        return sum(c.n_fold_calls for c in self.clusters.values())

    @property
    def n_copies(self) -> int:
        return sum(c.n_copies for c in self.clusters.values())

    @property
    def fold_ns_per_byte(self) -> float:
        """Run-wide fold-kernel nanoseconds per unit byte."""
        return self.fold_s * 1e9 / self.bytes_folded if self.bytes_folded else 0.0

    def breakdown_rows(self) -> list[dict]:
        """Rows for the Figure-3-style stacked breakdown.

        ``ipc_s``/``ser_s`` decompose the cross-process overheads of the
        process engine next to processing and retrieval, so the overlap
        of fetch, IPC, and compute is visible in one table (both are
        zero for the in-process engines).
        """
        return [
            {
                "cluster": c.name,
                "processing_s": round(c.processing_s, 4),
                "retrieval_s": round(c.retrieval_s, 4),
                "sync_s": round(c.sync_s, 4),
                "ipc_s": round(c.ipc_s, 4),
                "ser_s": round(c.ser_s, 4),
                "total_s": round(c.total_s, 4),
                "n_retries": c.n_retries,
                "n_errors": c.n_errors,
                "bytes_retried": c.bytes_retried,
            }
            for c in self.clusters.values()
        ]

    def ipc_rows(self) -> list[dict]:
        """Rows decomposing cross-process data movement per cluster.

        Only the process engine populates these: ``ipc_s`` is shared-
        memory copy plus queue round-trip time, ``ser_s`` the pickle-5
        out-of-band (de)serialization of reduction objects, and
        ``shm_nbytes`` the bytes that crossed process boundaries through
        shared segments instead of pipes.
        """
        return [
            {
                "cluster": c.name,
                "ipc_s": round(c.ipc_s, 4),
                "ser_s": round(c.ser_s, 4),
                "shm_nbytes": c.shm_nbytes,
            }
            for c in self.clusters.values()
        ]

    def fault_rows(self) -> list[dict]:
        """Rows decomposing fault injection and recovery per cluster.

        ``n_retries``/``n_errors``/``bytes_retried`` come off the fetch
        path; ``workers_failed``/``jobs_recovered``/``recovery_s``
        account the crash-containment protocol (dead workers, requeued
        jobs re-executed by survivors, and the compute those
        re-executions cost).  The replica-aware columns prove each rung
        of the robustness ladder fired: ``n_failovers`` (sources
        exhausted and routed around), ``n_hedges``/``hedge_wins``
        (latency-triggered duplicates and how often the backup won),
        ``n_breaker_skips`` (sources skipped behind an open breaker),
        ``n_abandoned`` (stuck attempts the timeout walked away from),
        and ``fetch_p95_ms``.  The erasure columns do the same for the
        coding rung: ``n_parity_decodes`` (reassemblies that needed a
        GF/XOR decode because a data fragment lost its race or store)
        and ``wasted_frag_bytes`` (losing fragments fetched anyway).
        """
        return [
            {
                "cluster": c.name,
                "n_retries": c.n_retries,
                "n_errors": c.n_errors,
                "bytes_retried": c.bytes_retried,
                "workers_failed": c.workers_failed,
                "jobs_recovered": c.jobs_recovered,
                "recovery_s": round(c.recovery_s, 4),
                "n_failovers": c.n_failovers,
                "n_hedges": c.n_hedges,
                "hedge_wins": c.hedge_wins,
                "n_breaker_skips": c.n_breaker_skips,
                "n_abandoned": c.n_abandoned,
                "n_parity_decodes": c.n_parity_decodes,
                "wasted_frag_bytes": c.wasted_fragment_bytes,
                "fetch_p95_ms": round(c.fetch_p95_s * 1e3, 3),
            }
            for c in self.clusters.values()
        ]

    def breaker_rows(self) -> list[dict]:
        """Rows for the per-store health/breaker snapshot."""
        return [
            {"store": loc, **snap} for loc, snap in sorted(self.breakers.items())
        ]

    def transfer_rows(self) -> list[dict]:
        """Rows decomposing the WAN transfer layer per cluster.

        ``bytes_wire``/``bytes_logical``/``compress_ratio`` show what
        compression saved on the wire; ``decode_s`` its CPU cost;
        ``effective_bw``/``parts``/``tuner`` report what the AIMD
        autotuner learned about each path (current fan-out per data
        location, grow/backoff decision counts).
        """
        rows = []
        for c in self.clusters.values():
            parts = {
                loc: snap.get("parts") for loc, snap in sorted(c.autotune.items())
            }
            rows.append(
                {
                    "cluster": c.name,
                    "bytes_logical": c.bytes_logical,
                    "bytes_wire": c.bytes_wire,
                    "compress_ratio": round(c.compress_ratio, 4),
                    "decode_s": round(c.decode_s, 4),
                    "effective_bw_mbps": round(c.effective_bw / 1e6, 3),
                    "parts": parts or None,
                    "tuner_grows": sum(
                        s.get("n_grow", 0) for s in c.autotune.values()
                    ),
                    "tuner_backoffs": sum(
                        s.get("n_backoff", 0) for s in c.autotune.values()
                    ),
                }
            )
        return rows

    def pushdown_rows(self) -> list[dict]:
        """One row summarizing metadata-first retrieval for the run.

        ``bytes_pruned`` is wire bytes the head proved it never needed
        (encoded size when the dataset is coded); ``pruned_fraction``
        relates that to the total the run would otherwise have fetched
        (``bytes_wire + bytes_pruned``).  ``n_reordered`` counts
        surviving jobs the ``priority()`` hint moved off chunk-id order.
        """
        would_fetch = self.bytes_wire + self.bytes_pruned
        return [
            {
                "mode": self.pushdown_mode or "off",
                "n_pruned_chunks": self.n_pruned_chunks,
                "bytes_pruned": self.bytes_pruned,
                "bytes_wire": self.bytes_wire,
                "pruned_fraction": (
                    round(self.bytes_pruned / would_fetch, 4) if would_fetch else 0.0
                ),
                "n_reordered": self.n_reordered,
            }
        ]

    def pipeline_rows(self) -> list[dict]:
        """Rows decomposing the prefetch/cache pipeline per cluster.

        ``retrieval_s`` is the residual stall, ``overlap_s`` the fetch
        time hidden under computation; their sum is what a serial
        (non-pipelined) run would have shown as its retrieval bar.
        ``fold_ns_per_byte``/``n_fold_calls``/``n_copies`` expose the
        decode-to-fold hot path: per-byte kernel cost, kernel dispatch
        count (1/chunk on the batch path), and whole-chunk buffer copies
        made after wire reassembly (0 is the zero-copy ideal).
        """
        return [
            {
                "cluster": c.name,
                "retrieval_s": round(c.retrieval_s, 4),
                "overlap_s": round(c.overlap_s, 4),
                "prefetch_hits": c.prefetch_hits,
                "prefetch_misses": c.prefetch_misses,
                "cache_hits": c.cache_hits,
                "cache_misses": c.cache_misses,
                "cache_hit_rate": round(c.cache_hit_rate, 4),
                "fold_s": round(c.fold_s, 4),
                "fold_ns_per_byte": round(c.fold_ns_per_byte, 3),
                "n_fold_calls": c.n_fold_calls,
                "n_copies": c.n_copies,
            }
            for c in self.clusters.values()
        ]
