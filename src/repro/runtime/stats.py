"""Execution-time accounting.

The paper reports, per cluster, the decomposition of overall execution
time into **processing**, **data retrieval**, and **sync** (barrier wait
plus global-reduction exchange), and additionally tracks per-cluster job
counts (Table I) and idle/global-reduction overheads (Table II).  Both
execution engines populate these structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorkerStats", "ClusterStats", "RunStats"]


@dataclass
class WorkerStats:
    """Timers accumulated by one worker (one core in the simulator)."""

    processing_s: float = 0.0
    retrieval_s: float = 0.0
    sync_s: float = 0.0
    jobs_processed: int = 0
    jobs_stolen: int = 0        # jobs whose data lived at another site
    finished_at: float = 0.0    # when this worker ran out of work
    failed: bool = False        # worker died before the run finished

    @property
    def busy_s(self) -> float:
        return self.processing_s + self.retrieval_s


@dataclass
class ClusterStats:
    """Aggregated view of one cluster's workers."""

    name: str
    location: str
    workers: list[WorkerStats] = field(default_factory=list)
    robj_nbytes: int = 0            # size of the reduction object it shipped
    robj_transfer_s: float = 0.0    # time to send it to the head
    finished_at: float = 0.0        # when the last worker finished jobs
    idle_s: float = 0.0             # waiting for the other cluster, unable to steal

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def _mean(self, attr: str) -> float:
        if not self.workers:
            return 0.0
        return sum(getattr(w, attr) for w in self.workers) / len(self.workers)

    @property
    def processing_s(self) -> float:
        """Mean per-worker processing time (the stacked-bar component)."""
        return self._mean("processing_s")

    @property
    def retrieval_s(self) -> float:
        return self._mean("retrieval_s")

    @property
    def sync_s(self) -> float:
        return self._mean("sync_s")

    @property
    def total_s(self) -> float:
        return self.processing_s + self.retrieval_s + self.sync_s

    @property
    def jobs_processed(self) -> int:
        return sum(w.jobs_processed for w in self.workers)

    @property
    def jobs_stolen(self) -> int:
        return sum(w.jobs_stolen for w in self.workers)

    @property
    def workers_failed(self) -> int:
        return sum(1 for w in self.workers if w.failed)


@dataclass
class RunStats:
    """Complete accounting for one execution."""

    clusters: dict[str, ClusterStats] = field(default_factory=dict)
    total_s: float = 0.0              # wall-clock (sim or real) of the run
    global_reduction_s: float = 0.0   # robj exchange + final merge
    processing_end_s: float = 0.0     # when the last cluster finished jobs

    @property
    def jobs_processed(self) -> int:
        return sum(c.jobs_processed for c in self.clusters.values())

    @property
    def jobs_stolen(self) -> int:
        return sum(c.jobs_stolen for c in self.clusters.values())

    def breakdown_rows(self) -> list[dict]:
        """Rows for the Figure-3-style stacked breakdown."""
        return [
            {
                "cluster": c.name,
                "processing_s": round(c.processing_s, 4),
                "retrieval_s": round(c.retrieval_s, 4),
                "sync_s": round(c.sync_s, 4),
                "total_s": round(c.total_s, 4),
            }
            for c in self.clusters.values()
        ]
