"""Threaded execution engine: the real, working middleware.

Runs the complete head/master/slave protocol with actual data movement
on one machine: worker threads pull jobs through their master from the
shared head scheduler, fetch chunk byte ranges (multi-threaded) from
whichever store holds them, fold unit groups into per-worker reduction
objects, and the head performs the final global reduction.

Two data-pipeline optimizations sit on the fetch path:

* **prefetching** (``prefetch=True``): a worker reserves job *N+1* from
  its master before processing job *N* and retrieves its bytes on a
  background thread, overlapping data movement with computation (the
  double-buffered slave of data-cloud engines like Sector/Sphere);
* a **chunk cache** (``chunk_cache=...``): a shared byte-budgeted LRU
  consulted before any store traffic, so iterative workloads re-reading
  the same remote chunks pay the retrieval cost once.

Both are result-invariant -- a worker folds exactly the same unit groups
in the same order -- and both are accounted in :class:`WorkerStats`
(``overlap_s``, ``prefetch_hits``, ``cache_hits``).

This engine demonstrates functional correctness of the middleware at any
scale that fits in memory; the discrete-event simulator in
:mod:`repro.sim` executes the same policy code against a resource model
for performance experiments.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.core.api import GeneralizedReductionSpec
from repro.core.reduction_object import ReductionObject
from repro.core.serialization import deserialize_robj, serialize_robj
from repro.data.index import DataIndex
from repro.data.units import iter_unit_groups, units_per_group
from repro.runtime.jobs import Job, LocalJobPool, jobs_from_index
from repro.runtime.scheduler import HeadScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.storage.base import StorageBackend
from repro.storage.cache import ChunkCache
from repro.storage.transfer import ParallelFetcher, PrefetchHandle

__all__ = ["ClusterConfig", "RunResult", "ThreadedEngine"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of one compute cluster."""

    name: str
    location: str               # the storage site this cluster is co-located with
    n_workers: int
    retrieval_threads: int = 2  # parallel connections per chunk fetch
    link_latency_s: float = 0.0  # master <-> head round-trip latency


@dataclass
class RunResult:
    """Outcome of one engine run."""

    result: Any
    stats: RunStats
    robj: ReductionObject


class _Master:
    """Cluster-local job pool that refills from the head on demand."""

    def __init__(
        self,
        cluster: ClusterConfig,
        scheduler: HeadScheduler,
        scheduler_lock: threading.Lock,
        batch_size: int,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.scheduler_lock = scheduler_lock
        self.batch_size = batch_size
        self.pool = LocalJobPool()
        self.done = False
        self._refill_lock = threading.Lock()

    def get_job(self) -> Job | None:
        """Next job for a worker, refilling from the head when depleted."""
        while True:
            job = self.pool.try_get()
            if job is not None:
                return job
            if self.done:
                return None
            # Pay the master <-> head round-trip *outside* the refill
            # lock: concurrent requesters overlap their RTTs instead of
            # queueing a full round-trip each behind one sleeping
            # refiller (only the scheduler interaction is serialized).
            if self.cluster.link_latency_s > 0:
                time.sleep(self.cluster.link_latency_s)
            with self._refill_lock:
                # Re-check: another worker may have refilled while we
                # paid the round-trip or waited for the lock.
                job = self.pool.try_get()
                if job is not None:
                    return job
                if self.done:
                    return None
                with self.scheduler_lock:
                    jobs = self.scheduler.request_jobs(
                        self.cluster.location, self.batch_size
                    )
                if not jobs:
                    self.done = True
                    return None
                self.pool.add(jobs[1:])
                return jobs[0]

    def reserve_next(self) -> Job | None:
        """Reserve the job a worker will process after its current one.

        Identical contract to :meth:`get_job`; the separate name marks
        the prefetch pipeline's protocol at the call site: the worker
        learns job *N+1* (and can start retrieving it) before job *N*'s
        processing finishes.
        """
        return self.get_job()


class ThreadedEngine:
    """Multi-cluster, multi-worker threaded executor."""

    def __init__(
        self,
        clusters: list[ClusterConfig],
        stores: dict[str, StorageBackend],
        *,
        batch_size: int = 4,
        group_nbytes: int = 1 << 20,
        scheduler_factory=HeadScheduler,
        verify_chunks: bool = False,
        prefetch: bool = False,
        chunk_cache: ChunkCache | None = None,
    ) -> None:
        if not clusters:
            raise ValueError("need at least one cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        self.clusters = clusters
        self.stores = stores
        self.batch_size = batch_size
        self.group_nbytes = group_nbytes
        self.scheduler_factory = scheduler_factory
        self.verify_chunks = verify_chunks
        self.prefetch = prefetch
        self.chunk_cache = chunk_cache

    def run(self, spec: GeneralizedReductionSpec, index: DataIndex) -> RunResult:
        """Execute ``spec`` over the dataset described by ``index``."""
        missing = set(index.locations) - set(self.stores)
        if missing:
            raise ValueError(f"index references unknown stores: {sorted(missing)}")
        scheduler = self.scheduler_factory(jobs_from_index(index))
        scheduler_lock = threading.Lock()
        group_units = units_per_group(self.group_nbytes, index.fmt.unit_nbytes)

        t_start = time.monotonic()
        stats = RunStats()
        cluster_robjs: dict[str, list[ReductionObject]] = {}
        threads: list[threading.Thread] = []
        fetchers: dict[str, dict[str, ParallelFetcher]] = {}
        errors: list[BaseException] = []
        stop = threading.Event()

        for cluster in self.clusters:
            master = _Master(cluster, scheduler, scheduler_lock, self.batch_size)
            cstats = ClusterStats(cluster.name, cluster.location)
            stats.clusters[cluster.name] = cstats
            cluster_robjs[cluster.name] = []
            fetchers[cluster.name] = {
                loc: ParallelFetcher(
                    store,
                    cluster.retrieval_threads,
                    cache=self.chunk_cache,
                    prefetch_workers=max(1, cluster.n_workers),
                )
                for loc, store in self.stores.items()
            }
            for wid in range(cluster.n_workers):
                wstats = WorkerStats()
                cstats.workers.append(wstats)
                th = threading.Thread(
                    target=self._worker_loop,
                    name=f"{cluster.name}-w{wid}",
                    args=(
                        cluster, master, spec, index, group_units,
                        fetchers[cluster.name], wstats,
                        cluster_robjs[cluster.name], scheduler, scheduler_lock,
                        t_start, errors, stop,
                    ),
                    daemon=True,
                )
                threads.append(th)

        for th in threads:
            th.start()
        for th in threads:
            th.join()
        for cfs in fetchers.values():
            for f in cfs.values():
                f.close()
        if errors:
            raise errors[0]
        if not scheduler.all_done:
            raise RuntimeError(
                f"run ended with {scheduler.remaining} unassigned / "
                f"{scheduler.outstanding} outstanding jobs"
            )

        # Per-cluster combination, then inter-cluster global reduction.
        for cstats in stats.clusters.values():
            cstats.finished_at = max(
                (w.finished_at for w in cstats.workers), default=0.0
            )
        processing_end = max(
            (c.finished_at for c in stats.clusters.values()), default=0.0
        )
        stats.processing_end_s = processing_end
        t_reduce0 = time.monotonic()
        uploads: list[ReductionObject] = []
        for cluster in self.clusters:
            cstats = stats.clusters[cluster.name]
            robjs = cluster_robjs[cluster.name]
            merged = spec.global_reduction(robjs) if robjs else spec.create_reduction_object()
            # Ship real serialized bytes, as the wire would carry them.
            t0 = time.monotonic()
            payload = serialize_robj(merged)
            if cluster.link_latency_s > 0:
                time.sleep(cluster.link_latency_s)
            uploads.append(deserialize_robj(payload))
            cstats.robj_nbytes = len(payload)
            cstats.robj_transfer_s = time.monotonic() - t0
        final = spec.global_reduction(uploads)
        t_end = time.monotonic()

        stats.total_s = t_end - t_start
        stats.global_reduction_s = t_end - t_reduce0
        for cstats in stats.clusters.values():
            cstats.idle_s = max(0.0, processing_end - cstats.finished_at)
            for w in cstats.workers:
                w.sync_s = max(0.0, stats.total_s - w.finished_at)
        return RunResult(spec.finalize(final), stats, final)

    # -- worker loop ---------------------------------------------------------

    def _fetch_now(
        self,
        job: Job,
        cluster_fetchers: dict[str, ParallelFetcher],
        wstats: WorkerStats,
    ) -> bytes:
        """Synchronous fetch of one job's bytes, fully accounted as stall."""
        t0 = time.monotonic()
        raw, cache_hit = cluster_fetchers[job.location].fetch_with_info(
            job.chunk.key, job.chunk.offset, job.chunk.nbytes
        )
        wstats.retrieval_s += time.monotonic() - t0
        if cache_hit:
            wstats.cache_hits += 1
        else:
            wstats.cache_misses += 1
        return raw

    def _process(
        self,
        spec: GeneralizedReductionSpec,
        index: DataIndex,
        group_units: int,
        robj: ReductionObject,
        job: Job,
        raw: bytes,
        cluster: ClusterConfig,
        wstats: WorkerStats,
        scheduler: HeadScheduler,
        scheduler_lock: threading.Lock,
    ) -> None:
        """Decode, reduce, and complete one job."""
        if self.verify_chunks:
            from repro.data.integrity import verify_chunk_bytes

            verify_chunk_bytes(job.chunk, raw)
        t0 = time.monotonic()
        units = index.fmt.decode(raw)
        for group in iter_unit_groups(units, group_units):
            spec.local_reduction(robj, group)
        wstats.processing_s += time.monotonic() - t0
        wstats.jobs_processed += 1
        if job.location != cluster.location:
            wstats.jobs_stolen += 1
        with scheduler_lock:
            scheduler.complete(job)

    def _worker_loop(
        self,
        cluster: ClusterConfig,
        master: _Master,
        spec: GeneralizedReductionSpec,
        index: DataIndex,
        group_units: int,
        cluster_fetchers: dict[str, ParallelFetcher],
        wstats: WorkerStats,
        robjs_out: list[ReductionObject],
        scheduler: HeadScheduler,
        scheduler_lock: threading.Lock,
        t_start: float,
        errors: list[BaseException],
        stop: threading.Event,
    ) -> None:
        pending: PrefetchHandle | None = None
        try:
            robj = spec.create_reduction_object()
            job = master.get_job()
            if job is not None and self.prefetch:
                # Pipelined path: the first fetch is unavoidably serial;
                # every later fetch overlaps the previous job's compute.
                raw = self._fetch_now(job, cluster_fetchers, wstats)
                while job is not None and not stop.is_set():
                    next_job = master.reserve_next()
                    t_submit = time.monotonic()
                    if next_job is not None:
                        pending = cluster_fetchers[next_job.location].fetch_async(
                            next_job.chunk.key,
                            next_job.chunk.offset,
                            next_job.chunk.nbytes,
                        )
                    self._process(
                        spec, index, group_units, robj, job, raw,
                        cluster, wstats, scheduler, scheduler_lock,
                    )
                    if next_job is None:
                        break
                    ready = pending.done()
                    t_need = time.monotonic()
                    raw = pending.result()
                    stall = time.monotonic() - t_need
                    wstats.retrieval_s += stall
                    wstats.overlap_s += max(0.0, pending.fetch_s - stall)
                    if ready:
                        wstats.prefetch_hits += 1
                    else:
                        wstats.prefetch_misses += 1
                    if pending.cache_hit:
                        wstats.cache_hits += 1
                    else:
                        wstats.cache_misses += 1
                    pending = None
                    job = next_job
            else:
                # Serial path: fetch then process, one job at a time.
                while job is not None and not stop.is_set():
                    raw = self._fetch_now(job, cluster_fetchers, wstats)
                    self._process(
                        spec, index, group_units, robj, job, raw,
                        cluster, wstats, scheduler, scheduler_lock,
                    )
                    job = master.get_job()
            wstats.finished_at = time.monotonic() - t_start
            robjs_out.append(robj)
        except BaseException as exc:  # surfaced by run()
            errors.append(exc)
            stop.set()  # fail fast: abort every other worker promptly
        finally:
            if pending is not None:
                pending.cancel()
