"""Threaded execution engine: the real, working middleware.

Runs the complete head/master/slave protocol with actual data movement
on one machine: worker threads pull jobs through their master from the
shared head scheduler, fetch chunk byte ranges (multi-threaded) from
whichever store holds them, fold unit groups into per-worker reduction
objects, and the head performs the final global reduction.

Two data-pipeline optimizations sit on the fetch path:

* **prefetching** (``prefetch=True``): a worker reserves job *N+1* from
  its master before processing job *N* and retrieves its bytes on a
  background thread, overlapping data movement with computation (the
  double-buffered slave of data-cloud engines like Sector/Sphere);
* a **chunk cache** (``chunk_cache=...``): a shared byte-budgeted LRU
  consulted before any store traffic, so iterative workloads re-reading
  the same remote chunks pay the retrieval cost once.

Both are result-invariant -- a worker folds exactly the same unit groups
in the same order -- and both are accounted in :class:`WorkerStats`
(``overlap_s``, ``prefetch_hits``, ``cache_hits``).

The engine is fault tolerant on the WAN fetch path:

* a **retry policy** (``retry=RetryPolicy(...)``) makes every store
  ``get`` retry transient errors with jittered exponential backoff, so
  a flaky link costs latency, not correctness;
* **worker-crash containment**: a worker killed by the crash-injection
  plan (``crash_plan``) or whose fetch exhausts its retries no longer
  aborts the run.  Its in-flight job goes back to the head via
  :meth:`HeadScheduler.reassign` and is re-executed by a survivor,
  while its partially-folded reduction object -- which already holds
  every job it *completed* -- is preserved and included in the global
  reduction (the cheap robj-checkpoint recovery the Generalized
  Reduction model affords).  Non-retryable errors (a permanent fault,
  a bug in user code) still fail the whole run fast.

This engine demonstrates functional correctness of the middleware at any
scale that fits in memory; the discrete-event simulator in
:mod:`repro.sim` executes the same policy code against a resource model
for performance experiments.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.core.api import GeneralizedReductionSpec
from repro.core.reduction_object import ReductionObject
from repro.core.serialization import deserialize_robj, serialize_robj
from repro.data.index import DataIndex
from repro.data.units import iter_unit_groups, units_per_group
from repro.runtime.jobs import Job, LocalJobPool, jobs_from_index
from repro.runtime.scheduler import HeadScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.storage.autotune import AimdAutotuner, AutotuneParams
from repro.storage.base import StorageBackend
from repro.storage.cache import ChunkCache
from repro.storage.faults import WorkerCrash
from repro.storage.retry import RetryExhausted, RetryPolicy
from repro.storage.transfer import (
    DEFAULT_MIN_PART_NBYTES,
    ParallelFetcher,
    PrefetchHandle,
)

__all__ = [
    "ClusterConfig",
    "RunResult",
    "ThreadedEngine",
    "make_cluster_fetchers",
]


def make_cluster_fetchers(
    stores: dict[str, StorageBackend],
    cluster: "ClusterConfig",
    *,
    cache: ChunkCache | None = None,
    prefetch_workers: int = 1,
    retry: RetryPolicy | None = None,
    adaptive_fetch: bool = False,
    min_part_nbytes: int = DEFAULT_MIN_PART_NBYTES,
    autotune_params: AutotuneParams | None = None,
) -> dict[str, ParallelFetcher]:
    """One fetcher per data location for one cluster.

    With ``adaptive_fetch`` every (cluster, location) path gets its own
    AIMD autotuner replacing the fixed ``retrieval_threads`` fan-out --
    the paths differ wildly (local NIC vs WAN vs throttled S3), so each
    learns its own knee.  Shared by all three live engines.
    """
    fetchers: dict[str, ParallelFetcher] = {}
    for loc, store in stores.items():
        autotune = None
        if adaptive_fetch:
            params = autotune_params or AutotuneParams(
                min_part_nbytes=max(1, min_part_nbytes)
            )
            autotune = AimdAutotuner(params, name=f"{cluster.name}->{loc}")
        fetchers[loc] = ParallelFetcher(
            store,
            cluster.retrieval_threads,
            cache=cache,
            prefetch_workers=prefetch_workers,
            retry=retry,
            autotune=autotune,
            min_part_nbytes=min_part_nbytes,
        )
    return fetchers


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of one compute cluster."""

    name: str
    location: str               # the storage site this cluster is co-located with
    n_workers: int
    retrieval_threads: int = 2  # parallel connections per chunk fetch
    link_latency_s: float = 0.0  # master <-> head round-trip latency


@dataclass
class RunResult:
    """Outcome of one engine run."""

    result: Any
    stats: RunStats
    robj: ReductionObject


class _Master:
    """Cluster-local job pool that refills from the head on demand.

    A master never *latches* an empty refill as "done": while the head
    still has outstanding jobs, one of them may yet be requeued by a
    crashed worker, so :meth:`get_job` keeps re-checking the scheduler
    until the run is truly drained (no unassigned *and* no outstanding
    jobs), the stop event fires, or -- for the non-blocking reserve
    path -- immediately reports nothing available.
    """

    #: Poll interval while waiting for outstanding jobs to complete or
    #: be requeued (only reached at the tail of a run).
    POLL_S = 0.001

    def __init__(
        self,
        cluster: ClusterConfig,
        scheduler: HeadScheduler,
        scheduler_lock: threading.Lock,
        batch_size: int,
        stop: threading.Event | None = None,
        n_workers: int = 1,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.scheduler_lock = scheduler_lock
        self.batch_size = batch_size
        self.stop = stop if stop is not None else threading.Event()
        self.pool = LocalJobPool()
        self._refill_lock = threading.Lock()
        self._alive = n_workers
        self._alive_lock = threading.Lock()

    def get_job(self, wait: bool = True) -> Job | None:
        """Next job for a worker, refilling from the head when depleted.

        Returns ``None`` when every job everywhere is assigned *and*
        completed (or the stop event fired).  With ``wait=False`` it
        instead returns ``None`` as soon as nothing is immediately
        available -- required by the prefetch reserve path, where the
        caller still holds its own outstanding job and blocking here
        would deadlock the tail of the run.
        """
        while True:
            job = self.pool.try_get()
            if job is not None:
                return job
            if self.stop.is_set():
                return None
            # Pay the master <-> head round-trip *outside* the refill
            # lock: concurrent requesters overlap their RTTs instead of
            # queueing a full round-trip each behind one sleeping
            # refiller (only the scheduler interaction is serialized).
            if self.cluster.link_latency_s > 0:
                time.sleep(self.cluster.link_latency_s)
            with self._refill_lock:
                # Re-check: another worker may have refilled while we
                # paid the round-trip or waited for the lock.
                job = self.pool.try_get()
                if job is not None:
                    return job
                with self.scheduler_lock:
                    jobs = self.scheduler.request_jobs(
                        self.cluster.location, self.batch_size
                    )
                    outstanding = self.scheduler.outstanding
                if jobs:
                    self.pool.add(jobs[1:])
                    return jobs[0]
            if outstanding == 0:
                return None  # truly drained: nothing left to requeue
            if not wait:
                return None
            time.sleep(self.POLL_S)

    def reserve_next(self) -> Job | None:
        """Reserve the job a worker will process after its current one.

        Same contract as :meth:`get_job` but non-blocking: the caller's
        *current* job is still outstanding, so waiting for the head to
        drain would deadlock (every pipelined worker parked on its own
        unfinished job).  The worker loops back to a blocking
        :meth:`get_job` after finishing its current job, so a late
        requeue is still picked up.
        """
        return self.get_job(wait=False)

    def worker_died(self) -> list[Job]:
        """Mark one worker dead; the last death surrenders the pool.

        While any worker of the cluster survives, pooled jobs stay (a
        survivor will drain them).  When the *last* worker dies, the
        pooled-but-unstarted jobs are pulled out and returned so the
        caller can hand them back to the head for the other cluster.
        """
        with self._alive_lock:
            self._alive -= 1
            if self._alive > 0:
                return []
        drained: list[Job] = []
        while (job := self.pool.try_get()) is not None:
            drained.append(job)
        return drained


class ThreadedEngine:
    """Multi-cluster, multi-worker threaded executor."""

    def __init__(
        self,
        clusters: list[ClusterConfig],
        stores: dict[str, StorageBackend],
        *,
        batch_size: int = 4,
        group_nbytes: int = 1 << 20,
        scheduler_factory=HeadScheduler,
        verify_chunks: bool = False,
        prefetch: bool = False,
        chunk_cache: ChunkCache | None = None,
        retry: RetryPolicy | None = None,
        crash_plan: dict[str, int] | None = None,
        adaptive_fetch: bool = False,
        min_part_nbytes: int = DEFAULT_MIN_PART_NBYTES,
        autotune_params: AutotuneParams | None = None,
    ) -> None:
        if not clusters:
            raise ValueError("need at least one cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        if crash_plan:
            worker_names = {
                f"{c.name}-w{wid}" for c in clusters for wid in range(c.n_workers)
            }
            unknown = set(crash_plan) - worker_names
            if unknown:
                raise ValueError(
                    f"crash_plan targets unknown workers: {sorted(unknown)}"
                )
            if any(n < 0 for n in crash_plan.values()):
                raise ValueError("crash_plan job counts must be non-negative")
        self.clusters = clusters
        self.stores = stores
        self.batch_size = batch_size
        self.group_nbytes = group_nbytes
        self.scheduler_factory = scheduler_factory
        self.verify_chunks = verify_chunks
        self.prefetch = prefetch
        self.chunk_cache = chunk_cache
        self.retry = retry
        self.crash_plan = dict(crash_plan) if crash_plan else {}
        self.adaptive_fetch = adaptive_fetch
        self.min_part_nbytes = min_part_nbytes
        self.autotune_params = autotune_params

    def run(self, spec: GeneralizedReductionSpec, index: DataIndex) -> RunResult:
        """Execute ``spec`` over the dataset described by ``index``."""
        missing = set(index.locations) - set(self.stores)
        if missing:
            raise ValueError(f"index references unknown stores: {sorted(missing)}")
        scheduler = self.scheduler_factory(jobs_from_index(index))
        scheduler_lock = threading.Lock()
        group_units = units_per_group(self.group_nbytes, index.fmt.unit_nbytes)

        t_start = time.monotonic()
        stats = RunStats()
        cluster_robjs: dict[str, list[ReductionObject]] = {}
        threads: list[threading.Thread] = []
        fetchers: dict[str, dict[str, ParallelFetcher]] = {}
        errors: list[BaseException] = []
        stop = threading.Event()

        for cluster in self.clusters:
            master = _Master(
                cluster, scheduler, scheduler_lock, self.batch_size,
                stop=stop, n_workers=cluster.n_workers,
            )
            cstats = ClusterStats(cluster.name, cluster.location)
            stats.clusters[cluster.name] = cstats
            cluster_robjs[cluster.name] = []
            fetchers[cluster.name] = make_cluster_fetchers(
                self.stores,
                cluster,
                cache=self.chunk_cache,
                prefetch_workers=max(1, cluster.n_workers),
                retry=self.retry,
                adaptive_fetch=self.adaptive_fetch,
                min_part_nbytes=self.min_part_nbytes,
                autotune_params=self.autotune_params,
            )
            for wid in range(cluster.n_workers):
                wstats = WorkerStats()
                cstats.workers.append(wstats)
                th = threading.Thread(
                    target=self._worker_loop,
                    name=f"{cluster.name}-w{wid}",
                    args=(
                        cluster, master, spec, index, group_units,
                        fetchers[cluster.name], wstats,
                        cluster_robjs[cluster.name], scheduler, scheduler_lock,
                        t_start, errors, stop,
                    ),
                    daemon=True,
                )
                threads.append(th)

        for th in threads:
            th.start()
        for th in threads:
            th.join()
        for cfs in fetchers.values():
            for f in cfs.values():
                f.close()
        # Fetch-path fault accounting, summed over each cluster's fetchers.
        for cluster in self.clusters:
            cstats = stats.clusters[cluster.name]
            for loc, f in fetchers[cluster.name].items():
                cstats.n_retries += f.n_retries
                cstats.n_errors += f.n_giveups
                cstats.bytes_retried += f.bytes_retried
                if f.autotune is not None and f.autotune.n_samples:
                    cstats.autotune[loc] = f.autotune.snapshot()
        stats.n_requeued_jobs = scheduler.n_reassigned
        if errors:
            raise errors[0]
        if not scheduler.all_done:
            failed = stats.n_failed_workers
            raise RuntimeError(
                f"run ended with {scheduler.remaining} unassigned / "
                f"{scheduler.outstanding} outstanding jobs"
                + (f" ({failed} workers failed, none left to recover)"
                   if failed else "")
            )

        # Per-cluster combination, then inter-cluster global reduction.
        for cstats in stats.clusters.values():
            cstats.finished_at = max(
                (w.finished_at for w in cstats.workers), default=0.0
            )
        processing_end = max(
            (c.finished_at for c in stats.clusters.values()), default=0.0
        )
        stats.processing_end_s = processing_end
        t_reduce0 = time.monotonic()
        uploads: list[ReductionObject] = []
        for cluster in self.clusters:
            cstats = stats.clusters[cluster.name]
            robjs = cluster_robjs[cluster.name]
            merged = spec.global_reduction(robjs) if robjs else spec.create_reduction_object()
            # Ship real serialized bytes, as the wire would carry them.
            t0 = time.monotonic()
            payload = serialize_robj(merged)
            if cluster.link_latency_s > 0:
                time.sleep(cluster.link_latency_s)
            uploads.append(deserialize_robj(payload))
            cstats.robj_nbytes = len(payload)
            cstats.robj_transfer_s = time.monotonic() - t0
        final = spec.global_reduction(uploads)
        t_end = time.monotonic()

        stats.total_s = t_end - t_start
        stats.global_reduction_s = t_end - t_reduce0
        for cstats in stats.clusters.values():
            cstats.idle_s = max(0.0, processing_end - cstats.finished_at)
            for w in cstats.workers:
                w.sync_s = max(0.0, stats.total_s - w.finished_at)
        return RunResult(spec.finalize(final), stats, final)

    # -- worker loop ---------------------------------------------------------

    def _fetch_now(
        self,
        job: Job,
        cluster_fetchers: dict[str, ParallelFetcher],
        wstats: WorkerStats,
    ) -> bytes:
        """Synchronous fetch of one job's bytes, fully accounted as stall."""
        t0 = time.monotonic()
        raw, info = cluster_fetchers[job.location].fetch_chunk(job.chunk)
        wstats.retrieval_s += time.monotonic() - t0 - info.decode_s
        wstats.decode_s += info.decode_s
        wstats.bytes_wire += info.bytes_wire
        wstats.bytes_logical += info.bytes_logical
        if info.cache_hit:
            wstats.cache_hits += 1
        else:
            wstats.cache_misses += 1
        return raw

    def _process(
        self,
        spec: GeneralizedReductionSpec,
        index: DataIndex,
        group_units: int,
        robj: ReductionObject,
        job: Job,
        raw: bytes,
        cluster: ClusterConfig,
        wstats: WorkerStats,
        scheduler: HeadScheduler,
        scheduler_lock: threading.Lock,
    ) -> None:
        """Decode, reduce, and complete one job."""
        if self.verify_chunks:
            from repro.data.integrity import verify_chunk_bytes

            verify_chunk_bytes(job.chunk, raw)
        t0 = time.monotonic()
        units = index.fmt.decode(raw)
        for group in iter_unit_groups(units, group_units):
            spec.local_reduction(robj, group)
        elapsed = time.monotonic() - t0
        wstats.processing_s += elapsed
        wstats.jobs_processed += 1
        if job.location != cluster.location:
            wstats.jobs_stolen += 1
        with scheduler_lock:
            scheduler.complete(job)
            recovered = job.job_id in scheduler.requeued_ids
        if recovered:
            # This execution replaced one lost to a failed worker; its
            # compute time is the recovery overhead (the re-fetch is in
            # retrieval_s like any other fetch).
            wstats.jobs_recovered += 1
            wstats.recovery_s += elapsed

    def _contain_failure(
        self,
        exc: BaseException,
        inflight: list[Job | None],
        pending: PrefetchHandle | None,
        master: _Master,
        scheduler: HeadScheduler,
        scheduler_lock: threading.Lock,
        wstats: WorkerStats,
        robjs_out: list[ReductionObject],
        robj: ReductionObject,
        t_start: float,
    ) -> None:
        """Absorb one worker's death without aborting the run.

        The worker's in-flight jobs (current and reserved-next) return
        to the head for reassignment; if it was its cluster's last
        worker, the master's pooled jobs go back too.  The partially
        folded reduction object is preserved -- it holds exactly the
        jobs this worker *completed*, so folding it plus re-executing
        the requeued jobs yields each job exactly once.
        """
        if pending is not None:
            pending.cancel()
        requeue: list[Job] = []
        for j in inflight:
            if j is not None and all(j.job_id != q.job_id for q in requeue):
                requeue.append(j)
        requeue.extend(master.worker_died())
        with scheduler_lock:
            for j in requeue:
                scheduler.reassign(j)
        wstats.failed = True
        wstats.finished_at = time.monotonic() - t_start
        robjs_out.append(robj)

    def _worker_loop(
        self,
        cluster: ClusterConfig,
        master: _Master,
        spec: GeneralizedReductionSpec,
        index: DataIndex,
        group_units: int,
        cluster_fetchers: dict[str, ParallelFetcher],
        wstats: WorkerStats,
        robjs_out: list[ReductionObject],
        scheduler: HeadScheduler,
        scheduler_lock: threading.Lock,
        t_start: float,
        errors: list[BaseException],
        stop: threading.Event,
    ) -> None:
        pending: PrefetchHandle | None = None
        # Containment bookkeeping: the job being fetched/processed and
        # the reserved-next job whose prefetch is in flight.  Both are
        # outstanding at the head until completed, so both must be
        # requeued if this worker dies.
        cur_job: Job | None = None
        next_job: Job | None = None
        crash_after = self.crash_plan.get(threading.current_thread().name)
        jobs_done = 0
        robj = spec.create_reduction_object()

        def maybe_crash() -> None:
            if crash_after is not None and jobs_done >= crash_after:
                raise WorkerCrash(
                    f"injected crash in {threading.current_thread().name} "
                    f"after {jobs_done} jobs"
                )

        try:
            while not stop.is_set():
                cur_job = master.get_job()
                if cur_job is None:
                    break
                if self.prefetch:
                    # Pipelined path: the first fetch is unavoidably
                    # serial; every later fetch overlaps the previous
                    # job's compute.  When the reserve runs dry the
                    # outer loop re-checks the head, so jobs requeued by
                    # a late failure are still picked up.
                    maybe_crash()
                    raw = self._fetch_now(cur_job, cluster_fetchers, wstats)
                    while cur_job is not None and not stop.is_set():
                        maybe_crash()
                        next_job = master.reserve_next()
                        if next_job is not None:
                            pending = cluster_fetchers[
                                next_job.location
                            ].fetch_chunk_async(next_job.chunk)
                        self._process(
                            spec, index, group_units, robj, cur_job, raw,
                            cluster, wstats, scheduler, scheduler_lock,
                        )
                        jobs_done += 1
                        cur_job = None
                        if next_job is None:
                            break
                        ready = pending.done()
                        t_need = time.monotonic()
                        raw = pending.result()
                        stall = time.monotonic() - t_need
                        wstats.retrieval_s += stall
                        wstats.overlap_s += max(0.0, pending.fetch_s - stall)
                        wstats.decode_s += pending.decode_s
                        wstats.bytes_wire += pending.bytes_wire
                        wstats.bytes_logical += pending.bytes_logical
                        if ready:
                            wstats.prefetch_hits += 1
                        else:
                            wstats.prefetch_misses += 1
                        if pending.cache_hit:
                            wstats.cache_hits += 1
                        else:
                            wstats.cache_misses += 1
                        pending = None
                        cur_job, next_job = next_job, None
                else:
                    # Serial path: fetch then process, one job at a time.
                    maybe_crash()
                    raw = self._fetch_now(cur_job, cluster_fetchers, wstats)
                    self._process(
                        spec, index, group_units, robj, cur_job, raw,
                        cluster, wstats, scheduler, scheduler_lock,
                    )
                    jobs_done += 1
                    cur_job = None
            wstats.finished_at = time.monotonic() - t_start
            robjs_out.append(robj)
        except (WorkerCrash, RetryExhausted) as exc:
            # Recoverable: this worker is lost, the run is not.
            self._contain_failure(
                exc, [cur_job, next_job], pending, master, scheduler,
                scheduler_lock, wstats, robjs_out, robj, t_start,
            )
            pending = None
        except BaseException as exc:  # surfaced by run()
            errors.append(exc)
            stop.set()  # fail fast: abort every other worker promptly
        finally:
            if pending is not None:
                pending.cancel()
