"""Threaded execution engine: the real, working middleware.

Runs the complete head/master/slave protocol with actual data movement
on one machine: worker threads pull jobs through their master from the
shared head scheduler, fetch chunk byte ranges (multi-threaded) from
whichever store holds them, fold unit groups into per-worker reduction
objects, and the head performs the final global reduction.

The per-worker loop itself -- synchronous and pipelined-prefetch fetch
paths, decode/fold, stats accounting, crash injection and containment --
lives in :class:`repro.runtime.core.SlaveRuntime` and is shared with the
other engines; this module contributes only the threaded control plane:
per-cluster :class:`LockMaster` instances refilling worker threads from
the shared head scheduler under a lock, and the shared
:func:`finalize_run` epilogue.

Two data-pipeline optimizations sit on the fetch path:

* **prefetching** (``prefetch=True``): a worker reserves job *N+1* from
  its master before processing job *N* and retrieves its bytes on a
  background thread, overlapping data movement with computation (the
  double-buffered slave of data-cloud engines like Sector/Sphere);
* a **chunk cache** (``chunk_cache=...``): a shared byte-budgeted LRU
  consulted before any store traffic, so iterative workloads re-reading
  the same remote chunks pay the retrieval cost once.

Both are result-invariant -- a worker folds exactly the same unit groups
in the same order -- and both are accounted in :class:`WorkerStats`
(``overlap_s``, ``prefetch_hits``, ``cache_hits``).

The engine is fault tolerant on the WAN fetch path:

* a **retry policy** (``retry=RetryPolicy(...)``) makes every store
  ``get`` retry transient errors with jittered exponential backoff, so
  a flaky link costs latency, not correctness;
* **worker-crash containment**: a worker killed by the crash-injection
  plan (``crash_plan``) or whose fetch exhausts its retries no longer
  aborts the run.  Its in-flight job goes back to the head via
  :meth:`HeadScheduler.reassign` and is re-executed by a survivor,
  while its partially-folded reduction object -- which already holds
  every job it *completed* -- is preserved and included in the global
  reduction (the cheap robj-checkpoint recovery the Generalized
  Reduction model affords).  Non-retryable errors (a permanent fault,
  a bug in user code) still fail the whole run fast.

This engine demonstrates functional correctness of the middleware at any
scale that fits in memory; the discrete-event simulator in
:mod:`repro.sim` executes the same policy code against a resource model
for performance experiments.
"""

from __future__ import annotations

import threading
import time

from repro.core.api import GeneralizedReductionSpec
from repro.core.reduction_object import ReductionObject
from repro.data.index import DataIndex
from repro.data.units import units_per_group
from repro.runtime.core import (
    ClusterConfig,
    EngineBase,
    EngineOptions,
    LockMaster,
    RunResult,
    SlaveRuntime,
    finalize_run,
    make_cluster_fetchers,
)
from repro.runtime.pushdown import plan_jobs
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.storage.transfer import ParallelFetcher

__all__ = [
    "ClusterConfig",
    "RunResult",
    "ThreadedEngine",
    "make_cluster_fetchers",
]

# Backwards-compatible alias: the lock-based master moved to the shared
# core (the process engine and tests import it from here).
_Master = LockMaster


class ThreadedEngine(EngineBase):
    """Multi-cluster, multi-worker threaded executor."""

    def run(self, spec: GeneralizedReductionSpec, index: DataIndex) -> RunResult:
        """Execute ``spec`` over the dataset described by ``index``."""
        EngineOptions.validate_index(index, self.stores)
        opts = self.options
        # Metadata-first retrieval: apply the spec's pushdown contract
        # (prune + prioritize via index ChunkStats) before the job pool
        # exists -- pruned chunks are never fetched, decoded, or folded.
        plan = plan_jobs(index, spec, opts.pushdown, stores=self.stores)
        scheduler = opts.scheduler_factory(plan.jobs)
        scheduler_lock = threading.Lock()
        group_units = units_per_group(opts.group_nbytes, index.fmt.unit_nbytes)
        health = self.make_health()
        if health is not None and hasattr(scheduler, "attach_health"):
            scheduler.attach_health(health.open_locations)

        t_start = time.monotonic()
        stats = RunStats()
        plan.apply_to(stats)
        cluster_robjs: dict[str, list[ReductionObject]] = {}
        threads: list[threading.Thread] = []
        fetchers: dict[str, dict[str, ParallelFetcher]] = {}
        errors: list[BaseException] = []
        stop = threading.Event()

        for cluster in self.clusters:
            master = LockMaster(
                cluster, scheduler, scheduler_lock, opts.batch_size,
                stop=stop, n_workers=cluster.n_workers,
            )
            cstats = ClusterStats(cluster.name, cluster.location)
            stats.clusters[cluster.name] = cstats
            cluster_robjs[cluster.name] = []
            fetchers[cluster.name] = make_cluster_fetchers(
                self.stores,
                cluster,
                cache=opts.chunk_cache,
                prefetch_workers=max(1, cluster.n_workers),
                retry=opts.retry,
                adaptive_fetch=opts.adaptive_fetch,
                min_part_nbytes=opts.min_part_nbytes,
                autotune_params=opts.autotune_params,
                health=health,
                hedge=opts.hedge,
            )
            for wid in range(cluster.n_workers):
                wstats = WorkerStats()
                cstats.workers.append(wstats)
                runtime = SlaveRuntime(
                    f"{cluster.name}-w{wid}",
                    cluster=cluster,
                    port=master,
                    spec=spec,
                    index=index,
                    group_units=group_units,
                    fetchers=fetchers[cluster.name],
                    wstats=wstats,
                    robjs_out=cluster_robjs[cluster.name],
                    options=opts,
                    t_start=t_start,
                    errors=errors,
                    stop=stop,
                )
                threads.append(
                    threading.Thread(
                        target=runtime.run, name=runtime.name, daemon=True
                    )
                )

        for th in threads:
            th.start()
        for th in threads:
            th.join()
        return finalize_run(
            spec=spec,
            clusters=self.clusters,
            stats=stats,
            scheduler=scheduler,
            fetchers=fetchers,
            cluster_robjs=cluster_robjs,
            errors=errors,
            t_start=t_start,
            health=health,
        )
