"""Head-node job assignment policy.

This is the paper's scheduling heart, factored as a pure (lock-free)
data structure so the threaded runtime and the discrete-event simulator
execute the *identical* policy:

* **Locality first** -- a requesting cluster receives jobs whose chunks
  are stored at its own site while any remain;
* **Consecutive jobs** -- assigned jobs are consecutive chunks of one
  file, "because it allows the compute units to sequentially read jobs
  from the files";
* **Work stealing** -- once a cluster's local jobs are exhausted, it is
  handed remote jobs, "chosen from files which the minimum number of
  nodes are currently processing", minimizing file contention;
* **On-demand pull** -- masters request batches when their pool runs
  low, so faster clusters naturally process more jobs;
* **Pushdown priority** -- when an app declares a
  ``priority(chunk_stats)`` hint (metadata-first retrieval), jobs with
  higher priority are ordered first within each file and steer file
  selection, composing with (not overriding) locality and breaker
  deprioritization.

Callers must serialize access (the threaded engine wraps calls in a
lock; the simulator is single-threaded by construction).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.runtime.jobs import Job

__all__ = ["HeadScheduler", "RandomScheduler", "StaticScheduler"]


class HeadScheduler:
    """Locality-aware, contention-minimizing job assignment."""

    def __init__(self, jobs: list[Job]) -> None:
        # Per-file queue of unassigned jobs: chunk order so batches are
        # consecutive byte ranges, except that pushdown priority (when
        # an app declares one) runs higher-priority jobs first within
        # each file.  With all priorities 0.0 -- the default -- this is
        # exactly the historical chunk-id FIFO.
        self._by_file: dict[int, deque[Job]] = {}
        self._file_location: dict[int, str] = {}
        # Every location a file's chunks can be fetched from (primary
        # plus replicas) -- the health deprioritization input.
        self._file_sources: dict[int, frozenset[str]] = {}
        for job in sorted(jobs, key=lambda j: (-j.priority, j.job_id)):
            self._by_file.setdefault(job.file_id, deque()).append(job)
            self._file_location[job.file_id] = job.location
            if job.file_id not in self._file_sources:
                self._file_sources[job.file_id] = frozenset(
                    s.location for s in job.chunk.sources
                )
        self._active_readers: dict[int, int] = {fid: 0 for fid in self._by_file}
        self._unassigned = len(jobs)
        self._outstanding = 0  # assigned but not yet completed
        self._open_locations: Callable[[], set[str]] | None = None
        #: Tenant fair-share deficit of the run this scheduler serves
        #: (served work / tenant weight).  The multi-job service sets it
        #: before every assignment; 0.0 -- the single-job default -- is
        #: a constant term and preserves the historical order exactly.
        self.tenant_bias = 0.0
        self.assigned_counts: dict[str, int] = {}
        self.stolen_counts: dict[str, int] = {}
        self.n_reassigned = 0          # reassign() calls (requeued jobs)
        self.requeued_ids: set[int] = set()  # job ids ever requeued

    def attach_health(self, open_locations: Callable[[], set[str]]) -> None:
        """Wire store-health feedback into file selection.

        ``open_locations`` returns the set of store locations whose
        circuit breaker is currently open.  Files whose *every* source
        location sits behind an open breaker are deprioritized: they are
        still assigned (the fetch path's last-resort attempt may find
        the store recovered), but only after every file with a healthy
        source, which gives the open breakers time to half-open.
        """
        self._open_locations = open_locations

    def _blocked(self, fid: int, open_locs: set[str]) -> int:
        """1 when every source of ``fid`` is behind an open breaker."""
        sources = self._file_sources.get(fid)
        if not sources:
            return 0
        return int(sources <= open_locs)

    # -- queries -------------------------------------------------------------

    @property
    def remaining(self) -> int:
        """Jobs not yet assigned."""
        return self._unassigned

    @property
    def outstanding(self) -> int:
        """Jobs assigned but not yet reported complete."""
        return self._outstanding

    @property
    def all_done(self) -> bool:
        return self._unassigned == 0 and self._outstanding == 0

    # -- policy --------------------------------------------------------------

    def _files_with_jobs(self, location: str | None) -> list[int]:
        """File ids that still hold unassigned jobs, optionally at ``location``."""
        return [
            fid
            for fid, q in self._by_file.items()
            if q and (location is None or self._file_location[fid] == location)
        ]

    def _open_locs(self) -> set[str]:
        """Currently-open breaker locations ({} when health not wired)."""
        return self._open_locations() if self._open_locations is not None else set()

    def _head_priority(self, fid: int) -> float:
        """Pushdown priority of the file's next unassigned job (0.0 default)."""
        q = self._by_file[fid]
        return q[0].priority if q else 0.0

    def assignment_key(
        self, fid: int, open_locs: set[str]
    ) -> tuple[int, float, float, int, int]:
        """The one sort key every assignment decision minimizes.

        Terms, most significant first: breaker blocking (healthy files
        before ones stranded behind open breakers), tenant fair-share
        deficit (the multi-job service's weighted-fair term -- constant
        0.0 within a single run), pushdown priority (higher first),
        active-reader contention, then file id as the deterministic
        tiebreak.  Extracted so the tenant-weight term is added in
        exactly one place instead of being rebuilt inline per call site.
        """
        return (
            self._blocked(fid, open_locs) if open_locs else 0,
            self.tenant_bias,
            -self._head_priority(fid),
            self._active_readers[fid],
            fid,
        )

    def _pick_file(self, files: list[int]) -> int:
        """Least-contended file, deprioritizing breaker-blocked ones.

        Pushdown priority slots between breaker blocking and contention:
        among equally-(un)blocked candidates the file whose next job has
        the highest priority wins, then fewest active readers.  All
        priorities 0.0 (no pushdown) reduces to the historical order.
        Note ``reassign()`` requeues at the front of its file regardless
        of priority -- recovery keeps sequential batches contiguous.
        """
        open_locs = self._open_locs()
        return min(files, key=lambda f: self.assignment_key(f, open_locs))

    def _take_from_file(self, fid: int, max_jobs: int) -> list[Job]:
        q = self._by_file[fid]
        batch = [q.popleft() for _ in range(min(max_jobs, len(q)))]
        self._unassigned -= len(batch)
        self._outstanding += len(batch)
        self._active_readers[fid] += len(batch)
        return batch

    def request_jobs(self, cluster_location: str, max_jobs: int) -> list[Job]:
        """Assign up to ``max_jobs`` consecutive jobs to a requesting cluster.

        Returns an empty list when no unassigned jobs remain anywhere, in
        which case the requesting master should enter global reduction.
        """
        if max_jobs <= 0:
            raise ValueError("max_jobs must be positive")
        # Locality: consecutive jobs from a local file, preferring the
        # file already being read the least to spread sequential streams.
        local_files = self._files_with_jobs(cluster_location)
        if local_files:
            fid = self._pick_file(local_files)
            open_locs = self._open_locs()
            if open_locs and self._blocked(fid, open_locs):
                # Every local candidate is stranded behind open breakers
                # (the pick above already prefers unblocked files).
                # Steal a healthy remote file instead, buying the open
                # breakers their cooldown; the blocked files are still
                # assigned once nothing healthy remains.
                healthy_remote = [
                    f
                    for f in self._files_with_jobs(None)
                    if not self._blocked(f, open_locs)
                ]
                if healthy_remote:
                    fid = self._pick_file(healthy_remote)
                    batch = self._take_from_file(fid, max_jobs)
                    self.assigned_counts[cluster_location] = (
                        self.assigned_counts.get(cluster_location, 0) + len(batch)
                    )
                    stolen = sum(
                        1 for j in batch if j.location != cluster_location
                    )
                    if stolen:
                        self.stolen_counts[cluster_location] = (
                            self.stolen_counts.get(cluster_location, 0) + stolen
                        )
                    return batch
            batch = self._take_from_file(fid, max_jobs)
            self.assigned_counts[cluster_location] = (
                self.assigned_counts.get(cluster_location, 0) + len(batch)
            )
            return batch
        # Stealing: remote file with the minimum number of active readers.
        remote_files = self._files_with_jobs(None)
        if remote_files:
            fid = self._pick_file(remote_files)
            batch = self._take_from_file(fid, max_jobs)
            self.assigned_counts[cluster_location] = (
                self.assigned_counts.get(cluster_location, 0) + len(batch)
            )
            self.stolen_counts[cluster_location] = (
                self.stolen_counts.get(cluster_location, 0) + len(batch)
            )
            return batch
        return []

    def complete(self, job: Job) -> None:
        """Report one assigned job processed (releases file contention)."""
        if self._outstanding <= 0:
            raise RuntimeError("complete() called with no outstanding jobs")
        self._outstanding -= 1
        readers = self._active_readers[job.file_id]
        if readers <= 0:
            raise RuntimeError(f"file {job.file_id} has no active readers")
        self._active_readers[job.file_id] = readers - 1

    def reassign(self, job: Job) -> None:
        """Return an assigned-but-unfinished job to the pool.

        Called when a worker dies mid-job (fault tolerance): the job
        becomes available again and a surviving worker -- possibly at
        the other cluster -- will pick it up.  Requeued at the front of
        its file so sequential-read batches stay contiguous.
        """
        if self._outstanding <= 0:
            raise RuntimeError("reassign() called with no outstanding jobs")
        self._outstanding -= 1
        self._unassigned += 1
        readers = self._active_readers[job.file_id]
        if readers <= 0:
            raise RuntimeError(f"file {job.file_id} has no active readers")
        self._active_readers[job.file_id] = readers - 1
        self._by_file[job.file_id].appendleft(job)
        self.n_reassigned += 1
        self.requeued_ids.add(job.job_id)

    def drain_unassigned(self) -> list[Job]:
        """Withdraw every not-yet-assigned job (cancellation path).

        Outstanding jobs are untouched -- workers already hold them and
        will still report ``complete()``, after which ``all_done``
        becomes true and the run can be finalized.  Returns the drained
        jobs (callers may log or reuse them).
        """
        drained: list[Job] = []
        for q in self._by_file.values():
            drained.extend(q)
            q.clear()
        self._unassigned -= len(drained)
        return drained


class StaticScheduler(HeadScheduler):
    """Ablation baseline: strict co-location, no work stealing.

    Each cluster only ever receives jobs whose data lives at its own
    site -- the co-location constraint of conventional MapReduce
    deployments.  With skewed data placement the data-poor cluster
    idles once its share is exhausted; the stealing ablation benchmark
    quantifies the cost.
    """

    def request_jobs(self, cluster_location: str, max_jobs: int) -> list[Job]:
        if max_jobs <= 0:
            raise ValueError("max_jobs must be positive")
        local_files = self._files_with_jobs(cluster_location)
        if not local_files:
            return []
        fid = self._pick_file(local_files)
        batch = self._take_from_file(fid, max_jobs)
        self.assigned_counts[cluster_location] = (
            self.assigned_counts.get(cluster_location, 0) + len(batch)
        )
        return batch


class RandomScheduler(HeadScheduler):
    """Ablation baseline: ignores locality and contention.

    Assigns jobs in a seeded random order regardless of where their data
    lives, so batches are neither local nor consecutive.  Used by the
    scheduling ablation benchmark.
    """

    def __init__(self, jobs: list[Job], seed: int = 0) -> None:
        import random

        super().__init__(jobs)
        rng = random.Random(seed)
        self._order: deque[Job] = deque()
        shuffled = sorted(jobs, key=lambda j: j.job_id)
        rng.shuffle(shuffled)
        self._order.extend(shuffled)

    def request_jobs(self, cluster_location: str, max_jobs: int) -> list[Job]:
        if max_jobs <= 0:
            raise ValueError("max_jobs must be positive")
        batch: list[Job] = []
        while self._order and len(batch) < max_jobs:
            job = self._order.popleft()
            # Keep the bookkeeping of the parent class coherent.
            self._by_file[job.file_id].remove(job)
            self._unassigned -= 1
            self._outstanding += 1
            self._active_readers[job.file_id] += 1
            batch.append(job)
        if batch:
            self.assigned_counts[cluster_location] = (
                self.assigned_counts.get(cluster_location, 0) + len(batch)
            )
            stolen = sum(1 for j in batch if j.location != cluster_location)
            if stolen:
                self.stolen_counts[cluster_location] = (
                    self.stolen_counts.get(cluster_location, 0) + stolen
                )
        return batch

    def reassign(self, job: Job) -> None:
        super().reassign(job)
        # Keep the random draw order in sync with the per-file queues.
        self._order.appendleft(job)

    def drain_unassigned(self) -> list[Job]:
        drained = super().drain_unassigned()
        # The draw order only ever holds unassigned jobs; empty it too.
        self._order.clear()
        return drained
