"""Runtime: jobs, scheduling policy, stats, and the threaded engine."""

from repro.runtime.actors import ActorEngine
from repro.runtime.engine import ClusterConfig, RunResult, ThreadedEngine
from repro.runtime.jobs import Job, LocalJobPool, jobs_from_index
from repro.runtime.messages import AssignJobs, Channel, RequestJobs, RobjUpload, Shutdown
from repro.runtime.scheduler import HeadScheduler, RandomScheduler, StaticScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats

__all__ = [
    "ActorEngine",
    "ClusterConfig",
    "RunResult",
    "ThreadedEngine",
    "Job",
    "LocalJobPool",
    "jobs_from_index",
    "AssignJobs",
    "Channel",
    "RequestJobs",
    "RobjUpload",
    "Shutdown",
    "HeadScheduler",
    "RandomScheduler",
    "StaticScheduler",
    "ClusterStats",
    "RunStats",
    "WorkerStats",
]
