"""Runtime: jobs, scheduling policy, stats, and the execution engines."""

from repro.runtime.actors import ActorEngine
from repro.runtime.core import (
    ClusterConfig,
    EngineOptions,
    LockMaster,
    MasterPort,
    RunResult,
    SlaveRuntime,
)
from repro.runtime.engine import ThreadedEngine
from repro.runtime.jobs import Job, LocalJobPool, jobs_from_index
from repro.runtime.messages import (
    AssignJobs,
    Channel,
    ReassignJobs,
    RequestJobs,
    RobjUpload,
    Shutdown,
)
from repro.runtime.process_engine import ProcessEngine
from repro.runtime.pushdown import (
    PushdownPlan,
    PushdownSoundnessError,
    plan_jobs,
    verify_pruned,
)
from repro.runtime.scheduler import HeadScheduler, RandomScheduler, StaticScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats

#: The three execution engines, keyed by their CLI / driver name.
#:
#: * ``threaded`` -- worker threads in one process; the reference
#:   implementation of the head/master/slave protocol.
#: * ``process`` -- one real OS process per slave; chunk bytes cross via
#:   shared memory, reduction objects via pickle-5 out-of-band buffers.
#: * ``actor`` -- message-passing actors over explicit channels; the
#:   protocol-fidelity engine.
#:
#: All three accept the same :class:`EngineOptions` surface and run the
#: same :class:`SlaveRuntime` worker loop; they differ only in how the
#: control plane is transported.
ENGINES = {
    "threaded": ThreadedEngine,
    "process": ProcessEngine,
    "actor": ActorEngine,
}


def make_engine(name: str, clusters, stores, **kwargs):
    """Construct an execution engine by name.

    ``kwargs`` is the unified :class:`EngineOptions` surface (batch
    size, prefetch, cache, retry policy, crash plan, ...); every engine
    accepts every option.  Alternatively pass a prebuilt options object
    as ``options=EngineOptions(...)``.
    """
    try:
        cls = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {sorted(ENGINES)}"
        ) from None
    return cls(clusters, stores, **kwargs)


__all__ = [
    "ActorEngine",
    "ClusterConfig",
    "EngineOptions",
    "LockMaster",
    "MasterPort",
    "SlaveRuntime",
    "RunResult",
    "ThreadedEngine",
    "ProcessEngine",
    "ENGINES",
    "make_engine",
    "Job",
    "LocalJobPool",
    "jobs_from_index",
    "AssignJobs",
    "Channel",
    "ReassignJobs",
    "RequestJobs",
    "RobjUpload",
    "Shutdown",
    "PushdownPlan",
    "PushdownSoundnessError",
    "plan_jobs",
    "verify_pruned",
    "HeadScheduler",
    "RandomScheduler",
    "StaticScheduler",
    "ClusterStats",
    "RunStats",
    "WorkerStats",
]
