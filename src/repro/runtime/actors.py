"""Actor-based control plane: the literal Figure-2 architecture.

Where :class:`~repro.runtime.engine.ThreadedEngine` invokes the head
scheduler through a lock (fast, simple), this engine runs the paper's
architecture as drawn: a **head actor** thread owning the global job
pool and the final global reduction, one **master actor** thread per
cluster owning the local pool, and slave worker threads -- all
communicating exclusively through typed messages
(:class:`RequestJobs`, :class:`AssignJobs`, :class:`ReassignJobs`,
:class:`RobjUpload`) over :class:`~repro.runtime.messages.Channel`
objects whose latency models the control-plane delay between a cloud
master and a local head.

The slaves themselves are :class:`~repro.runtime.core.SlaveRuntime`
instances -- the same loop the threaded and process engines run -- so
prefetching, chunk caching, retries, chunk verification, and
worker-crash containment hold here by construction.  The master actor
is this engine's :class:`~repro.runtime.core.MasterPort`: job refills
are head round-trips over the channel, and the port is drain-aware --
an empty :class:`AssignJobs` reply with jobs still outstanding at the
head means "poll again", never "done", so a job requeued by a crashed
worker is never stranded.

All engines produce identical results; the equivalence matrix asserts
it under prefetch, caching, injected faults, and worker crashes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.api import GeneralizedReductionSpec
from repro.core.reduction_object import ReductionObject
from repro.core.serialization import deserialize_robj, serialize_robj
from repro.data.index import DataIndex
from repro.data.units import units_per_group
from repro.runtime.core import (
    ClusterConfig,
    EngineBase,
    EngineOptions,
    LockMaster,
    RunResult,
    SlaveRuntime,
    finalize_timing,
    make_cluster_fetchers,
    rollup_fetcher_stats,
)
from repro.runtime.jobs import Job
from repro.runtime.pushdown import plan_jobs
from repro.runtime.messages import (
    AssignJobs,
    Channel,
    ReassignJobs,
    RequestJobs,
    RobjUpload,
    Shutdown,
)
from repro.runtime.scheduler import HeadScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.storage.base import StorageBackend
from repro.storage.health import HealthRegistry

__all__ = ["ActorEngine"]


@dataclass(frozen=True)
class _CompleteJobs:
    """Master -> head: these assigned jobs finished processing."""

    cluster: str
    jobs: tuple[Job, ...]


class _HeadActor(threading.Thread):
    """Owns the global scheduler; services masters over channels."""

    def __init__(
        self,
        scheduler: HeadScheduler,
        inbox: Channel,
        master_channels: dict[str, Channel],
        spec: GeneralizedReductionSpec,
        n_clusters: int,
    ) -> None:
        super().__init__(name="head", daemon=True)
        self.scheduler = scheduler
        self.inbox = inbox
        self.master_channels = master_channels
        self.spec = spec
        self.n_clusters = n_clusters
        self.uploads: list[ReductionObject] = []
        self.final: ReductionObject | None = None
        self.global_reduction_s = 0.0
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            while True:
                msg = self.inbox.recv()
                if isinstance(msg, RequestJobs):
                    jobs = self.scheduler.request_jobs(msg.location, msg.max_jobs)
                    requeued = tuple(
                        j.job_id
                        for j in jobs
                        if j.job_id in self.scheduler.requeued_ids
                    )
                    self.master_channels[msg.cluster].send(
                        AssignJobs(
                            tuple(jobs),
                            outstanding=self.scheduler.outstanding,
                            requeued=requeued,
                        )
                    )
                elif isinstance(msg, _CompleteJobs):
                    for job in msg.jobs:
                        self.scheduler.complete(job)
                elif isinstance(msg, ReassignJobs):
                    for job in msg.jobs:
                        self.scheduler.reassign(job)
                elif isinstance(msg, RobjUpload):
                    t0 = time.monotonic()
                    self.uploads.append(deserialize_robj(msg.payload))
                    if len(self.uploads) == self.n_clusters:
                        self.final = self.spec.global_reduction(self.uploads)
                        self.global_reduction_s += time.monotonic() - t0
                        return
                    self.global_reduction_s += time.monotonic() - t0
                elif isinstance(msg, Shutdown):
                    return
                else:  # pragma: no cover - defensive
                    raise TypeError(f"head got unexpected message {msg!r}")
        except BaseException as exc:  # surfaced by the engine
            self.error = exc


class _MasterActor(threading.Thread):
    """Owns one cluster: pool, slaves, combination, upload.

    Implements :class:`~repro.runtime.core.MasterPort` for its slaves;
    every head interaction is a message round-trip over channels with
    modelled latency.
    """

    #: Poll interval while the head has outstanding jobs that may yet be
    #: requeued (only reached at the tail of a run).
    POLL_S = LockMaster.POLL_S

    def __init__(
        self,
        cluster: ClusterConfig,
        head_inbox: Channel,
        inbox: Channel,
        spec: GeneralizedReductionSpec,
        index: DataIndex,
        stores: dict[str, StorageBackend],
        options: EngineOptions,
        group_units: int,
        cstats: ClusterStats,
        t_start: float,
        errors: list[BaseException],
        stop: threading.Event,
        *,
        health: HealthRegistry | None = None,
    ) -> None:
        super().__init__(name=f"master-{cluster.name}", daemon=True)
        self.health = health
        self.cluster = cluster
        self.head_inbox = head_inbox
        self.inbox = inbox
        self.spec = spec
        self.index = index
        self.stores = stores
        self.options = options
        self.group_units = group_units
        self.cstats = cstats
        self.t_start = t_start
        self.errors = errors
        self.stop = stop
        self.error: BaseException | None = None
        self._pool: list[Job] = []
        self._done = False
        self._requeued_ids: set[int] = set()
        self._lock = threading.Lock()
        self._refill_lock = threading.Lock()
        self._alive = cluster.n_workers
        self._alive_lock = threading.Lock()

    # -- MasterPort: API used by this cluster's worker threads ---------------

    def get_job(self, wait: bool = True) -> Job | None:
        """Next job, refilling over the channel when the pool is depleted.

        Drain-aware: an empty :class:`AssignJobs` reply only latches
        "done" when the head reports zero outstanding jobs; otherwise a
        crashed worker may still requeue work, so a blocking caller
        polls and a non-blocking one (the prefetch reserve path) returns
        ``None`` immediately.
        """
        while True:
            with self._lock:
                if self._pool:
                    return self._pool.pop(0)
                if self._done:
                    return None
            if self.stop.is_set():
                return None
            with self._refill_lock:
                with self._lock:
                    if self._pool:
                        return self._pool.pop(0)
                    if self._done:
                        return None
                # One worker performs the head round-trip on behalf of
                # the cluster; channel latency models the network.
                self.head_inbox.send(
                    RequestJobs(
                        self.cluster.name,
                        self.cluster.location,
                        self.options.batch_size,
                    )
                )
                reply = self.inbox.recv()
                assert isinstance(reply, AssignJobs)
                with self._lock:
                    if reply.jobs:
                        self._requeued_ids.update(reply.requeued)
                        self._pool.extend(reply.jobs)
                        return self._pool.pop(0)
                    if reply.outstanding == 0:
                        self._done = True
                        return None
            if not wait:
                return None
            time.sleep(self.POLL_S)

    def reserve_next(self) -> Job | None:
        """Non-blocking reserve of the job after the current one."""
        return self.get_job(wait=False)

    def complete(self, job: Job) -> bool:
        """Report one job done; True if it recovered a requeued job."""
        self.head_inbox.send(_CompleteJobs(self.cluster.name, (job,)))
        with self._lock:
            return job.job_id in self._requeued_ids

    def requeue(self, jobs: list[Job]) -> None:
        """Hand a dead worker's in-flight jobs back to the head."""
        if jobs:
            self.head_inbox.send(ReassignJobs(self.cluster.name, tuple(jobs)))

    def worker_died(self) -> list[Job]:
        """Mark one worker dead; the last death surrenders the pool."""
        with self._alive_lock:
            self._alive -= 1
            if self._alive > 0:
                return []
        with self._lock:
            drained = list(self._pool)
            self._pool.clear()
        return drained

    # -- the master's own thread: slaves, barrier, combination, upload ------

    def run(self) -> None:
        try:
            opts = self.options
            fetchers = make_cluster_fetchers(
                self.stores,
                self.cluster,
                cache=opts.chunk_cache,
                prefetch_workers=max(1, self.cluster.n_workers),
                retry=opts.retry,
                adaptive_fetch=opts.adaptive_fetch,
                min_part_nbytes=opts.min_part_nbytes,
                autotune_params=opts.autotune_params,
                health=self.health,
                hedge=opts.hedge,
            )
            robjs: list[ReductionObject] = []
            workers = []
            for wid in range(self.cluster.n_workers):
                wstats = WorkerStats()
                self.cstats.workers.append(wstats)
                runtime = SlaveRuntime(
                    f"{self.cluster.name}-w{wid}",
                    cluster=self.cluster,
                    port=self,
                    spec=self.spec,
                    index=self.index,
                    group_units=self.group_units,
                    fetchers=fetchers,
                    wstats=wstats,
                    robjs_out=robjs,
                    options=opts,
                    t_start=self.t_start,
                    errors=self.errors,
                    stop=self.stop,
                )
                th = threading.Thread(
                    target=runtime.run, name=runtime.name, daemon=True
                )
                workers.append(th)
                th.start()
            for th in workers:
                th.join()
            rollup_fetcher_stats(self.cstats, fetchers)
            if self.errors:
                raise self.errors[0]
            self.cstats.finished_at = max(
                (w.finished_at for w in self.cstats.workers), default=0.0
            )
            merged = (
                self.spec.global_reduction(robjs)
                if robjs
                else self.spec.create_reduction_object()
            )
            payload = serialize_robj(merged)
            self.cstats.robj_nbytes = len(payload)
            t0 = time.monotonic()
            self.head_inbox.send(RobjUpload(self.cluster.name, payload, len(payload)))
            self.cstats.robj_transfer_s = time.monotonic() - t0
        except BaseException as exc:
            self.error = exc


class ActorEngine(EngineBase):
    """Message-passing head/master/slave engine (same API as ThreadedEngine)."""

    def run(self, spec: GeneralizedReductionSpec, index: DataIndex) -> RunResult:
        EngineOptions.validate_index(index, self.stores)
        opts = self.options
        # Pushdown (metadata-first retrieval) runs before the job pool
        # exists, identically to the other engines.
        plan = plan_jobs(index, spec, opts.pushdown, stores=self.stores)
        scheduler = opts.scheduler_factory(plan.jobs)
        group_units = units_per_group(opts.group_nbytes, index.fmt.unit_nbytes)
        health = self.make_health()
        if health is not None and hasattr(scheduler, "attach_health"):
            scheduler.attach_health(health.open_locations)
        t_start = time.monotonic()
        stats = RunStats()
        plan.apply_to(stats)
        errors: list[BaseException] = []
        stop = threading.Event()

        head_inbox = Channel()
        master_channels = {
            c.name: Channel(latency_s=c.link_latency_s) for c in self.clusters
        }
        head = _HeadActor(scheduler, head_inbox, master_channels, spec, len(self.clusters))
        masters = []
        for cluster in self.clusters:
            cstats = ClusterStats(cluster.name, cluster.location)
            stats.clusters[cluster.name] = cstats
            masters.append(
                _MasterActor(
                    cluster, head_inbox, master_channels[cluster.name], spec,
                    index, self.stores, opts, group_units,
                    cstats, t_start, errors, stop,
                    health=health,
                )
            )

        head.start()
        for m in masters:
            m.start()
        for m in masters:
            m.join()
        failed = next((m for m in masters if m.error is not None), None)
        if failed is not None:
            # A master died without uploading; release the head actor
            # before surfacing the failure.
            head_inbox.send(Shutdown())
            head.join(timeout=5.0)
            assert failed.error is not None
            raise failed.error
        head.join(timeout=60.0)
        t_end = time.monotonic()

        if head.error is not None:
            raise head.error
        if head.is_alive() or head.final is None:
            raise RuntimeError("head actor did not produce a final reduction object")
        stats.n_requeued_jobs = scheduler.n_reassigned
        if not scheduler.all_done:
            failed_n = stats.n_failed_workers
            raise RuntimeError(
                f"run ended with {scheduler.remaining} unassigned / "
                f"{scheduler.outstanding} outstanding jobs"
                + (f" ({failed_n} workers failed, none left to recover)"
                   if failed_n else "")
            )

        stats.total_s = t_end - t_start
        stats.global_reduction_s = head.global_reduction_s
        if health is not None:
            stats.breakers = health.snapshot()
        for cstats in stats.clusters.values():
            cstats.finished_at = max(
                (w.finished_at for w in cstats.workers), default=0.0
            )
        finalize_timing(stats)
        return RunResult(spec.finalize(head.final), stats, head.final)
