"""Actor-based control plane: the literal Figure-2 architecture.

Where :class:`~repro.runtime.engine.ThreadedEngine` invokes the head
scheduler through a lock (fast, simple), this engine runs the paper's
architecture as drawn: a **head actor** thread owning the global job
pool and the final global reduction, one **master actor** thread per
cluster owning the local pool, and slave worker threads -- all
communicating exclusively through typed messages
(:class:`RequestJobs`, :class:`AssignJobs`, :class:`RobjUpload`) over
:class:`~repro.runtime.messages.Channel` objects whose latency models
the control-plane delay between a cloud master and a local head.

Both engines produce identical results; integration tests assert it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.core.api import GeneralizedReductionSpec
from repro.core.reduction_object import ReductionObject
from repro.core.serialization import deserialize_robj, serialize_robj
from repro.data.index import DataIndex
from repro.data.units import iter_unit_groups, units_per_group
from repro.runtime.engine import ClusterConfig, RunResult, make_cluster_fetchers
from repro.runtime.jobs import Job, jobs_from_index
from repro.runtime.messages import AssignJobs, Channel, RequestJobs, RobjUpload, Shutdown
from repro.runtime.scheduler import HeadScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.storage.autotune import AutotuneParams
from repro.storage.base import StorageBackend
from repro.storage.transfer import DEFAULT_MIN_PART_NBYTES, ParallelFetcher

__all__ = ["ActorEngine"]


@dataclass(frozen=True)
class _CompleteJobs:
    """Master -> head: these assigned jobs finished processing."""

    cluster: str
    jobs: tuple[Job, ...]


class _HeadActor(threading.Thread):
    """Owns the global scheduler; services masters over channels."""

    def __init__(
        self,
        scheduler: HeadScheduler,
        inbox: Channel,
        master_channels: dict[str, Channel],
        spec: GeneralizedReductionSpec,
        n_clusters: int,
    ) -> None:
        super().__init__(name="head", daemon=True)
        self.scheduler = scheduler
        self.inbox = inbox
        self.master_channels = master_channels
        self.spec = spec
        self.n_clusters = n_clusters
        self.uploads: list[ReductionObject] = []
        self.final: ReductionObject | None = None
        self.global_reduction_s = 0.0
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            while True:
                msg = self.inbox.recv()
                if isinstance(msg, RequestJobs):
                    jobs = self.scheduler.request_jobs(msg.location, msg.max_jobs)
                    self.master_channels[msg.cluster].send(AssignJobs(tuple(jobs)))
                elif isinstance(msg, _CompleteJobs):
                    for job in msg.jobs:
                        self.scheduler.complete(job)
                elif isinstance(msg, RobjUpload):
                    t0 = time.monotonic()
                    self.uploads.append(deserialize_robj(msg.payload))
                    if len(self.uploads) == self.n_clusters:
                        self.final = self.spec.global_reduction(self.uploads)
                        self.global_reduction_s += time.monotonic() - t0
                        return
                    self.global_reduction_s += time.monotonic() - t0
                elif isinstance(msg, Shutdown):
                    return
                else:  # pragma: no cover - defensive
                    raise TypeError(f"head got unexpected message {msg!r}")
        except BaseException as exc:  # surfaced by the engine
            self.error = exc


class _MasterActor(threading.Thread):
    """Owns one cluster: pool, slaves, combination, upload."""

    def __init__(
        self,
        cluster: ClusterConfig,
        head_inbox: Channel,
        inbox: Channel,
        spec: GeneralizedReductionSpec,
        index: DataIndex,
        stores: dict[str, StorageBackend],
        batch_size: int,
        group_units: int,
        cstats: ClusterStats,
        t_start: float,
        adaptive_fetch: bool = False,
        min_part_nbytes: int = DEFAULT_MIN_PART_NBYTES,
        autotune_params: AutotuneParams | None = None,
    ) -> None:
        super().__init__(name=f"master-{cluster.name}", daemon=True)
        self.cluster = cluster
        self.head_inbox = head_inbox
        self.inbox = inbox
        self.spec = spec
        self.index = index
        self.stores = stores
        self.batch_size = batch_size
        self.group_units = group_units
        self.cstats = cstats
        self.t_start = t_start
        self.adaptive_fetch = adaptive_fetch
        self.min_part_nbytes = min_part_nbytes
        self.autotune_params = autotune_params
        self.error: BaseException | None = None
        self._pool: list[Job] = []
        self._done = False
        self._lock = threading.Lock()
        self._refill_lock = threading.Lock()

    # -- API used by this cluster's worker threads ---------------------------

    def get_job(self) -> Job | None:
        while True:
            with self._lock:
                if self._pool:
                    return self._pool.pop(0)
                if self._done:
                    return None
            with self._refill_lock:
                with self._lock:
                    if self._pool:
                        return self._pool.pop(0)
                    if self._done:
                        return None
                # One worker performs the head round-trip on behalf of
                # the cluster; channel latency models the network.
                self.head_inbox.send(
                    RequestJobs(self.cluster.name, self.cluster.location, self.batch_size)
                )
                reply = self.inbox.recv()
                assert isinstance(reply, AssignJobs)
                with self._lock:
                    if reply.jobs:
                        self._pool.extend(reply.jobs)
                    else:
                        self._done = True

    def complete(self, job: Job) -> None:
        self.head_inbox.send(_CompleteJobs(self.cluster.name, (job,)))

    # -- the master's own thread: slaves, barrier, combination, upload ------

    def run(self) -> None:
        try:
            fetchers = make_cluster_fetchers(
                self.stores,
                self.cluster,
                adaptive_fetch=self.adaptive_fetch,
                min_part_nbytes=self.min_part_nbytes,
                autotune_params=self.autotune_params,
            )
            robjs: list[ReductionObject] = []
            workers = []
            for wid in range(self.cluster.n_workers):
                wstats = WorkerStats()
                self.cstats.workers.append(wstats)
                th = threading.Thread(
                    target=self._worker_loop,
                    name=f"{self.cluster.name}-w{wid}",
                    args=(fetchers, wstats, robjs),
                    daemon=True,
                )
                workers.append(th)
                th.start()
            for th in workers:
                th.join()
            for loc, f in fetchers.items():
                if f.autotune is not None and f.autotune.n_samples:
                    self.cstats.autotune[loc] = f.autotune.snapshot()
                f.close()
            if self.error is not None:
                raise self.error
            self.cstats.finished_at = max(
                (w.finished_at for w in self.cstats.workers), default=0.0
            )
            merged = (
                self.spec.global_reduction(robjs)
                if robjs
                else self.spec.create_reduction_object()
            )
            payload = serialize_robj(merged)
            self.cstats.robj_nbytes = len(payload)
            t0 = time.monotonic()
            self.head_inbox.send(RobjUpload(self.cluster.name, payload, len(payload)))
            self.cstats.robj_transfer_s = time.monotonic() - t0
        except BaseException as exc:
            self.error = exc

    def _worker_loop(
        self,
        fetchers: dict[str, ParallelFetcher],
        wstats: WorkerStats,
        robjs_out: list[ReductionObject],
    ) -> None:
        try:
            robj = self.spec.create_reduction_object()
            while True:
                job = self.get_job()
                if job is None:
                    break
                t0 = time.monotonic()
                raw, info = fetchers[job.location].fetch_chunk(job.chunk)
                t1 = time.monotonic()
                wstats.retrieval_s += t1 - t0 - info.decode_s
                wstats.decode_s += info.decode_s
                wstats.bytes_wire += info.bytes_wire
                wstats.bytes_logical += info.bytes_logical
                units = self.index.fmt.decode(raw)
                for group in iter_unit_groups(units, self.group_units):
                    self.spec.local_reduction(robj, group)
                wstats.processing_s += time.monotonic() - t1
                wstats.jobs_processed += 1
                if job.location != self.cluster.location:
                    wstats.jobs_stolen += 1
                self.complete(job)
            wstats.finished_at = time.monotonic() - self.t_start
            robjs_out.append(robj)
        except BaseException as exc:
            self.error = exc


class ActorEngine:
    """Message-passing head/master/slave engine (same API as ThreadedEngine)."""

    def __init__(
        self,
        clusters: list[ClusterConfig],
        stores: dict[str, StorageBackend],
        *,
        batch_size: int = 4,
        group_nbytes: int = 1 << 20,
        scheduler_factory=HeadScheduler,
        adaptive_fetch: bool = False,
        min_part_nbytes: int = DEFAULT_MIN_PART_NBYTES,
        autotune_params: AutotuneParams | None = None,
    ) -> None:
        if not clusters:
            raise ValueError("need at least one cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        self.clusters = clusters
        self.stores = stores
        self.batch_size = batch_size
        self.group_nbytes = group_nbytes
        self.scheduler_factory = scheduler_factory
        self.adaptive_fetch = adaptive_fetch
        self.min_part_nbytes = min_part_nbytes
        self.autotune_params = autotune_params

    def run(self, spec: GeneralizedReductionSpec, index: DataIndex) -> RunResult:
        missing = set(index.locations) - set(self.stores)
        if missing:
            raise ValueError(f"index references unknown stores: {sorted(missing)}")
        scheduler = self.scheduler_factory(jobs_from_index(index))
        group_units = units_per_group(self.group_nbytes, index.fmt.unit_nbytes)
        t_start = time.monotonic()
        stats = RunStats()

        head_inbox = Channel()
        master_channels = {
            c.name: Channel(latency_s=c.link_latency_s) for c in self.clusters
        }
        head = _HeadActor(scheduler, head_inbox, master_channels, spec, len(self.clusters))
        masters = []
        for cluster in self.clusters:
            cstats = ClusterStats(cluster.name, cluster.location)
            stats.clusters[cluster.name] = cstats
            masters.append(
                _MasterActor(
                    cluster, head_inbox, master_channels[cluster.name], spec,
                    index, self.stores, self.batch_size, group_units,
                    cstats, t_start,
                    adaptive_fetch=self.adaptive_fetch,
                    min_part_nbytes=self.min_part_nbytes,
                    autotune_params=self.autotune_params,
                )
            )

        head.start()
        for m in masters:
            m.start()
        for m in masters:
            m.join()
        failed = next((m for m in masters if m.error is not None), None)
        if failed is not None:
            # A master died without uploading; release the head actor
            # before surfacing the failure.
            head_inbox.send(Shutdown())
            head.join(timeout=5.0)
            raise failed.error
        head.join(timeout=60.0)
        t_end = time.monotonic()

        if head.error is not None:
            raise head.error
        if head.is_alive() or head.final is None:
            raise RuntimeError("head actor did not produce a final reduction object")
        if not scheduler.all_done:
            raise RuntimeError(
                f"run ended with {scheduler.remaining} unassigned / "
                f"{scheduler.outstanding} outstanding jobs"
            )

        stats.total_s = t_end - t_start
        stats.global_reduction_s = head.global_reduction_s
        processing_end = max(c.finished_at for c in stats.clusters.values())
        stats.processing_end_s = processing_end
        for cstats in stats.clusters.values():
            cstats.idle_s = max(0.0, processing_end - cstats.finished_at)
            for w in cstats.workers:
                w.sync_s = max(0.0, stats.total_s - w.finished_at)
        return RunResult(spec.finalize(head.final), stats, head.final)
