"""Metadata-first retrieval: predicate pushdown at the head.

The organizer's index carries per-chunk statistics
(:class:`~repro.data.chunks.ChunkStats`); applications declare a
pushdown contract on :class:`~repro.core.api.GeneralizedReductionSpec`
(``relevant(stats)`` pruning predicate, ``priority(stats)`` ordering
hint).  This module turns both into the job pool the scheduler sees:

* chunks whose stats prove they cannot affect the reduction object are
  **pruned** -- never fetched, never decoded, never folded;
* surviving jobs carry a priority that the
  :class:`~repro.runtime.scheduler.HeadScheduler` composes with its
  locality/contention/breaker ordering.

Pruning happens *before job-pool creation*, identically for all three
engines and the simulator, so live runs and the DES agree on bytes
saved.  ``pushdown="verify"`` is the soundness guard: pruned chunks are
fetched anyway and their fold contribution is asserted to be the
identity (a lying ``relevant()`` raises
:class:`PushdownSoundnessError` instead of silently corrupting the
answer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.api import (
    has_pushdown_predicate,
    has_pushdown_priority,
    supports_pushdown,
)
from repro.data.index import DataIndex
from repro.runtime.jobs import Job, jobs_from_index

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.stats import RunStats
    from repro.storage.base import StorageBackend

__all__ = [
    "PUSHDOWN_MODES",
    "PushdownPlan",
    "PushdownSoundnessError",
    "normalize_pushdown",
    "plan_jobs",
    "verify_pruned",
]

#: Valid (normalized) pushdown modes: off, prune, or prune-and-verify.
PUSHDOWN_MODES = (None, "prune", "verify")


class PushdownSoundnessError(AssertionError):
    """A pruned chunk's fold contribution was not the identity.

    Raised by ``pushdown="verify"``: the app's ``relevant()`` predicate
    returned False for a chunk that would actually have changed the
    reduction object, i.e. the predicate violates its soundness
    contract.
    """


def normalize_pushdown(mode: str | bool | None) -> str | None:
    """Canonicalize a user-facing pushdown setting to a mode string.

    Accepts ``None``/``False``/``"off"`` (disabled), ``True``/``"on"``/
    ``"prune"`` (prune), and ``"verify"`` (prune + soundness guard).
    """
    if mode is None or mode is False:
        return None
    if mode is True:
        return "prune"
    if isinstance(mode, str):
        low = mode.lower()
        if low in ("off", "none", ""):
            return None
        if low in ("on", "prune"):
            return "prune"
        if low == "verify":
            return "verify"
    raise ValueError(
        f"invalid pushdown mode {mode!r}: expected None/'prune'/'verify'"
    )


@dataclass
class PushdownPlan:
    """Outcome of planning the job pool through the pushdown contract."""

    #: Jobs that survive pruning, carrying their priority hints.
    jobs: list[Job]
    #: Jobs pruned by the ``relevant()`` predicate.
    pruned: list[Job] = field(default_factory=list)
    #: Normalized mode that produced this plan (None = pushdown off).
    mode: str | None = None
    #: Surviving jobs whose priority moved them off pure chunk-id order.
    n_reordered: int = 0

    @property
    def n_pruned_chunks(self) -> int:
        return len(self.pruned)

    @property
    def bytes_pruned(self) -> int:
        """Wire bytes that will never be fetched (encoded size if coded)."""
        return sum(j.chunk.wire_nbytes for j in self.pruned)

    def apply_to(self, stats: "RunStats") -> None:
        """Record the plan's counters on a run's stats."""
        stats.pushdown_mode = self.mode
        stats.n_pruned_chunks = self.n_pruned_chunks
        stats.bytes_pruned = self.bytes_pruned
        stats.n_reordered = self.n_reordered


def _count_reordered(jobs: list[Job]) -> int:
    """Jobs whose priority displaces them from chunk-id order (per file)."""
    by_file: dict[int, list[Job]] = {}
    for job in jobs:
        by_file.setdefault(job.file_id, []).append(job)
    moved = 0
    for file_jobs in by_file.values():
        id_order = sorted(file_jobs, key=lambda j: j.job_id)
        prio_order = sorted(file_jobs, key=lambda j: (-j.priority, j.job_id))
        moved += sum(1 for a, b in zip(id_order, prio_order) if a.job_id != b.job_id)
    return moved


def plan_jobs(
    index: DataIndex,
    spec: Any,
    pushdown: str | bool | None,
    *,
    stores: dict[str, "StorageBackend"] | None = None,
) -> PushdownPlan:
    """Build the job pool, applying the spec's pushdown contract.

    With ``pushdown`` off, a spec that declares no contract, or an index
    without stats, this is exactly ``jobs_from_index`` -- every chunk
    becomes a job, in order, at priority 0.0.  Otherwise chunks with
    stats are pruned when ``spec.relevant(stats)`` is False and
    surviving jobs get ``spec.priority(stats)``; chunks *without* stats
    are always kept (pruning only on proof).

    ``pushdown="verify"`` additionally runs :func:`verify_pruned`
    (requires ``stores``), fetching every pruned chunk and asserting its
    fold contribution is the identity.
    """
    mode = normalize_pushdown(pushdown)
    all_jobs = jobs_from_index(index)
    if mode is None or spec is None or not supports_pushdown(spec):
        return PushdownPlan(jobs=all_jobs)
    has_rel = has_pushdown_predicate(spec)
    has_prio = has_pushdown_priority(spec)
    kept: list[Job] = []
    pruned: list[Job] = []
    for job in all_jobs:
        st = job.chunk.stats
        if st is None:
            kept.append(job)
            continue
        if has_rel and not spec.relevant(st):
            pruned.append(job)
            continue
        if has_prio:
            prio = float(spec.priority(st))
            job = Job(job.job_id, job.chunk, priority=prio) if prio else job
        kept.append(job)
    plan = PushdownPlan(
        jobs=kept,
        pruned=pruned,
        mode=mode,
        n_reordered=_count_reordered(kept) if has_prio else 0,
    )
    if mode == "verify" and pruned:
        if stores is None:
            raise ValueError("pushdown='verify' requires the stores mapping")
        verify_pruned(spec, index, pruned, stores)
    return plan


def _values_equal(a: Any, b: Any) -> bool:
    """Deep equality across the reduction-object value zoo."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _values_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _values_equal(x, y) for x, y in zip(a, b)
        )
    return bool(a == b)


def verify_pruned(
    spec: Any,
    index: DataIndex,
    pruned: list[Job],
    stores: dict[str, "StorageBackend"],
) -> None:
    """Soundness guard: assert every pruned chunk folds to the identity.

    Fetches each pruned chunk (the debug mode deliberately spends the
    bytes pruning saved), folds it into a fresh reduction object, and
    compares against an untouched identity object.  Any difference means
    ``relevant()`` pruned a chunk that mattered ->
    :class:`PushdownSoundnessError`.
    """
    from repro.data.dataset import read_chunk

    identity = spec.create_reduction_object().value()
    for job in pruned:
        units = read_chunk(index, job.chunk.chunk_id, stores)
        robj = spec.create_reduction_object()
        spec.local_reduction_batch(robj, units)
        if not _values_equal(robj.value(), identity):
            raise PushdownSoundnessError(
                f"relevant() pruned chunk {job.chunk.chunk_id} "
                f"(file {job.file_id}, {job.n_units} units) whose fold "
                "contribution is not the identity -- the pushdown "
                "predicate is unsound for this query"
            )
