"""Control-plane message types.

The threaded engine's head/master/slave actors communicate through typed
messages over in-process channels (a stand-in for the paper's TCP
control plane).  An optional per-channel latency models the "higher
network delays between the master and head nodes" of cloud clusters.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.runtime.jobs import Job

__all__ = [
    "RequestJobs",
    "AssignJobs",
    "ReassignJobs",
    "RobjUpload",
    "Shutdown",
    "Channel",
]


@dataclass(frozen=True)
class RequestJobs:
    """Master -> head: my pool is depleted, send up to ``max_jobs``."""

    cluster: str
    location: str
    max_jobs: int


@dataclass(frozen=True)
class AssignJobs:
    """Head -> master: a batch of jobs, plus drain state.

    ``outstanding`` is the head's count of assigned-but-unfinished jobs
    *after* this assignment.  An empty ``jobs`` with ``outstanding > 0``
    means "nothing now, but a crashed worker may yet requeue work" --
    the master must re-request, not latch done.  ``requeued`` lists the
    ids in this batch that are re-executions of jobs lost to a failed
    worker, so the receiving master can account recoveries.
    """

    jobs: tuple[Job, ...]
    outstanding: int = 0
    requeued: tuple[int, ...] = ()


@dataclass(frozen=True)
class ReassignJobs:
    """Master -> head: a dead worker's in-flight jobs, for reassignment."""

    cluster: str
    jobs: tuple[Job, ...]


@dataclass(frozen=True)
class RobjUpload:
    """Master -> head: my cluster's merged reduction object."""

    cluster: str
    payload: bytes
    nbytes: int


@dataclass(frozen=True)
class Shutdown:
    """Engine -> actor: exit your service loop."""


@dataclass
class Channel:
    """One-directional message channel with optional delivery latency.

    ``send`` stamps the message with its earliest delivery time; ``recv``
    sleeps out any remaining latency, so a zero-latency channel behaves
    exactly like a plain queue.
    """

    latency_s: float = 0.0
    _q: "queue.Queue[tuple[float, Any]]" = field(default_factory=queue.Queue)

    def send(self, msg: Any) -> None:
        self._q.put((time.monotonic() + self.latency_s, msg))

    def recv(self, timeout: float | None = None) -> Any:
        deliver_at, msg = self._q.get(timeout=timeout)
        delay = deliver_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        return msg

    def __len__(self) -> int:
        return self._q.qsize()


# A lock type alias used by the engine for the shared scheduler.
SchedulerLock = threading.Lock
