"""Process-based execution engine: true multi-core local reduction.

:class:`~repro.runtime.engine.ThreadedEngine` reproduces the paper's
protocol faithfully but runs every slave under one Python GIL, so the
"heavy computation" applications (k-means, PageRank) serialize their
compute on one core.  The paper's slaves are multi-threaded *native*
processes; this engine restores that: each slave is a real
``multiprocessing`` worker process, and the local reduction of N workers
genuinely occupies N cores.

The policy layer is untouched -- the same :class:`HeadScheduler`, the
same :class:`~repro.runtime.core.LockMaster` refill protocol (driven
through the :class:`~repro.runtime.core.MasterPort` surface), the same
:class:`RunStats`, the same :func:`~repro.runtime.core.finalize_run`
epilogue -- only the data plane changes:

* **chunk bytes cross through shared memory.**  The parent (which owns
  the stores, the chunk cache, and the retry policy) fetches each job's
  byte range directly into a :class:`~repro.storage.shm.SharedSegment`
  (``ParallelFetcher.fetch_into`` writes sub-range GETs straight into
  the segment), and the worker decodes with a zero-copy
  ``np.frombuffer`` off the mapped pages.  Codec-encoded chunks ship as
  their *wire frames*: the segment holds the (smaller) encoded bytes
  and the worker inflates them, so decompression parallelizes across
  worker cores instead of serializing in the parent's feeders.  No
  per-chunk pickle of payloads ever crosses a pipe; the task message is
  a few dozen bytes.
* **one feeder thread per worker** pulls jobs from the master and keeps
  up to two fetches in flight, so data movement overlaps worker compute
  (the double-buffered slave of the shared
  :class:`~repro.runtime.core.SlaveRuntime`, now across a process
  boundary -- the feeder shares the core's fetch-accounting helpers).
* **reduction objects return via pickle protocol-5 out-of-band
  buffers** (:func:`~repro.core.serialization.serialize_robj_oob`):
  the worker sends a tiny metadata pickle, the parent allocates one
  segment for the payload buffers, the worker copies them in, and the
  parent reconstructs the object aliasing the segment -- numpy-backed
  objects cross the boundary with a single copy, dict-backed ones fall
  back to in-band bytes automatically.
* **global reduction is a parallel tree-merge**
  (:func:`~repro.core.api.tree_global_reduction`) instead of a
  sequential left-fold, unless the spec overrides
  ``global_reduction`` (then its implementation is authoritative).

Lifecycle: the parent creates *and* unlinks every shared-memory segment
through one :class:`SharedSegmentPool`; workers only attach and close.
``run()`` verifies the pool is empty on success and force-releases it on
every error path, so no ``/dev/shm`` entry outlives a run -- including
runs where a worker was killed by the crash-injection plan
(``crash_plan``, same containment semantics as the threaded engine: the
partial reduction object is preserved, in-flight jobs are requeued).

Cross-process overheads are accounted first-class: ``ipc_s`` (segment
copies and queue round-trips), ``ser_s`` (reduction-object
(de)serialization), and ``shm_nbytes`` flow into
``RunStats.breakdown_rows()`` / ``ipc_rows()`` so the overlap of fetch,
IPC, and compute is visible next to processing and retrieval.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.api import (
    GeneralizedReductionSpec,
    supports_batch_fold,
    tree_global_reduction,
    uses_default_global_reduction,
)
from repro.core.reduction_object import ReductionObject
from repro.core.serialization import deserialize_robj_oob, serialize_robj_oob
from repro.data.index import DataIndex
from repro.data.units import iter_unit_groups, units_per_group
from repro.runtime.core import (
    ClusterConfig,
    EngineBase,
    EngineOptions,
    LockMaster,
    MasterPort,
    RunResult,
    account_fetch_info,
    account_overlap,
    finalize_run,
    make_cluster_fetchers,
)
from repro.runtime.jobs import Job
from repro.runtime.pushdown import plan_jobs
from repro.runtime.stats import RunStats, WorkerStats, ClusterStats
from repro.storage.faults import WorkerCrash
from repro.storage.retry import RetryExhausted
from repro.storage.codecs import decode_chunk
from repro.storage.shm import (
    SharedSegment,
    SharedSegmentPool,
    attach_segment,
    close_quietly,
)
from repro.storage.transfer import FAILOVER_ERRORS, FetchInfo, ParallelFetcher

__all__ = ["ProcessEngine"]


# -- worker-process side ------------------------------------------------------


def _ship_robj(task_q, result_q, robj, status: str, crashed_job_id) -> None:
    """Send this worker's reduction object to the parent, zero-copy.

    Protocol: put the ``("robj", ...)`` header carrying the in-band
    metadata pickle and out-of-band buffer sizes; the parent replies
    ``("ship", segment_name | None)``; copy the buffers into the
    segment; acknowledge with ``("shipped", copy_s)``.  Any ``("job",
    ...)`` messages that raced a crash are skipped here -- the parent
    requeues those jobs, so processing them would break exactly-once.
    """
    t0 = time.monotonic()
    meta, buffers = serialize_robj_oob(robj)
    ser_s = time.monotonic() - t0
    result_q.put(
        ("robj", status, crashed_job_id, meta, [b.nbytes for b in buffers], ser_s)
    )
    while True:
        msg = task_q.get()
        if msg[0] == "ship":
            break
    seg_name = msg[1]
    t0 = time.monotonic()
    if seg_name is not None:
        shm = attach_segment(seg_name)
        offset = 0
        for buf in buffers:
            shm.buf[offset : offset + buf.nbytes] = buf
            offset += buf.nbytes
        close_quietly(shm)
    result_q.put(("shipped", time.monotonic() - t0))


def _fold_chunk(
    spec,
    fmt,
    group_units: int,
    robj,
    shm,
    nbytes: int,
    encoded: bool,
    batch_fold: bool,
) -> tuple[float, float, int, int]:
    """Decode a mapped chunk zero-copy and fold it.

    ``encoded`` means the segment holds a codec *frame* (the parent
    shipped wire bytes); the frame is decoded here, off the mapped
    pages, so decompression runs on the worker's core instead of
    serializing in the parent's feeder.  ``batch_fold`` folds the whole
    chunk with one ``local_reduction_batch`` call instead of the
    per-unit-group loop.

    Isolated in a function so every view into the mapping (the frame
    payload, the decoded unit array, the last group slice) dies on
    return, letting the caller close the segment without numpy pinning
    the pages.

    Returns ``(decode_s, fold_s, bytes_folded, n_fold_calls)``.
    """
    t0 = time.monotonic()
    payload: Any = memoryview(shm.buf)[:nbytes]
    if encoded:
        payload = decode_chunk(payload)
    units = fmt.decode(payload)
    decode_s = time.monotonic() - t0
    bytes_folded = units.nbytes
    t1 = time.monotonic()
    if batch_fold:
        spec.local_reduction_batch(robj, units)
        n_fold_calls = 1
    else:
        n_fold_calls = 0
        for group in iter_unit_groups(units, group_units):
            spec.local_reduction(robj, group)
            n_fold_calls += 1
    return decode_s, time.monotonic() - t1, bytes_folded, n_fold_calls


def _worker_main(
    name: str,
    spec: GeneralizedReductionSpec,
    fmt,
    group_units: int,
    batch_fold: bool,
    task_q,
    result_q,
    crash_after: int | None,
) -> None:
    """Slave process: decode shared-memory chunks, fold, ship the robj."""
    robj = spec.create_reduction_object()
    jobs_done = 0
    try:
        while True:
            msg = task_q.get()
            if msg[0] == "finish":
                _ship_robj(task_q, result_q, robj, "ok", None)
                return
            _, job_id, seg_name, nbytes, encoded = msg
            if crash_after is not None and jobs_done >= crash_after:
                raise WorkerCrash(
                    f"injected crash in {name} after {jobs_done} jobs", job_id
                )
            shm = attach_segment(seg_name)
            try:
                decode_s, fold_s, bytes_folded, n_folds = _fold_chunk(
                    spec, fmt, group_units, robj, shm, nbytes, encoded, batch_fold
                )
            finally:
                close_quietly(shm)
            jobs_done += 1
            result_q.put(
                ("done", job_id, decode_s, fold_s, bytes_folded, n_folds)
            )
    except WorkerCrash as exc:
        crashed_job_id = exc.args[1] if len(exc.args) > 1 else None
        _ship_robj(task_q, result_q, robj, "crashed", crashed_job_id)
    except BaseException:
        result_q.put(("error", traceback.format_exc()))


# -- parent side --------------------------------------------------------------


class _WorkerCrashed(Exception):
    """Raised in a feeder when its worker reports an injected crash."""

    def __init__(self, msg: tuple) -> None:
        super().__init__("worker reported crash")
        self.msg = msg


@dataclass
class _WorkerHandle:
    """Parent-side endpoints of one worker process."""

    name: str
    proc: Any
    task_q: Any
    result_q: Any
    wstats: WorkerStats
    inflight: deque = field(default_factory=deque)  # (Job, SharedSegment)


class ProcessEngine(EngineBase):
    """Multi-cluster engine with one real process per slave.

    Accepts the same :class:`~repro.runtime.core.EngineOptions` surface
    as every engine (scheduling, caching, retries, crash injection);
    ``prefetch`` controls whether each feeder keeps a second fetch in
    flight (double buffering, the default here) or runs strictly
    fetch-then-compute.  ``start_method`` picks the multiprocessing
    start method (default ``fork`` where available -- workers are forked
    before any engine thread starts, so the fork is safe);
    ``merge_threads`` bounds the parallel tree-merge width.
    """

    def __init__(self, clusters, stores, *, options=None, **kwargs) -> None:
        if options is None:
            # Feeding a worker process is asynchronous by nature; double
            # buffering is the historical (and sensible) default here.
            kwargs.setdefault("prefetch", True)
        super().__init__(clusters, stores, options=options, **kwargs)

    @property
    def start_method(self) -> str:
        sm = self.options.start_method
        if sm is None:
            methods = multiprocessing.get_all_start_methods()
            sm = "fork" if "fork" in methods else "spawn"
        return sm

    @property
    def merge_threads(self) -> int:
        return self.options.merge_threads

    # -- top level -----------------------------------------------------------

    def run(self, spec: GeneralizedReductionSpec, index: DataIndex) -> RunResult:
        """Execute ``spec`` over the dataset described by ``index``."""
        EngineOptions.validate_index(index, self.stores)
        opts = self.options
        ctx = multiprocessing.get_context(self.start_method)
        # Start the resource tracker *now*, while no engine thread or
        # segment exists: forked workers then inherit (and spawn-started
        # ones are handed) the one shared tracker, whose register/
        # unregister set stays balanced because only the parent ever
        # creates or unlinks segments.  Without this, each child's first
        # shm attach would lazily spawn a private tracker that warns
        # about "leaked" segments it never owned at exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        # Pushdown (metadata-first retrieval) runs before the job pool
        # exists, identically to the other engines.
        plan = plan_jobs(index, spec, opts.pushdown, stores=self.stores)
        scheduler = opts.scheduler_factory(plan.jobs)
        scheduler_lock = threading.Lock()
        group_units = units_per_group(opts.group_nbytes, index.fmt.unit_nbytes)
        batch_fold = opts.batch_fold and supports_batch_fold(spec)
        segments = SharedSegmentPool()
        health = self.make_health()
        if health is not None and hasattr(scheduler, "attach_health"):
            scheduler.attach_health(health.open_locations)

        t_start = time.monotonic()
        stats = RunStats()
        plan.apply_to(stats)
        # Per cluster: (robj, backing segment or None) per surviving worker.
        cluster_entries: dict[str, list[tuple[ReductionObject, SharedSegment | None]]] = {}
        handles: list[_WorkerHandle] = []
        feeders: list[threading.Thread] = []
        fetchers: dict[str, dict[str, ParallelFetcher]] = {}
        errors: list[BaseException] = []
        stop = threading.Event()

        try:
            # Spawn every worker process *before* starting any thread in
            # this process, so a fork start method never snapshots a
            # parent mid-lock.
            for cluster in self.clusters:
                master = LockMaster(
                    cluster, scheduler, scheduler_lock, opts.batch_size,
                    stop=stop, n_workers=cluster.n_workers,
                )
                cstats = ClusterStats(cluster.name, cluster.location)
                stats.clusters[cluster.name] = cstats
                cluster_entries[cluster.name] = []
                fetchers[cluster.name] = make_cluster_fetchers(
                    self.stores,
                    cluster,
                    cache=opts.chunk_cache,
                    retry=opts.retry,
                    adaptive_fetch=opts.adaptive_fetch,
                    min_part_nbytes=opts.min_part_nbytes,
                    autotune_params=opts.autotune_params,
                    health=health,
                    hedge=opts.hedge,
                )
                for wid in range(cluster.n_workers):
                    wname = f"{cluster.name}-w{wid}"
                    wstats = WorkerStats()
                    cstats.workers.append(wstats)
                    task_q = ctx.SimpleQueue()
                    result_q = ctx.Queue()
                    proc = ctx.Process(
                        target=_worker_main,
                        name=wname,
                        args=(
                            wname, spec, index.fmt, group_units, batch_fold,
                            task_q, result_q, opts.crash_plan.get(wname),
                        ),
                        daemon=True,
                    )
                    handle = _WorkerHandle(wname, proc, task_q, result_q, wstats)
                    handles.append(handle)
                    feeders.append(
                        threading.Thread(
                            target=self._feed_worker,
                            name=f"feeder-{wname}",
                            args=(
                                cluster, master, handle, fetchers[cluster.name],
                                segments, cluster_entries[cluster.name],
                                t_start, errors, stop,
                            ),
                            daemon=True,
                        )
                    )
            for handle in handles:
                handle.proc.start()
            for th in feeders:
                th.start()
            for th in feeders:
                th.join()

            result = finalize_run(
                spec=spec,
                clusters=self.clusters,
                stats=stats,
                scheduler=scheduler,
                fetchers=fetchers,
                cluster_robjs={
                    name: [robj for robj, _ in entries]
                    for name, entries in cluster_entries.items()
                },
                errors=errors,
                t_start=t_start,
                combine=lambda robjs: self._combine(spec, robjs),
                health=health,
            )
            # Every merge folded into fresh objects; the worker robjs
            # (and their shared-memory backing) are no longer needed.
            for entries in cluster_entries.values():
                for _, seg in entries:
                    if seg is not None:
                        segments.release(seg)

            leaked = segments.active_count
            if leaked:  # pragma: no cover - lifecycle bug guard
                segments.close_all()
                raise RuntimeError(
                    f"shared-memory lifecycle bug: {leaked} segments still "
                    f"live after a successful run"
                )
            return result
        finally:
            stop.set()
            self._shutdown_workers(handles)
            segments.close_all()

    def _combine(
        self, spec: GeneralizedReductionSpec, robjs: list[ReductionObject]
    ) -> ReductionObject:
        """Global reduction: parallel tree for the default merge."""
        if uses_default_global_reduction(spec):
            return tree_global_reduction(spec, robjs, self.merge_threads)
        return spec.global_reduction(robjs)

    def _shutdown_workers(self, handles: list[_WorkerHandle]) -> None:
        """Reap worker processes; force-kill stragglers on error paths."""
        for handle in handles:
            if handle.proc.pid is None:
                continue  # never started
            handle.proc.join(timeout=0.1)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=5.0)
        for handle in handles:
            # Release queue pipe fds promptly (a long pytest session
            # would otherwise accumulate them until GC).
            handle.task_q.close()
            handle.result_q.close()
            handle.result_q.cancel_join_thread()

    # -- feeder (one thread per worker process) ------------------------------

    def _recv(self, handle: _WorkerHandle) -> tuple:
        """Next message from the worker, failing fast if it died hard."""
        while True:
            try:
                return handle.result_q.get(timeout=0.5)
            except queue_mod.Empty:
                if not handle.proc.is_alive():
                    raise RuntimeError(
                        f"worker process {handle.name} died unexpectedly "
                        f"(exit code {handle.proc.exitcode})"
                    ) from None

    def _drain_one(
        self,
        cluster: ClusterConfig,
        handle: _WorkerHandle,
        segments: SharedSegmentPool,
        port: MasterPort,
    ) -> None:
        """Consume one completion; release its segment; account it."""
        msg = self._recv(handle)
        kind = msg[0]
        if kind == "robj":
            raise _WorkerCrashed(msg)
        if kind == "error":
            raise RuntimeError(f"worker {handle.name} failed:\n{msg[1]}")
        if kind != "done":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected message from {handle.name}: {msg[0]!r}")
        _, job_id, decode_s, fold_s, bytes_folded, n_folds = msg
        proc_s = decode_s + fold_s
        job, seg = handle.inflight.popleft()
        if job.job_id != job_id:  # pragma: no cover - protocol guard
            raise RuntimeError(
                f"completion order violated: expected job {job.job_id}, "
                f"got {job_id}"
            )
        segments.release(seg)
        wstats = handle.wstats
        wstats.processing_s += proc_s
        wstats.decode_s += decode_s
        wstats.fold_s += fold_s
        wstats.bytes_folded += bytes_folded
        wstats.n_fold_calls += n_folds
        wstats.jobs_processed += 1
        if job.location != cluster.location:
            wstats.jobs_stolen += 1
        if port.complete(job):
            wstats.jobs_recovered += 1
            wstats.recovery_s += proc_s

    def _collect_robj(
        self, handle: _WorkerHandle, segments: SharedSegmentPool
    ) -> tuple[ReductionObject, SharedSegment | None, str]:
        """Run the ship handshake; returns (robj, backing segment, status)."""
        msg = self._recv(handle)
        if msg[0] == "error":
            raise RuntimeError(f"worker {handle.name} failed:\n{msg[1]}")
        if msg[0] != "robj":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected message from {handle.name}: {msg[0]!r}")
        robj, seg = self._finish_ship(handle, segments, msg)
        return robj, seg, msg[1]

    def _finish_ship(
        self, handle: _WorkerHandle, segments: SharedSegmentPool, msg: tuple
    ) -> tuple[ReductionObject, SharedSegment | None]:
        """Parent half of the out-of-band reduction-object transfer."""
        _, _status, _crashed_job_id, meta, buf_lens, child_ser_s = msg
        total = sum(buf_lens)
        seg = segments.create(total) if total else None
        handle.task_q.put(("ship", seg.name if seg else None))
        reply = self._recv(handle)
        if reply[0] == "error":
            raise RuntimeError(f"worker {handle.name} failed:\n{reply[1]}")
        if reply[0] != "shipped":  # pragma: no cover - protocol guard
            raise RuntimeError(
                f"unexpected message from {handle.name}: {reply[0]!r}"
            )
        t0 = time.monotonic()
        if seg is not None:
            base = seg.buf
            views: list[memoryview] = []
            offset = 0
            for n in buf_lens:
                views.append(base[offset : offset + n])
                offset += n
            robj = deserialize_robj_oob(meta, views)
        else:
            robj = deserialize_robj_oob(meta, [])
        wstats = handle.wstats
        wstats.ser_s += child_ser_s + (time.monotonic() - t0)
        wstats.ipc_s += reply[1]  # the worker's copy into the segment
        wstats.shm_nbytes += total
        return robj, seg

    def _requeue(self, jobs: list[Job], port: MasterPort) -> None:
        """Return a dead worker's jobs (and its master's pool) to the head."""
        requeue = list(jobs)
        requeue.extend(port.worker_died())
        port.requeue(requeue)

    def _feed_worker(
        self,
        cluster: ClusterConfig,
        master: LockMaster,
        handle: _WorkerHandle,
        cluster_fetchers: dict[str, ParallelFetcher],
        segments: SharedSegmentPool,
        robjs_out: list[tuple[ReductionObject, SharedSegment | None]],
        t_start: float,
        errors: list[BaseException],
        stop: threading.Event,
    ) -> None:
        wstats = handle.wstats
        prefetch = self.options.prefetch
        depth = 2 if prefetch else 1
        failed_job: Job | None = None  # job whose fetch exhausted retries
        try:
            try:
                while not stop.is_set():
                    # Block at the head only when this worker has nothing
                    # in flight: its inflight jobs are outstanding, and
                    # only this feeder can complete them, so a blocking
                    # wait here would deadlock the tail of the run
                    # (same contract as the core SlaveRuntime's
                    # ``reserve_next``).
                    job = master.get_job(wait=not handle.inflight)
                    if job is None:
                        if handle.inflight:
                            self._drain_one(cluster, handle, segments, master)
                            continue
                        break
                    try:
                        seg, payload_nbytes, encoded, info, fetch_s = (
                            self._fetch_segment(job, cluster_fetchers, segments)
                        )
                    except RetryExhausted:
                        failed_job = job
                        raise
                    # The worker was computing while we fetched iff it
                    # already had work in flight: that retrieval hid
                    # under processing.
                    account_overlap(
                        wstats, fetch_s, bool(handle.inflight), prefetch
                    )
                    account_fetch_info(wstats, info)
                    t0 = time.monotonic()
                    handle.task_q.put(
                        ("job", job.job_id, seg.name, payload_nbytes, encoded)
                    )
                    wstats.ipc_s += time.monotonic() - t0
                    wstats.shm_nbytes += payload_nbytes
                    handle.inflight.append((job, seg))
                    while len(handle.inflight) >= depth:
                        self._drain_one(cluster, handle, segments, master)
                while handle.inflight:
                    self._drain_one(cluster, handle, segments, master)
                handle.task_q.put(("finish",))
                robj, seg, _status = self._collect_robj(handle, segments)
                wstats.finished_at = time.monotonic() - t_start
                robjs_out.append((robj, seg))
            except _WorkerCrashed as crashed:
                # Injected crash: the worker already sent its partial
                # object header.  Requeue everything it had in flight
                # (the worker skips those task messages), keep what it
                # completed.
                inflight_jobs = [job for job, _ in handle.inflight]
                for _, seg in handle.inflight:
                    segments.release(seg)
                handle.inflight.clear()
                self._requeue(inflight_jobs, master)
                robj, seg = self._finish_ship(handle, segments, crashed.msg)
                wstats.failed = True
                wstats.finished_at = time.monotonic() - t_start
                robjs_out.append((robj, seg))
            except RetryExhausted:
                # The fetch path gave up on ``failed_job`` (never sent to
                # the worker).  The worker itself is healthy: let it
                # finish the jobs it already holds, collect its partial
                # object, and requeue only the failed job.
                while handle.inflight:
                    self._drain_one(cluster, handle, segments, master)
                self._requeue(
                    [failed_job] if failed_job is not None else [], master
                )
                handle.task_q.put(("finish",))
                robj, seg, _status = self._collect_robj(handle, segments)
                wstats.failed = True
                wstats.finished_at = time.monotonic() - t_start
                robjs_out.append((robj, seg))
        except BaseException as exc:  # surfaced by run()
            for _, seg in handle.inflight:
                segments.release(seg)
            handle.inflight.clear()
            errors.append(exc)
            stop.set()  # fail fast: abort every other feeder promptly

    def _fetch_segment(
        self,
        job: Job,
        cluster_fetchers: dict[str, ParallelFetcher],
        segments: SharedSegmentPool,
    ) -> tuple[SharedSegment, int, bool, FetchInfo, float]:
        """Fetch one job's bytes straight into a fresh shared segment.

        Returns ``(segment, payload_nbytes, encoded, info, fetch_s)``.

        Compressed chunks ship *encoded*: the segment holds the wire
        frame (``enc_nbytes`` bytes, often far smaller than the chunk)
        and the worker decodes off the mapped pages, so decompression
        runs on the worker's core instead of serializing in this feeder
        thread.  Unencoded chunks land as logical bytes via
        :meth:`ParallelFetcher.fetch_into` (sub-range GETs write into
        the mapping; zero copies on the direct path).

        ``verify_chunks`` forces the parent-decode path -- checksum
        verification needs the logical bytes here -- so that mode keeps
        the old one-decode-one-copy behaviour.
        """
        t0 = time.monotonic()
        chunk = job.chunk
        sources = chunk.sources
        fetcher = cluster_fetchers[job.location]
        if chunk.fragments or (
            self.options.hedge is not None and len(sources) > 1
        ):
            # Hedged retrieval races replicas -- and striped retrieval
            # races fragments fastest-k-of-n -- inside fetch_chunk; ship
            # logical bytes (one decode + copy in this feeder) -- the
            # encoded-wire-frame optimization below cannot race because
            # it writes straight into the destination mapping.
            data, info = fetcher.fetch_chunk(chunk)
            seg = segments.create(chunk.nbytes)
            try:
                seg.buf[: chunk.nbytes] = data
                info.n_copies += 1  # the copy into the segment
                if self.options.verify_chunks:
                    from repro.data.integrity import verify_chunk_bytes

                    verify_chunk_bytes(chunk, seg.buf)
            except BaseException:
                segments.release(seg)
                raise
            return seg, chunk.nbytes, False, info, time.monotonic() - t0 - info.decode_s
        encoded = chunk.codec is not None and not self.options.verify_chunks
        if encoded:
            seg = segments.create(chunk.enc_nbytes)
            try:
                info = self._fetch_into_any(
                    cluster_fetchers, job, seg.buf, encoded=True
                )
                info.bytes_logical = chunk.nbytes
            except BaseException:
                segments.release(seg)
                raise
            return seg, chunk.enc_nbytes, True, info, time.monotonic() - t0
        seg = segments.create(chunk.nbytes)
        try:
            if chunk.codec is not None:
                data, info = fetcher.fetch_chunk(chunk)
                seg.buf[: chunk.nbytes] = data
                info.n_copies += 1  # the copy into the segment
            else:
                info = self._fetch_into_any(
                    cluster_fetchers, job, seg.buf, encoded=False
                )
            if self.options.verify_chunks:
                from repro.data.integrity import verify_chunk_bytes

                verify_chunk_bytes(job.chunk, seg.buf)
        except BaseException:
            segments.release(seg)
            raise
        return seg, chunk.nbytes, False, info, time.monotonic() - t0 - info.decode_s

    @staticmethod
    def _fetch_into_any(
        cluster_fetchers: dict[str, ParallelFetcher],
        job: Job,
        buf,
        *,
        encoded: bool,
    ) -> FetchInfo:
        """``fetch_into`` with replica failover.

        Tries each of the chunk's sources in order, routing every source
        to the fetcher owning its store, and returns the first success
        (``info.n_failovers`` counts the sources skipped).  Failures are
        reported to the shared health registry so breakers open here
        exactly as they do on the ``fetch_chunk`` path.
        """
        chunk = job.chunk
        sources = chunk.sources
        last_exc: BaseException | None = None
        failovers = 0
        for i, src in enumerate(sources):
            fetcher = cluster_fetchers.get(src.location)
            if fetcher is None:
                raise KeyError(
                    f"chunk {chunk.key!r} lists source location "
                    f"{src.location!r} but the cluster has no fetcher for it"
                )
            if encoded:
                offset = (
                    src.enc_offset if src.enc_offset is not None else chunk.enc_offset
                )
                nbytes = (
                    src.enc_nbytes if src.enc_nbytes is not None else chunk.enc_nbytes
                )
            else:
                offset, nbytes = chunk.offset, chunk.nbytes
            try:
                _, info = fetcher.fetch_into(src.key, offset, nbytes, buf)
            except FAILOVER_ERRORS as exc:
                last_exc = exc
                if fetcher.health is not None:
                    fetcher.health.record_failure(src.location)
                if i < len(sources) - 1:
                    failovers += 1
                    fetcher.n_failovers += 1
                continue
            info.n_failovers = failovers
            return info
        assert last_exc is not None
        raise last_exc
