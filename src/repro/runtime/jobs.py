"""Jobs and job pools.

One job corresponds to one chunk of the dataset.  The head node owns the
global pool (built from the index); each master keeps a small local pool
it refills from the head on demand -- the pooling mechanism behind the
paper's dynamic load balancing.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.data.chunks import ChunkInfo
from repro.data.index import DataIndex

__all__ = ["Job", "jobs_from_index", "LocalJobPool"]


@dataclass(frozen=True)
class Job:
    """A unit of schedulable work: fetch and reduce one chunk."""

    job_id: int
    chunk: ChunkInfo
    #: Pushdown ordering hint (higher runs earlier); 0.0 when the app
    #: declares none, which preserves pure chunk-id order.
    priority: float = 0.0
    #: Submitted-run tag: which job's reduction object this assignment
    #: folds into when a shared slave fleet interleaves concurrent runs
    #: (the multi-tenant service).  "" for single-run engines.
    run_id: str = ""

    @property
    def location(self) -> str:
        """Storage site currently holding the chunk."""
        return self.chunk.location

    @property
    def file_id(self) -> int:
        return self.chunk.file_id

    @property
    def nbytes(self) -> int:
        return self.chunk.nbytes

    @property
    def n_units(self) -> int:
        return self.chunk.n_units


def jobs_from_index(index: DataIndex) -> list[Job]:
    """Generate the job pool from the data index, one job per chunk."""
    return [Job(c.chunk_id, c) for c in index.chunks]


class LocalJobPool:
    """Thread-safe FIFO pool held by a master node."""

    def __init__(self) -> None:
        self._q: deque[Job] = deque()
        self._lock = threading.Lock()

    def add(self, jobs: list[Job]) -> None:
        with self._lock:
            self._q.extend(jobs)

    def try_get(self) -> Job | None:
        with self._lock:
            return self._q.popleft() if self._q else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._q)
