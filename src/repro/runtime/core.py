"""Shared slave-runtime core: one worker loop for every engine.

The paper describes a single protocol -- a head pool, per-cluster
masters, multi-threaded slaves folding into reduction objects -- and the
three live engines (threaded, actor, process) are three *transports* for
that protocol, not three protocols.  This module is the protocol made
code, factored so each engine contributes only its control plane:

* :class:`EngineOptions` -- the frozen, validated configuration surface
  shared by every engine, the session, the driver, and the CLI.  One
  validation path (cluster-name uniqueness, crash-plan targets,
  index-vs-stores coverage) replaces the per-engine copies.
* :class:`MasterPort` -- the small protocol a slave drives to acquire
  and complete jobs.  The lock-based :class:`LockMaster` (threaded and
  process engines) and the channel-based master actor implement it; the
  port owns drain-awareness, so an empty refill is never latched as
  "done" while requeue-able jobs are outstanding.
* :class:`SlaveRuntime` -- the per-worker loop: synchronous and
  pipelined-prefetch fetch paths, decode/fold with group iteration, the
  full :class:`WorkerStats` accounting (retrieval/decode/overlap/stall/
  cache/prefetch/stolen/recovered), crash injection, and
  requeue-and-preserve-robj failure containment.  Every engine that
  executes folds in-process runs exactly this loop; the process engine's
  feeder reuses its fetch-accounting steps across the process boundary.
* :func:`finalize_run` -- the shared run epilogue: per-cluster combine,
  serialized reduction-object shipping, fetcher fault/autotune rollup
  into :class:`ClusterStats`, and idle/sync accounting.

Sector/Sphere-style data clouds take the same shape -- one slave runtime
with pluggable transport -- and fault-handling work (coded/redundant
execution) likewise assumes recovery lives in a shared execution core.
Consolidating here means prefetching, chunk caching, retries, and
worker-crash containment land once and every engine has them *by
construction*.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.core.api import GeneralizedReductionSpec, supports_batch_fold
from repro.core.reduction_object import ReductionObject
from repro.core.serialization import deserialize_robj, serialize_robj
from repro.data.index import DataIndex
from repro.data.redundancy import normalize_stripe
from repro.data.units import iter_unit_groups
from repro.runtime.jobs import Job, LocalJobPool
from repro.runtime.pushdown import normalize_pushdown
from repro.runtime.scheduler import HeadScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.storage.autotune import AimdAutotuner, AutotuneParams
from repro.storage.base import StorageBackend
from repro.storage.cache import ChunkCache
from repro.storage.faults import WorkerCrash
from repro.storage.health import BreakerPolicy, HealthRegistry, HedgePolicy
from repro.storage.retry import RetryExhausted, RetryPolicy
from repro.storage.transfer import (
    DEFAULT_MIN_PART_NBYTES,
    FetchInfo,
    ParallelFetcher,
    PrefetchHandle,
)

__all__ = [
    "ClusterConfig",
    "RunResult",
    "EngineOptions",
    "EngineBase",
    "MasterPort",
    "LockMaster",
    "SlaveRuntime",
    "account_fetch_info",
    "account_overlap",
    "make_cluster_fetchers",
    "rollup_fetcher_stats",
    "finalize_timing",
    "finalize_run",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of one compute cluster."""

    name: str
    location: str               # the storage site this cluster is co-located with
    n_workers: int
    retrieval_threads: int = 2  # parallel connections per chunk fetch
    link_latency_s: float = 0.0  # master <-> head round-trip latency


@dataclass
class RunResult:
    """Outcome of one engine run."""

    result: Any
    stats: RunStats
    robj: ReductionObject


@dataclass(frozen=True)
class EngineOptions:
    """The unified engine configuration surface.

    Every execution engine accepts every field; the per-engine option
    special-cases that used to live in the session, the driver, and the
    CLI are gone.  ``start_method`` and ``merge_threads`` only have an
    effect on the process engine (in-process engines have no start
    method and use the spec's own global reduction); they are accepted
    -- and validated -- everywhere so one options object can configure
    any engine.
    """

    batch_size: int = 4
    group_nbytes: int = 1 << 20
    scheduler_factory: Callable[[list[Job]], HeadScheduler] = HeadScheduler
    #: Fold each chunk with one ``local_reduction_batch`` call when the
    #: spec provides it (the array-native hot path); off forces the
    #: per-unit-group loop (the ablation baseline).
    batch_fold: bool = True
    verify_chunks: bool = False
    prefetch: bool = False
    chunk_cache: ChunkCache | None = None
    retry: RetryPolicy | None = None
    crash_plan: dict[str, int] = field(default_factory=dict)
    adaptive_fetch: bool = False
    min_part_nbytes: int = DEFAULT_MIN_PART_NBYTES
    autotune_params: AutotuneParams | None = None
    # Replica-aware retrieval: hedge duplicate slow fetches against the
    # next replica (HedgePolicy), and/or run every store behind a
    # circuit breaker (BreakerPolicy) that orders/skips replica sources
    # and deprioritizes chunks stranded behind open breakers.  Failover
    # itself needs no option -- chunks carrying replicas always fail
    # over when a source is exhausted.
    hedge: HedgePolicy | None = None
    breaker: BreakerPolicy | None = None
    # Erasure-coded striping: ``(k, m)`` means every chunk is stored as
    # k data + m parity fragments and fetched fastest-k-of-n (the
    # driver's ``stripe_dataset`` performs the placement; the option is
    # the declarative record all engines validate against).  None = the
    # dataset is not striped.
    stripe: tuple[int, int] | None = None
    # Metadata-first retrieval: apply the spec's pushdown contract
    # (relevant/priority over index ChunkStats) before job-pool
    # creation.  None/False = off; True/"prune" = prune irrelevant
    # chunks and order survivors by priority; "verify" = prune, but
    # also fetch every pruned chunk and assert its fold contribution is
    # the identity (the soundness guard -- debug only, spends the bytes
    # pruning saved).
    pushdown: str | bool | None = None
    # Process-engine transport knobs (no effect on in-process engines).
    start_method: str | None = None
    merge_threads: int = 4

    def __post_init__(self) -> None:
        # Normalize crash_plan=None (the historical kwarg default) to {}.
        object.__setattr__(self, "crash_plan", dict(self.crash_plan or {}))
        # Canonicalize pushdown to None/"prune"/"verify" (raises on junk).
        object.__setattr__(self, "pushdown", normalize_pushdown(self.pushdown))
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.group_nbytes <= 0:
            raise ValueError("group_nbytes must be positive")
        if self.min_part_nbytes < 0:
            raise ValueError("min_part_nbytes must be non-negative")
        if self.merge_threads <= 0:
            raise ValueError("merge_threads must be positive")
        if any(n < 0 for n in self.crash_plan.values()):
            raise ValueError("crash_plan job counts must be non-negative")
        # One wording for stripe-shape errors everywhere (engine options,
        # driver, dataset organizer): repro.data.redundancy.
        object.__setattr__(self, "stripe", normalize_stripe(self.stripe))

    # -- the one validation path ---------------------------------------------

    def validate_clusters(self, clusters: list[ClusterConfig]) -> None:
        """Engine-construction checks, identical for every engine."""
        if not clusters:
            raise ValueError("need at least one cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        if self.crash_plan:
            worker_names = {
                f"{c.name}-w{wid}" for c in clusters for wid in range(c.n_workers)
            }
            unknown = set(self.crash_plan) - worker_names
            if unknown:
                raise ValueError(
                    f"crash_plan targets unknown workers: {sorted(unknown)}"
                )

    @staticmethod
    def validate_index(index: DataIndex, stores: dict[str, StorageBackend]) -> None:
        """Run-time check that every chunk's location has a store.

        Covers replica sources and erasure fragments too: a striped
        chunk whose fragments name a location without a store would
        otherwise only fail deep inside the fetch race.
        """
        missing = set(index.locations) - set(stores)
        for c in index.chunks:
            missing.update(
                r.location for r in c.replicas if r.location not in stores
            )
            missing.update(
                f.location for f in c.fragments if f.location not in stores
            )
        if missing:
            raise ValueError(f"index references unknown stores: {sorted(missing)}")


class EngineBase:
    """Shared construction and option plumbing for every engine.

    Subclasses receive either a prebuilt :class:`EngineOptions` or the
    historical keyword surface (``batch_size=...``, ``prefetch=...``,
    ...), which is folded into one options object and validated through
    the single shared path.
    """

    def __init__(
        self,
        clusters: list[ClusterConfig],
        stores: dict[str, StorageBackend],
        *,
        options: EngineOptions | None = None,
        **kwargs: Any,
    ) -> None:
        if options is None:
            options = EngineOptions(**kwargs)
        elif kwargs:
            raise TypeError(
                "pass either options= or individual option keywords, not both"
            )
        options.validate_clusters(clusters)
        self.clusters = list(clusters)
        self.stores = dict(stores)
        self.options = options

    # Backwards-compatible read access to the option fields.
    @property
    def batch_size(self) -> int:
        return self.options.batch_size

    @property
    def group_nbytes(self) -> int:
        return self.options.group_nbytes

    @property
    def scheduler_factory(self) -> Callable[[list[Job]], HeadScheduler]:
        return self.options.scheduler_factory

    @property
    def batch_fold(self) -> bool:
        return self.options.batch_fold

    @property
    def verify_chunks(self) -> bool:
        return self.options.verify_chunks

    @property
    def prefetch(self) -> bool:
        return self.options.prefetch

    @property
    def chunk_cache(self) -> ChunkCache | None:
        return self.options.chunk_cache

    @property
    def retry(self) -> RetryPolicy | None:
        return self.options.retry

    @property
    def crash_plan(self) -> dict[str, int]:
        return self.options.crash_plan

    @property
    def adaptive_fetch(self) -> bool:
        return self.options.adaptive_fetch

    @property
    def min_part_nbytes(self) -> int:
        return self.options.min_part_nbytes

    @property
    def autotune_params(self) -> AutotuneParams | None:
        return self.options.autotune_params

    @property
    def hedge(self) -> HedgePolicy | None:
        return self.options.hedge

    @property
    def breaker(self) -> BreakerPolicy | None:
        return self.options.breaker

    @property
    def pushdown(self) -> str | None:
        return self.options.pushdown

    @property
    def stripe(self) -> tuple[int, int] | None:
        return self.options.stripe

    def make_health(self) -> HealthRegistry | None:
        """One shared health registry per run, or ``None`` when neither
        hedging nor breakers are configured (zero overhead path)."""
        if self.options.hedge is None and self.options.breaker is None:
            return None
        return HealthRegistry(self.options.breaker)


def make_cluster_fetchers(
    stores: dict[str, StorageBackend],
    cluster: ClusterConfig,
    *,
    cache: ChunkCache | None = None,
    prefetch_workers: int = 1,
    retry: RetryPolicy | None = None,
    adaptive_fetch: bool = False,
    min_part_nbytes: int = DEFAULT_MIN_PART_NBYTES,
    autotune_params: AutotuneParams | None = None,
    health: HealthRegistry | None = None,
    hedge: HedgePolicy | None = None,
) -> dict[str, ParallelFetcher]:
    """One fetcher per data location for one cluster.

    With ``adaptive_fetch`` every (cluster, location) path gets its own
    AIMD autotuner replacing the fixed ``retrieval_threads`` fan-out --
    the paths differ wildly (local NIC vs WAN vs throttled S3), so each
    learns its own knee.  Shared by all three live engines.

    Each cluster's fetchers are wired as *siblings* of one another, so a
    chunk carrying replica sources routes each source to the fetcher
    that owns its store.  ``health`` (the run-wide
    :class:`~repro.storage.health.HealthRegistry`) and ``hedge`` flow to
    every fetcher.
    """
    fetchers: dict[str, ParallelFetcher] = {}
    for loc, store in stores.items():
        autotune = None
        if adaptive_fetch:
            params = autotune_params or AutotuneParams(
                min_part_nbytes=max(1, min_part_nbytes)
            )
            autotune = AimdAutotuner(params, name=f"{cluster.name}->{loc}")
        fetchers[loc] = ParallelFetcher(
            store,
            cluster.retrieval_threads,
            cache=cache,
            prefetch_workers=prefetch_workers,
            retry=retry,
            autotune=autotune,
            min_part_nbytes=min_part_nbytes,
            health=health,
            hedge=hedge,
        )
    for f in fetchers.values():
        f.siblings = fetchers
    return fetchers


class MasterPort(Protocol):
    """Job-acquisition surface a slave drives, whatever the transport.

    The port hides how a cluster's master talks to the head -- a lock
    around the shared scheduler (:class:`LockMaster`), typed messages
    over channels (the actor engine's master), or the process engine's
    in-parent feeder.  Drain-awareness is part of the contract: an empty
    refill must NOT be treated as end-of-run while the head still has
    outstanding jobs, because a crashed worker may requeue one.
    """

    def get_job(self, wait: bool = True) -> Job | None:
        """Next job, refilling from the head when the pool is depleted.

        Returns ``None`` only when the run is truly drained (no
        unassigned *and* no outstanding jobs) or the stop event fired.
        With ``wait=False``, returns ``None`` as soon as nothing is
        immediately available (the non-blocking reserve path).
        """
        ...

    def reserve_next(self) -> Job | None:
        """Non-blocking reserve of the job after the current one."""
        ...

    def complete(self, job: Job) -> bool:
        """Report one job processed; True if it recovered a requeued job."""
        ...

    def worker_died(self) -> list[Job]:
        """Mark one worker dead; the last death surrenders pooled jobs."""
        ...

    def requeue(self, jobs: list[Job]) -> None:
        """Return assigned-but-unfinished jobs to the head for reassignment."""
        ...


class LockMaster:
    """Cluster-local job pool that refills from the head through a lock.

    The :class:`MasterPort` implementation shared by the threaded and
    process engines: the head scheduler is invoked directly under a
    shared lock, with channel latency modelled by sleeping the
    cluster's master <-> head round-trip.

    A master never *latches* an empty refill as "done": while the head
    still has outstanding jobs, one of them may yet be requeued by a
    crashed worker, so :meth:`get_job` keeps re-checking the scheduler
    until the run is truly drained (no unassigned *and* no outstanding
    jobs), the stop event fires, or -- for the non-blocking reserve
    path -- immediately reports nothing available.
    """

    #: Poll interval while waiting for outstanding jobs to complete or
    #: be requeued (only reached at the tail of a run).
    POLL_S = 0.001

    def __init__(
        self,
        cluster: ClusterConfig,
        scheduler: HeadScheduler,
        scheduler_lock: threading.Lock,
        batch_size: int,
        stop: threading.Event | None = None,
        n_workers: int = 1,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.scheduler_lock = scheduler_lock
        self.batch_size = batch_size
        self.stop = stop if stop is not None else threading.Event()
        self.pool = LocalJobPool()
        self._refill_lock = threading.Lock()
        self._alive = n_workers
        self._alive_lock = threading.Lock()

    def get_job(self, wait: bool = True) -> Job | None:
        """Next job for a worker, refilling from the head when depleted.

        Returns ``None`` when every job everywhere is assigned *and*
        completed (or the stop event fired).  With ``wait=False`` it
        instead returns ``None`` as soon as nothing is immediately
        available -- required by the prefetch reserve path, where the
        caller still holds its own outstanding job and blocking here
        would deadlock the tail of the run.
        """
        while True:
            job = self.pool.try_get()
            if job is not None:
                return job
            if self.stop.is_set():
                return None
            # Pay the master <-> head round-trip *outside* the refill
            # lock: concurrent requesters overlap their RTTs instead of
            # queueing a full round-trip each behind one sleeping
            # refiller (only the scheduler interaction is serialized).
            if self.cluster.link_latency_s > 0:
                time.sleep(self.cluster.link_latency_s)
            with self._refill_lock:
                # Re-check: another worker may have refilled while we
                # paid the round-trip or waited for the lock.
                job = self.pool.try_get()
                if job is not None:
                    return job
                with self.scheduler_lock:
                    jobs = self.scheduler.request_jobs(
                        self.cluster.location, self.batch_size
                    )
                    outstanding = self.scheduler.outstanding
                if jobs:
                    self.pool.add(jobs[1:])
                    return jobs[0]
            if outstanding == 0:
                return None  # truly drained: nothing left to requeue
            if not wait:
                return None
            time.sleep(self.POLL_S)

    def reserve_next(self) -> Job | None:
        """Reserve the job a worker will process after its current one.

        Same contract as :meth:`get_job` but non-blocking: the caller's
        *current* job is still outstanding, so waiting for the head to
        drain would deadlock (every pipelined worker parked on its own
        unfinished job).  The worker loops back to a blocking
        :meth:`get_job` after finishing its current job, so a late
        requeue is still picked up.
        """
        return self.get_job(wait=False)

    def complete(self, job: Job) -> bool:
        """Report one job done; True when this execution recovered a
        job that a failed worker had returned to the head."""
        with self.scheduler_lock:
            self.scheduler.complete(job)
            return job.job_id in self.scheduler.requeued_ids

    def requeue(self, jobs: list[Job]) -> None:
        """Hand a dead worker's in-flight jobs back to the head."""
        with self.scheduler_lock:
            for job in jobs:
                self.scheduler.reassign(job)

    def worker_died(self) -> list[Job]:
        """Mark one worker dead; the last death surrenders the pool.

        While any worker of the cluster survives, pooled jobs stay (a
        survivor will drain them).  When the *last* worker dies, the
        pooled-but-unstarted jobs are pulled out and returned so the
        caller can hand them back to the head for the other cluster.
        """
        with self._alive_lock:
            self._alive -= 1
            if self._alive > 0:
                return []
        drained: list[Job] = []
        while (job := self.pool.try_get()) is not None:
            drained.append(job)
        return drained


# -- shared fetch accounting --------------------------------------------------


def account_fetch_info(wstats: WorkerStats, info: FetchInfo) -> None:
    """Fold one fetch's :class:`FetchInfo` into a worker's counters."""
    wstats.decode_s += info.decode_s
    wstats.bytes_wire += info.bytes_wire
    wstats.bytes_logical += info.bytes_logical
    wstats.n_copies += info.n_copies
    wstats.n_failovers += info.n_failovers
    wstats.n_hedges += info.n_hedges
    wstats.hedge_wins += info.hedge_wins
    wstats.n_fragments += info.n_fragments
    wstats.n_parity_decodes += info.n_parity_decodes
    if info.cache_hit:
        wstats.cache_hits += 1
    else:
        wstats.cache_misses += 1


def account_overlap(
    wstats: WorkerStats, fetch_s: float, overlapped: bool, prefetching: bool
) -> None:
    """Attribute one fetch's wall time to overlap or stall.

    A fetch that ran while the worker was computing hid under
    processing (``overlap_s``); one the worker had to wait for is a
    stall (``retrieval_s``).  Used by the process engine's feeder,
    whose pipelining happens across the process boundary rather than
    through a :class:`PrefetchHandle`.
    """
    if overlapped:
        wstats.overlap_s += fetch_s
        wstats.prefetch_hits += 1
    else:
        wstats.retrieval_s += fetch_s
        if prefetching:
            wstats.prefetch_misses += 1


class SlaveRuntime:
    """The per-worker loop, identical for every in-process engine.

    Pulls jobs through a :class:`MasterPort`, fetches chunk bytes
    (synchronously, or double-buffered when ``options.prefetch``),
    decodes and folds unit groups into this worker's reduction object,
    and accounts every second and byte in :class:`WorkerStats`.

    Fault semantics are part of the loop, not the engine: the
    crash-injection plan raises :class:`WorkerCrash` at the configured
    job count, and both injected crashes and retry-exhausted fetches are
    *contained* -- the worker's in-flight jobs (current and
    reserved-next) go back to the head through the port, its partially
    folded reduction object is preserved (it holds exactly the jobs it
    completed, so folding it plus re-executing the requeued jobs yields
    each job exactly once), and the run continues on the survivors.
    Non-recoverable errors are appended to ``errors`` and fail the whole
    run fast via the shared stop event.
    """

    def __init__(
        self,
        name: str,
        *,
        cluster: ClusterConfig,
        port: MasterPort,
        spec: GeneralizedReductionSpec,
        index: DataIndex,
        group_units: int,
        fetchers: dict[str, ParallelFetcher],
        wstats: WorkerStats,
        robjs_out: list[ReductionObject],
        options: EngineOptions,
        t_start: float,
        errors: list[BaseException],
        stop: threading.Event,
    ) -> None:
        self.name = name
        self.cluster = cluster
        self.port = port
        self.spec = spec
        self.index = index
        self.group_units = group_units
        self.fetchers = fetchers
        self.wstats = wstats
        self.robjs_out = robjs_out
        self.options = options
        self.t_start = t_start
        self.errors = errors
        self.stop = stop
        self.crash_after = options.crash_plan.get(name)
        self._batch_fold = options.batch_fold and (
            spec is not None and supports_batch_fold(spec)
        )
        self._jobs_done = 0
        self._robj: ReductionObject | None = None

    # -- per-run context hooks -----------------------------------------------
    #
    # The base runtime serves exactly one run: one spec, one fetcher
    # map, one reduction object per worker.  A multi-run slave (the
    # bursting service's shared fleet) overrides these hooks to resolve
    # the context from the job's ``run_id`` instead, while the loop,
    # accounting, and containment logic stay shared.

    def _open_run(self) -> None:
        """Prepare per-run worker state at loop entry."""
        self._robj = self.spec.create_reduction_object()

    def _robj_for(self, job: Job) -> ReductionObject:
        """The reduction object ``job`` folds into."""
        del job
        assert self._robj is not None
        return self._robj

    def _fetchers_for(self, job: Job) -> dict[str, ParallelFetcher]:
        """The fetcher map serving ``job``'s run."""
        del job
        return self.fetchers

    def _emit_robjs(self) -> None:
        """Publish this worker's reduction object(s) at loop exit."""
        if self._robj is not None:
            self.robjs_out.append(self._robj)

    def _before_complete(self, job: Job) -> None:
        """Per-job hook invoked just before the port learns of completion."""

    def _mark_failed(self, inflight: list[Job | None]) -> None:
        """Record this worker's death in the stats it was feeding."""
        del inflight
        self.wstats.failed = True
        self.wstats.finished_at = time.monotonic() - self.t_start

    def _on_fatal(
        self,
        exc: BaseException,
        inflight: list[Job | None],
        pending: PrefetchHandle | None,
    ) -> None:
        """Handle a non-recoverable error (fail the whole run fast)."""
        del inflight, pending
        self.errors.append(exc)
        self.stop.set()  # fail fast: abort every other worker promptly

    # -- steps ---------------------------------------------------------------

    def _maybe_crash(self) -> None:
        if self.crash_after is not None and self._jobs_done >= self.crash_after:
            raise WorkerCrash(
                f"injected crash in {self.name} after {self._jobs_done} jobs"
            )

    def _fetch_now(self, job: Job) -> bytes:
        """Synchronous fetch of one job's bytes, fully accounted as stall."""
        t0 = time.monotonic()
        raw, info = self._fetchers_for(job)[job.location].fetch_chunk(job.chunk)
        self.wstats.retrieval_s += time.monotonic() - t0 - info.decode_s
        account_fetch_info(self.wstats, info)
        return raw

    def _await_prefetch(self, pending: PrefetchHandle, job: Job) -> bytes:
        """Collect an in-flight prefetch, splitting stall from overlap."""
        del job  # multi-run slaves switch accounting context on it
        ready = pending.done()
        t_need = time.monotonic()
        raw = pending.result()
        stall = time.monotonic() - t_need
        w = self.wstats
        w.retrieval_s += stall
        w.overlap_s += max(0.0, pending.fetch_s - stall)
        w.decode_s += pending.decode_s
        w.bytes_wire += pending.bytes_wire
        w.bytes_logical += pending.bytes_logical
        w.n_failovers += pending.n_failovers
        w.n_hedges += pending.n_hedges
        w.hedge_wins += pending.hedge_wins
        w.n_fragments += pending.n_fragments
        w.n_parity_decodes += pending.n_parity_decodes
        if ready:
            w.prefetch_hits += 1
        else:
            w.prefetch_misses += 1
        if pending.cache_hit:
            w.cache_hits += 1
        else:
            w.cache_misses += 1
        return raw

    def _process(self, job: Job, raw: bytes) -> None:
        """Decode, reduce, and complete one job.

        The decode is a zero-copy ``np.frombuffer`` view over the fetch
        (or cache) buffer; the fold is one ``local_reduction_batch``
        call over the whole chunk when the spec provides it (and
        ``options.batch_fold`` allows), else the per-unit-group loop.
        """
        robj = self._robj_for(job)
        if self.options.verify_chunks:
            from repro.data.integrity import verify_chunk_bytes

            verify_chunk_bytes(job.chunk, raw)
        t0 = time.monotonic()
        units = self.index.fmt.decode(raw)
        t1 = time.monotonic()
        if self._batch_fold:
            self.spec.local_reduction_batch(robj, units)
            n_folds = 1
        else:
            n_folds = 0
            for group in iter_unit_groups(units, self.group_units):
                self.spec.local_reduction(robj, group)
                n_folds += 1
        t2 = time.monotonic()
        elapsed = t2 - t0
        w = self.wstats
        w.processing_s += elapsed
        w.fold_s += t2 - t1
        w.bytes_folded += units.nbytes
        w.n_fold_calls += n_folds
        w.jobs_processed += 1
        if job.location != self.cluster.location:
            w.jobs_stolen += 1
        self._jobs_done += 1
        self._before_complete(job)
        if self.port.complete(job):
            # This execution replaced one lost to a failed worker; its
            # compute time is the recovery overhead (the re-fetch is in
            # retrieval_s like any other fetch).
            w.jobs_recovered += 1
            w.recovery_s += elapsed

    def _contain_failure(
        self,
        inflight: list[Job | None],
        pending: PrefetchHandle | None,
    ) -> None:
        """Absorb this worker's death without aborting the run.

        The worker's in-flight jobs (current and reserved-next) return
        to the head for reassignment; if it was its cluster's last
        worker, the master's pooled jobs go back too.  The partially
        folded reduction object is preserved.
        """
        if pending is not None:
            pending.cancel()
        requeue: list[Job] = []
        for j in inflight:
            if j is not None and all(j.job_id != q.job_id for q in requeue):
                requeue.append(j)
        requeue.extend(self.port.worker_died())
        self.port.requeue(requeue)
        self._mark_failed(inflight)
        self._emit_robjs()

    # -- the loop ------------------------------------------------------------

    def run(self) -> None:
        """Process jobs until the run drains, containing recoverable faults."""
        pending: PrefetchHandle | None = None
        # Containment bookkeeping: the job being fetched/processed and
        # the reserved-next job whose prefetch is in flight.  Both are
        # outstanding at the head until completed, so both must be
        # requeued if this worker dies.
        cur_job: Job | None = None
        next_job: Job | None = None
        self._open_run()
        try:
            while not self.stop.is_set():
                cur_job = self.port.get_job()
                if cur_job is None:
                    break
                if self.options.prefetch:
                    # Pipelined path: the first fetch is unavoidably
                    # serial; every later fetch overlaps the previous
                    # job's compute.  When the reserve runs dry the
                    # outer loop re-checks the head, so jobs requeued by
                    # a late failure are still picked up.
                    self._maybe_crash()
                    raw = self._fetch_now(cur_job)
                    while cur_job is not None and not self.stop.is_set():
                        self._maybe_crash()
                        next_job = self.port.reserve_next()
                        if next_job is not None:
                            pending = self._fetchers_for(next_job)[
                                next_job.location
                            ].fetch_chunk_async(next_job.chunk)
                        self._process(cur_job, raw)
                        cur_job = None
                        if next_job is None:
                            break
                        raw = self._await_prefetch(pending, next_job)
                        pending = None
                        cur_job, next_job = next_job, None
                else:
                    # Serial path: fetch then process, one job at a time.
                    self._maybe_crash()
                    raw = self._fetch_now(cur_job)
                    self._process(cur_job, raw)
                    cur_job = None
            self.wstats.finished_at = time.monotonic() - self.t_start
            self._emit_robjs()
        except (WorkerCrash, RetryExhausted):
            # Recoverable: this worker is lost, the run is not.
            self._contain_failure([cur_job, next_job], pending)
            pending = None
        except BaseException as exc:  # surfaced by the engine's run()
            self._on_fatal(exc, [cur_job, next_job], pending)
        finally:
            if pending is not None:
                pending.cancel()


# -- shared run epilogue ------------------------------------------------------


def rollup_fetcher_stats(
    cstats: ClusterStats, fetchers: dict[str, ParallelFetcher], *, close: bool = True
) -> None:
    """Close one cluster's fetchers and fold their fault/autotune state.

    Retry counts, giveups, retried bytes, and (when adaptive fetch is
    on) each path's autotuner snapshot land in :class:`ClusterStats` --
    identically for every engine.
    """
    for loc, f in fetchers.items():
        if close:
            f.close()
        cstats.n_retries += f.n_retries
        cstats.n_errors += f.n_giveups
        cstats.bytes_retried += f.bytes_retried
        cstats.n_breaker_skips += f.n_breaker_skips
        cstats.n_abandoned += f.n_abandoned
        cstats.fragments_wasted_bytes += f.fragments_wasted_bytes
        cstats.fetch_latencies.extend(f.fetch_latencies)
        if f.autotune is not None and f.autotune.n_samples:
            cstats.autotune[loc] = f.autotune.snapshot()


def finalize_timing(stats: RunStats) -> None:
    """Fill idle/sync accounting from per-worker finish times.

    Requires ``stats.total_s`` and each cluster's ``finished_at`` to be
    set; computes ``processing_end_s``, per-cluster ``idle_s`` (waiting
    for the other cluster, unable to steal), and per-worker ``sync_s``
    (barrier wait plus global-reduction exchange).
    """
    processing_end = max(
        (c.finished_at for c in stats.clusters.values()), default=0.0
    )
    stats.processing_end_s = processing_end
    for cstats in stats.clusters.values():
        cstats.idle_s = max(0.0, processing_end - cstats.finished_at)
        for w in cstats.workers:
            w.sync_s = max(0.0, stats.total_s - w.finished_at)


def finalize_run(
    *,
    spec: GeneralizedReductionSpec,
    clusters: list[ClusterConfig],
    stats: RunStats,
    scheduler: HeadScheduler,
    fetchers: dict[str, dict[str, ParallelFetcher]],
    cluster_robjs: dict[str, list[ReductionObject]],
    errors: list[BaseException],
    t_start: float,
    combine: Callable[[list[ReductionObject]], ReductionObject] | None = None,
    health: HealthRegistry | None = None,
) -> RunResult:
    """The shared run epilogue for scheduler-owning engines.

    Rolls fetcher fault/autotune state into the cluster stats, surfaces
    worker errors and undrained schedulers, performs the per-cluster
    combine, ships each cluster's reduction object as real serialized
    bytes (paying the cluster's link latency), runs the global
    reduction, and fills the idle/sync accounting.  ``combine``
    overrides the merge (the process engine's parallel tree); the
    default is the spec's own ``global_reduction``.
    """
    for cluster in clusters:
        rollup_fetcher_stats(stats.clusters[cluster.name], fetchers[cluster.name])
    stats.n_requeued_jobs = scheduler.n_reassigned
    if health is not None:
        stats.breakers = health.snapshot()
    if errors:
        raise errors[0]
    if not scheduler.all_done:
        failed = stats.n_failed_workers
        raise RuntimeError(
            f"run ended with {scheduler.remaining} unassigned / "
            f"{scheduler.outstanding} outstanding jobs"
            + (f" ({failed} workers failed, none left to recover)"
               if failed else "")
        )
    if combine is None:
        combine = spec.global_reduction

    # Per-cluster combination, then inter-cluster global reduction.
    for cstats in stats.clusters.values():
        cstats.finished_at = max(
            (w.finished_at for w in cstats.workers), default=0.0
        )
    t_reduce0 = time.monotonic()
    uploads: list[ReductionObject] = []
    for cluster in clusters:
        cstats = stats.clusters[cluster.name]
        robjs = cluster_robjs[cluster.name]
        merged = combine(robjs) if robjs else spec.create_reduction_object()
        # Ship real serialized bytes, as the wire would carry them.
        t0 = time.monotonic()
        payload = serialize_robj(merged)
        if cluster.link_latency_s > 0:
            time.sleep(cluster.link_latency_s)
        uploads.append(deserialize_robj(payload))
        cstats.robj_nbytes = len(payload)
        cstats.robj_transfer_s = time.monotonic() - t0
    final = combine(uploads)
    t_end = time.monotonic()

    stats.total_s = t_end - t_start
    stats.global_reduction_s = t_end - t_reduce0
    finalize_timing(stats)
    return RunResult(spec.finalize(final), stats, final)
