"""Job registry: per-submission lifecycle state and result retrieval.

Every submission to :class:`~repro.service.service.BurstingService`
gets a :class:`JobHandle` -- the caller's end of the job registry
entry.  The handle walks the lifecycle state machine::

    QUEUED --admit--> RUNNING --drain+finalize--> DONE
       |                 |----fatal error-------> FAILED
       |----cancel-------+----cancel------------> CANCELLED

and offers blocking (:meth:`JobHandle.result`) and asyncio-friendly
(:meth:`JobHandle.aresult`) result retrieval, live status/progress
queries, and cancellation.  All state transitions are performed by the
service under its head lock; the handle itself only synchronizes the
completion event.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from enum import Enum
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.core import RunResult
    from repro.runtime.stats import RunStats

__all__ = ["JobState", "JobCancelledError", "JobHandle"]


class JobState(Enum):
    """Lifecycle states of one submitted job."""

    QUEUED = "queued"        # admitted to the registry, awaiting a slot
    RUNNING = "running"      # chunks being assigned to the slave fleet
    DONE = "done"            # finalized; result available
    FAILED = "failed"        # finalized; exception available
    CANCELLED = "cancelled"  # withdrawn; unassigned chunks never ran

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class JobCancelledError(RuntimeError):
    """Raised by :meth:`JobHandle.result` for a cancelled job."""


class JobHandle:
    """The caller's handle on one submitted job.

    Created by :meth:`BurstingService.submit`; never constructed
    directly.  Thread-safe: any thread (or asyncio task, via
    :meth:`aresult`) may query status or wait for the result.
    """

    def __init__(self, run_id: str, tenant: str, seq: int, service: Any) -> None:
        self.run_id = run_id
        self.tenant = tenant
        self.seq = seq
        self._service = service
        self._state = JobState.QUEUED
        self._result: RunResult | None = None
        self._exc: BaseException | None = None
        self._event = threading.Event()

    # -- state transitions (service-side) ------------------------------------

    def _set_running(self) -> None:
        if not self._state.terminal:
            self._state = JobState.RUNNING

    def _mark_cancelled(self) -> None:
        """Make cancellation visible immediately; resolution follows once
        the job's already-assigned chunks drain."""
        if not self._state.terminal:
            self._state = JobState.CANCELLED

    def _resolve(
        self,
        state: JobState,
        result: RunResult | None = None,
        exc: BaseException | None = None,
    ) -> None:
        if self._event.is_set():
            return
        self._state = state
        self._result = result
        self._exc = exc
        self._event.set()

    # -- caller API ----------------------------------------------------------

    def status(self) -> JobState:
        """Current lifecycle state."""
        return self._state

    def done(self) -> bool:
        """True once the job reached a terminal state *and* resolved."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job resolves; True unless the timeout hit."""
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> RunResult:
        """The job's :class:`~repro.runtime.core.RunResult`.

        Blocks until the job resolves.  Raises the job's error for a
        failed job, :class:`JobCancelledError` for a cancelled one, and
        :class:`TimeoutError` when ``timeout`` elapses first.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"{self.run_id} not done after {timeout}s (state {self._state.value})"
            )
        if self._exc is not None:
            raise self._exc
        assert self._result is not None
        return self._result

    async def aresult(self, timeout: float | None = None) -> RunResult:
        """Asyncio-friendly :meth:`result` (runs the wait in an executor)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(self.result, timeout)
        )

    def cancel(self) -> bool:
        """Withdraw the job.

        A queued job is cancelled outright; a running job stops
        receiving new chunk assignments and resolves as CANCELLED once
        its in-flight chunks drain (their partial reduction state is
        discarded).  Returns False when the job already finished or the
        backend cannot interrupt it (the process/actor run-per-job
        backend).
        """
        return bool(self._service._cancel(self.run_id))

    # -- introspection -------------------------------------------------------

    @property
    def stats(self) -> RunStats:
        """This job's live (or final) per-run :class:`RunStats`."""
        return self._service._run_stats(self.run_id)

    def progress(self) -> dict[str, int]:
        """``{"jobs_total": ..., "jobs_done": ...}`` chunk counts."""
        return self._service._run_progress(self.run_id)

    def chunk_done_times(self) -> list[float]:
        """Service-clock timestamps of each completed chunk (fairness
        instrumentation for the benchmark suite)."""
        return self._service._run_chunk_times(self.run_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobHandle({self.run_id!r}, tenant={self.tenant!r}, "
            f"state={self._state.value})"
        )
