"""Tenant-aware multi-job head scheduling.

One :class:`~repro.runtime.scheduler.HeadScheduler` still owns each
run's locality/stealing/priority policy -- the paper's policy is
untouched.  What the service adds is the layer above: *which run's*
scheduler serves the next assignment request.  That choice is weighted
fair-share over tenants:

* every tenant has a :class:`TenantConfig` weight; its *deficit* is
  served work divided by weight, so a weight-2 tenant absorbs twice the
  chunks before its deficit catches up with a weight-1 tenant's;
* the run with the lowest ``(tenant deficit, submission seq)`` wins the
  request -- FIFO within a tenant, weighted round-robin across tenants;
* the winning deficit is published to the run's scheduler as
  ``tenant_bias``, the tenant term of
  :meth:`HeadScheduler.assignment_key`, so subclassed policies compose
  with fair-share instead of fighting it.

Admission control (per-tenant ``max_inflight``) is enforced by the
service before a run ever reaches this scheduler.  All methods assume
the service's head lock is held.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.runtime.jobs import Job
from repro.runtime.scheduler import HeadScheduler

__all__ = ["TenantConfig", "MultiJobScheduler"]


@dataclass(frozen=True)
class TenantConfig:
    """Fair-share weight and admission cap for one tenant.

    ``weight`` scales the tenant's share of fleet throughput (2.0 gets
    roughly twice the chunks per unit time of 1.0 under contention);
    ``max_inflight`` caps how many of the tenant's jobs may run
    concurrently (``None`` = unlimited; excess submissions queue FIFO).
    """

    weight: float = 1.0
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {self.weight}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1 or None, got {self.max_inflight}"
            )


class _SchedulableRun(Protocol):
    """What the multi-job scheduler needs to know about a run."""

    run_id: str
    tenant: str
    seq: int
    scheduler: HeadScheduler


class MultiJobScheduler:
    """Weighted fair-share interleaving of many runs' head schedulers."""

    def __init__(self, weights: dict[str, float] | None = None) -> None:
        self._active: dict[str, _SchedulableRun] = {}
        self._weights: dict[str, float] = dict(weights or {})
        self._served: dict[str, int] = {}

    # -- run lifecycle -------------------------------------------------------

    def set_weight(self, tenant: str, weight: float) -> None:
        self._weights[tenant] = weight

    def add_run(self, entry: _SchedulableRun) -> None:
        self._active[entry.run_id] = entry
        self._served.setdefault(entry.tenant, 0)
        self._weights.setdefault(entry.tenant, 1.0)

    def remove_run(self, run_id: str) -> None:
        self._active.pop(run_id, None)

    # -- fair-share accounting -----------------------------------------------

    def deficit(self, tenant: str) -> float:
        """Served chunks normalized by weight -- lowest deficit serves next."""
        return self._served.get(tenant, 0) / self._weights.get(tenant, 1.0)

    def served(self, tenant: str) -> int:
        return self._served.get(tenant, 0)

    # -- assignment ----------------------------------------------------------

    def has_work(self) -> bool:
        """True while any active run still holds unassigned chunks."""
        return any(e.scheduler.remaining > 0 for e in self._active.values())

    def _candidates(self) -> Iterable[_SchedulableRun]:
        return (e for e in self._active.values() if e.scheduler.remaining > 0)

    def request_jobs(self, location: str, max_jobs: int) -> list[Job]:
        """Serve one cluster's batch request from the fairest run.

        Publishes each candidate's tenant deficit as its scheduler's
        ``tenant_bias`` (the single place the tenant-weight term enters
        :meth:`HeadScheduler.assignment_key`), picks the run minimizing
        ``(deficit, seq)``, and delegates the actual chunk selection --
        locality, stealing, pushdown priority -- to that run's own
        :class:`HeadScheduler` unchanged.
        """
        best: _SchedulableRun | None = None
        for entry in self._candidates():
            entry.scheduler.tenant_bias = self.deficit(entry.tenant)
            if best is None or (
                (entry.scheduler.tenant_bias, entry.seq)
                < (best.scheduler.tenant_bias, best.seq)
            ):
                best = entry
        if best is None:
            return []
        jobs = best.scheduler.request_jobs(location, max_jobs)
        if jobs:
            self._served[best.tenant] = self._served.get(best.tenant, 0) + len(jobs)
        return jobs
