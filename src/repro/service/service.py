"""BurstingService: a long-lived multi-tenant head over one slave fleet.

The paper's head node orchestrates exactly one generalized-reduction
run; this module turns it into a *service*.  One
:class:`BurstingService` owns the durable state -- the slave fleet, the
store map, the shared chunk cache, the store-health registry, and a job
registry -- while each submission gets its own head scheduler, fetcher
set, reduction objects, and :class:`~repro.runtime.stats.RunStats`.
Assignments carry a ``run_id`` tag, and a slave folds into whichever
run's reduction object its next assignment belongs to, so concurrent
jobs interleave chunk-by-chunk over the same workers (Sector/Sphere's
persistent storage+compute nodes serving many user jobs).

Ownership split:

* **service-lifetime state** -- clusters, stores, options, chunk cache,
  health registry, the fleet (`ServiceSlave` threads pulling through a
  per-cluster :class:`ServiceMaster`), the finalizer thread, and the
  registry of every run ever submitted;
* **per-run state** (one :class:`_RunEntry` per submission) -- the
  tagged job pool and its :class:`HeadScheduler`, per-cluster fetchers,
  per-(worker, run) reduction objects and ``WorkerStats``, an error
  list, and the run's ``RunStats``.  A finished run is finalized by the
  *shared* :func:`~repro.runtime.core.finalize_run` epilogue, so
  per-run stats have full parity with single-run engine results.

Scheduling is two-level: the tenant-aware
:class:`~repro.service.scheduler.MultiJobScheduler` picks *which run*
serves a cluster's batch request (weighted fair-share with per-tenant
``max_inflight`` admission control, FIFO within a tenant), then that
run's own :class:`HeadScheduler` picks *which chunks* (locality,
stealing, pushdown priority -- the paper's policy, unchanged).

The process and actor engines execute each run whole (their transports
pin worker state to one spec per process/mailbox), so for
``engine="process"``/``"actor"`` the service runs one engine per
admitted run on a background thread, one engine at a time (forking
engines from concurrent threads is not fork-safe) -- same
submit/status/result API, FIFO-in-admission-order execution,
chunk-level interleaving only on the threaded fleet.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.api import GeneralizedReductionSpec, supports_batch_fold
from repro.core.reduction_object import ReductionObject
from repro.data.index import DataIndex
from repro.data.units import units_per_group
from repro.runtime.core import (
    ClusterConfig,
    EngineBase,
    EngineOptions,
    MasterPort,
    SlaveRuntime,
    finalize_run,
    make_cluster_fetchers,
    rollup_fetcher_stats,
)
from repro.runtime.jobs import Job, LocalJobPool
from repro.runtime.pushdown import plan_jobs
from repro.runtime.scheduler import HeadScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.service.registry import JobCancelledError, JobHandle, JobState
from repro.service.scheduler import MultiJobScheduler, TenantConfig
from repro.storage.base import StorageBackend
from repro.storage.transfer import ParallelFetcher, PrefetchHandle

__all__ = ["BurstingService", "ServiceMaster", "ServiceSlave"]

#: Process-wide guard for the run-per-job backends: the process engine
#: forks, and forking concurrently from several run threads can deadlock
#: children on locks inherited mid-acquire.
_RUN_PER_JOB_LOCK = threading.Lock()


@dataclass
class _RunEntry:
    """Everything one submitted run owns (registry record)."""

    run_id: str
    seq: int
    tenant: str
    spec: GeneralizedReductionSpec
    index: DataIndex
    handle: JobHandle
    scheduler: HeadScheduler
    stats: RunStats
    n_total: int
    group_units: int
    batch_fold: bool
    fetchers: dict[str, dict[str, ParallelFetcher]] = field(default_factory=dict)
    robjs: dict[str, list[ReductionObject]] = field(default_factory=dict)
    errors: list[BaseException] = field(default_factory=list)
    t0: float = 0.0
    n_done: int = 0
    #: Service-clock completion time of each chunk (fairness metric).
    chunk_done_t: list[float] = field(default_factory=list)
    #: True while the fleet should keep executing this run's chunks.
    live: bool = False
    finalize_enqueued: bool = False


@dataclass
class _WorkerCtx:
    """One worker's per-run fold context (reduction object + stats)."""

    entry: _RunEntry
    wstats: WorkerStats
    robj: ReductionObject


class ServiceMaster(MasterPort):
    """Per-cluster job pool refilling from the service's multi-run head.

    The long-lived sibling of :class:`~repro.runtime.core.LockMaster`:
    instead of latching "drained" when the one run ends, it parks idle
    workers on the service condition variable until a submission,
    requeue, or shutdown gives them something to do.  All refills go
    through the tenant-aware multi-job scheduler under the service's
    head lock.
    """

    def __init__(
        self,
        service: "BurstingService",
        cluster: ClusterConfig,
        batch_size: int,
        n_workers: int,
    ) -> None:
        self.service = service
        self.cluster = cluster
        self.batch_size = batch_size
        self.pool = LocalJobPool()
        self._alive = n_workers
        self._alive_lock = threading.Lock()

    def get_job(self, wait: bool = True) -> Job | None:
        svc = self.service
        while True:
            job = self.pool.try_get()
            if job is None:
                if svc._stop.is_set():
                    return None
                # Pay the master <-> head round-trip outside the lock,
                # as LockMaster does.
                if self.cluster.link_latency_s > 0:
                    time.sleep(self.cluster.link_latency_s)
                with svc._cond:
                    job = self.pool.try_get()
                    if job is None:
                        if svc._stop.is_set():
                            return None
                        jobs = svc._multi.request_jobs(
                            self.cluster.location, self.batch_size
                        )
                        if jobs:
                            if len(jobs) > 1:
                                self.pool.add(jobs[1:])
                                # Wake same-cluster siblings parked below.
                                svc._cond.notify_all()
                            job = jobs[0]
                        elif not wait:
                            return None
                        else:
                            # Nothing assignable anywhere: sleep until a
                            # submit/requeue/cancel/shutdown notifies.
                            # No timeout -- every state change that can
                            # create work notifies under this lock.
                            svc._cond.wait()
                            continue
            # Pooled assignments can go stale when their run is
            # cancelled or failed after refill; hand them back as
            # completed so the run can drain, and keep looking.
            if svc._job_live(job):
                return job
            svc._discard_job(job)

    def reserve_next(self) -> Job | None:
        return self.get_job(wait=False)

    def complete(self, job: Job) -> bool:
        return self.service._complete(job)

    def requeue(self, jobs: list[Job]) -> None:
        self.service._requeue(jobs)

    def worker_died(self) -> list[Job]:
        with self._alive_lock:
            self._alive -= 1
            last = self._alive <= 0
        drained: list[Job] = []
        if last:
            while (job := self.pool.try_get()) is not None:
                drained.append(job)
        self.service._worker_lost()
        return drained


class ServiceSlave(SlaveRuntime):
    """A fleet worker folding into whichever run its assignment names.

    The loop, fetch paths, accounting, and crash containment are the
    shared :class:`SlaveRuntime`; this subclass only swaps the per-run
    context hooks: the job's ``run_id`` resolves the spec, index,
    fetchers, per-(worker, run) ``WorkerStats``, and reduction object.
    Reduction objects are registered with their run at creation, so a
    crashed worker's partial folds are preserved exactly as in the
    single-run engines.
    """

    def __init__(
        self,
        name: str,
        *,
        service: "BurstingService",
        cluster: ClusterConfig,
        port: MasterPort,
        options: EngineOptions,
        t_start: float,
        stop: threading.Event,
    ) -> None:
        super().__init__(
            name,
            cluster=cluster,
            port=port,
            spec=None,  # resolved per assignment from the run registry
            index=None,
            group_units=1,
            fetchers={},
            wstats=WorkerStats(),  # scratch; swapped per assignment
            robjs_out=[],
            options=options,
            t_start=t_start,
            errors=service._fleet_errors,
            stop=stop,
        )
        self.service = service
        self._ctxs: dict[str, _WorkerCtx] = {}
        self._resume = False

    def _ctx(self, job: Job) -> _WorkerCtx:
        """Switch this worker's fold context to ``job``'s run."""
        ctx = self._ctxs.get(job.run_id)
        if ctx is None:
            ctx = self.service._open_worker_ctx(job.run_id, self.cluster.name)
            self._ctxs[job.run_id] = ctx
        entry = ctx.entry
        self.wstats = ctx.wstats
        self.spec = entry.spec
        self.index = entry.index
        self.group_units = entry.group_units
        self._batch_fold = entry.batch_fold
        return ctx

    # -- per-run context hooks ----------------------------------------------

    def _open_run(self) -> None:
        pass  # reduction objects are created per (worker, run) on demand

    def _emit_robjs(self) -> None:
        pass  # robjs are registered with their run at creation

    def _robj_for(self, job: Job) -> ReductionObject:
        return self._ctxs[job.run_id].robj

    def _fetchers_for(self, job: Job) -> dict[str, ParallelFetcher]:
        return self._ctx(job).entry.fetchers[self.cluster.name]

    def _await_prefetch(self, pending: PrefetchHandle, job: Job) -> bytes:
        self._ctx(job)  # account the collect into the job's run
        return super()._await_prefetch(pending, job)

    def _process(self, job: Job, raw: bytes) -> None:
        self._ctx(job)
        try:
            super()._process(job, raw)
        except Exception as exc:
            # A fold/decode/verify error is fatal for *that run only*:
            # the fleet keeps serving everyone else.
            self.service._fail_worker_jobs(exc, [job])

    def _before_complete(self, job: Job) -> None:
        # Stamp the per-run finish time before the head can observe the
        # completion (the finalizer may run the instant complete lands).
        ctx = self._ctxs[job.run_id]
        ctx.wstats.finished_at = time.monotonic() - ctx.entry.t0

    def _mark_failed(self, inflight: list[Job | None]) -> None:
        # Attribute this worker's death to the run(s) whose assignments
        # it was holding; close out its clock in every run it served.
        for j in inflight:
            if j is not None:
                self._ctx(j).wstats.failed = True
        now = time.monotonic()
        for ctx in self._ctxs.values():
            ctx.wstats.finished_at = now - ctx.entry.t0

    def _on_fatal(
        self,
        exc: BaseException,
        inflight: list[Job | None],
        pending: PrefetchHandle | None,
    ) -> None:
        del pending  # cancelled by the caller's ``finally``
        self.service._fail_worker_jobs(
            exc, [j for j in inflight if j is not None]
        )
        self._resume = True  # the worker survives; only the run failed

    def run(self) -> None:
        # A fatal error fails one run, not the worker: re-enter the
        # shared loop after per-run failure handling.  Crash containment
        # (WorkerCrash/RetryExhausted) does NOT set the resume flag --
        # a contained worker stays dead, exactly as in the engines.
        self._resume = True
        while self._resume:
            self._resume = False
            super().run()


class BurstingService(EngineBase):
    """Long-lived multi-tenant head serving concurrent jobs.

    Construction mirrors the engines (clusters + stores + options or
    option keywords), plus ``tenants`` (name ->
    :class:`~repro.service.scheduler.TenantConfig`) and an optional
    global ``max_concurrent_runs`` admission cap.  ``engine`` selects
    the execution backend: ``"threaded"`` (default) interleaves all
    admitted runs chunk-by-chunk over one persistent slave fleet;
    ``"process"``/``"actor"`` execute each admitted run whole on its own
    engine (admission-level sharing).

    Thread-safe: ``submit``/``status``/``cancel``/``shutdown`` may be
    called from any thread; :class:`JobHandle` results are awaitable
    from asyncio via :meth:`JobHandle.aresult`.  Unknown tenants are
    auto-registered with the default weight 1.0.
    """

    def __init__(
        self,
        clusters: list[ClusterConfig],
        stores: dict[str, StorageBackend],
        *,
        engine: str = "threaded",
        tenants: dict[str, TenantConfig] | None = None,
        max_concurrent_runs: int | None = None,
        options: EngineOptions | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(clusters, stores, options=options, **kwargs)
        from repro.runtime import ENGINES

        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (choose from {sorted(ENGINES)})"
            )
        if max_concurrent_runs is not None and max_concurrent_runs < 1:
            raise ValueError("max_concurrent_runs must be >= 1 or None")
        self.engine_name = engine
        self._tenants: dict[str, TenantConfig] = dict(tenants or {})
        self._max_concurrent = max_concurrent_runs
        self._cond = threading.Condition(threading.RLock())
        self._multi = MultiJobScheduler(
            {name: cfg.weight for name, cfg in self._tenants.items()}
        )
        self._runs: dict[str, _RunEntry] = {}
        self._order: list[_RunEntry] = []
        self._pending: deque[_RunEntry] = deque()
        self._tenant_running: dict[str, int] = {}
        self._running = 0
        self._seq = 0
        self._closed = False
        self._stop = threading.Event()
        self._t0 = time.monotonic()
        self._health = self.make_health()
        # Fleet state (threaded backend).
        self._fleet_started = False
        self._threads: list[threading.Thread] = []
        self._masters: dict[str, ServiceMaster] = {}
        self._alive_workers = 0
        self._finalize_q: queue.Queue[_RunEntry | None] = queue.Queue()
        self._finalizer: threading.Thread | None = None
        self._fleet_errors: list[BaseException] = []
        # Run-per-job state (process/actor backends).
        self._run_threads: list[threading.Thread] = []

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        spec: GeneralizedReductionSpec,
        index: DataIndex,
        *,
        tenant: str = "default",
    ) -> JobHandle:
        """Register one run and return its :class:`JobHandle`.

        Non-blocking: planning (index validation, pushdown pruning, job
        tagging) happens in the caller's thread, then the run is queued
        and admitted as soon as its tenant has capacity.
        """
        EngineOptions.validate_index(index, self.stores)
        plan = plan_jobs(index, spec, self.options.pushdown, stores=self.stores)
        group_units = units_per_group(
            self.options.group_nbytes, index.fmt.unit_nbytes
        )
        batch_fold = self.options.batch_fold and supports_batch_fold(spec)
        with self._cond:
            if self._closed:
                raise RuntimeError("service is shut down")
            if tenant not in self._tenants:
                self._tenants[tenant] = TenantConfig()
                self._multi.set_weight(tenant, 1.0)
            seq = self._seq
            self._seq += 1
            run_id = f"job-{seq:04d}"
            jobs = [replace(j, run_id=run_id) for j in plan.jobs]
            scheduler = self.options.scheduler_factory(jobs)
            if self._health is not None and hasattr(scheduler, "attach_health"):
                scheduler.attach_health(self._health.open_locations)
            stats = RunStats()
            plan.apply_to(stats)
            for cluster in self.clusters:
                stats.clusters[cluster.name] = ClusterStats(
                    cluster.name, cluster.location
                )
            handle = JobHandle(run_id, tenant, seq, self)
            entry = _RunEntry(
                run_id=run_id,
                seq=seq,
                tenant=tenant,
                spec=spec,
                index=index,
                handle=handle,
                scheduler=scheduler,
                stats=stats,
                n_total=len(jobs),
                group_units=group_units,
                batch_fold=batch_fold,
                robjs={c.name: [] for c in self.clusters},
            )
            self._runs[run_id] = entry
            self._order.append(entry)
            self._pending.append(entry)
            self._admit_locked()
            self._cond.notify_all()
        return handle

    # -- admission -----------------------------------------------------------

    def _can_admit_locked(self, entry: _RunEntry) -> bool:
        cfg = self._tenants[entry.tenant]
        if (
            cfg.max_inflight is not None
            and self._tenant_running.get(entry.tenant, 0) >= cfg.max_inflight
        ):
            return False
        if self._max_concurrent is not None and self._running >= self._max_concurrent:
            return False
        return True

    def _admit_locked(self) -> None:
        """Admit every queued run whose tenant has capacity (FIFO within
        a tenant; a capped tenant never blocks another's submissions)."""
        remaining: deque[_RunEntry] = deque()
        for entry in self._pending:
            if self._can_admit_locked(entry):
                self._start_run_locked(entry)
            else:
                remaining.append(entry)
        self._pending = remaining

    def _start_run_locked(self, entry: _RunEntry) -> None:
        self._running += 1
        self._tenant_running[entry.tenant] = (
            self._tenant_running.get(entry.tenant, 0) + 1
        )
        entry.t0 = time.monotonic()
        entry.live = True
        entry.handle._set_running()
        if self.engine_name == "threaded":
            self._ensure_fleet_locked()
            opts = self.options
            for cluster in self.clusters:
                entry.fetchers[cluster.name] = make_cluster_fetchers(
                    self.stores,
                    cluster,
                    cache=opts.chunk_cache,
                    prefetch_workers=max(1, cluster.n_workers),
                    retry=opts.retry,
                    adaptive_fetch=opts.adaptive_fetch,
                    min_part_nbytes=opts.min_part_nbytes,
                    autotune_params=opts.autotune_params,
                    health=self._health,
                    hedge=opts.hedge,
                )
            self._multi.add_run(entry)
            if entry.scheduler.all_done:  # zero-chunk submission
                self._maybe_finalize_locked(entry)
        else:
            th = threading.Thread(
                target=self._run_via_engine,
                args=(entry,),
                name=f"svc-run-{entry.run_id}",
                daemon=True,
            )
            self._run_threads.append(th)
            th.start()

    def _ensure_fleet_locked(self) -> None:
        if self._fleet_started:
            return
        self._fleet_started = True
        for cluster in self.clusters:
            master = ServiceMaster(
                self, cluster, self.options.batch_size, cluster.n_workers
            )
            self._masters[cluster.name] = master
            for wid in range(cluster.n_workers):
                slave = ServiceSlave(
                    f"{cluster.name}-w{wid}",
                    service=self,
                    cluster=cluster,
                    port=master,
                    options=self.options,
                    t_start=self._t0,
                    stop=self._stop,
                )
                self._threads.append(
                    threading.Thread(
                        target=slave.run, name=f"svc-{slave.name}", daemon=True
                    )
                )
        self._alive_workers = sum(c.n_workers for c in self.clusters)
        for th in self._threads:
            th.start()
        self._finalizer = threading.Thread(
            target=self._finalize_loop, name="svc-finalizer", daemon=True
        )
        self._finalizer.start()

    # -- run-per-job backend (process / actor) -------------------------------

    def _run_via_engine(self, entry: _RunEntry) -> None:
        from repro.runtime import make_engine

        try:
            # Serialize engine execution: the process engine forks, and
            # forking from two run threads at once lets each child
            # inherit the other engine's queue locks mid-acquire (a
            # deadlock).  Admission stays concurrent; on these backends
            # execution is FIFO in admission order.
            with _RUN_PER_JOB_LOCK:
                eng = make_engine(
                    self.engine_name,
                    self.clusters,
                    self.stores,
                    options=self.options,
                )
                rr = eng.run(entry.spec, entry.index)
        except BaseException as exc:
            entry.errors.append(exc)
            entry.handle._resolve(JobState.FAILED, exc=exc)
        else:
            entry.stats = rr.stats
            entry.n_done = entry.n_total
            t = time.monotonic() - self._t0
            entry.chunk_done_t.extend([t] * entry.n_total)
            entry.handle._resolve(JobState.DONE, result=rr)
        finally:
            entry.live = False
            with self._cond:
                self._running -= 1
                self._tenant_running[entry.tenant] = (
                    self._tenant_running.get(entry.tenant, 1) - 1
                )
                self._admit_locked()
                self._cond.notify_all()

    # -- fleet callbacks (called by masters/slaves) --------------------------

    def _job_live(self, job: Job) -> bool:
        entry = self._runs.get(job.run_id)
        return entry is not None and entry.live

    def _discard_job(self, job: Job) -> None:
        """Account a stale pooled assignment of a dead run as consumed."""
        with self._cond:
            entry = self._runs.get(job.run_id)
            if entry is None:
                return
            entry.scheduler.complete(job)
            self._maybe_finalize_locked(entry)

    def _complete(self, job: Job) -> bool:
        with self._cond:
            entry = self._runs[job.run_id]
            entry.scheduler.complete(job)
            recovered = job.job_id in entry.scheduler.requeued_ids
            entry.n_done += 1
            entry.chunk_done_t.append(time.monotonic() - self._t0)
            self._maybe_finalize_locked(entry)
        return recovered

    def _requeue(self, jobs: list[Job]) -> None:
        with self._cond:
            for job in jobs:
                entry = self._runs.get(job.run_id)
                if entry is None:
                    continue
                if entry.live:
                    entry.scheduler.reassign(job)
                else:
                    # Dead run: consume instead of requeueing work
                    # nobody should execute.
                    entry.scheduler.complete(job)
                    self._maybe_finalize_locked(entry)
            self._cond.notify_all()

    def _fail_worker_jobs(self, exc: BaseException, jobs: list[Job]) -> None:
        """Fail the run(s) owning ``jobs`` after a non-recoverable error."""
        with self._cond:
            failed: dict[str, _RunEntry] = {}
            for job in jobs:
                entry = self._runs.get(job.run_id)
                if entry is None:
                    continue
                entry.scheduler.complete(job)  # consumed by the failure
                failed[entry.run_id] = entry
            if not jobs:
                # Fatal outside any assignment (a service bug): fail
                # every active fleet run rather than hang them.
                failed = {
                    e.run_id: e
                    for e in self._runs.values()
                    if e.live and not e.finalize_enqueued
                }
            for entry in failed.values():
                entry.errors.append(exc)
                entry.live = False
                entry.scheduler.drain_unassigned()
                self._maybe_finalize_locked(entry)
            self._cond.notify_all()

    def _worker_lost(self) -> None:
        with self._cond:
            self._alive_workers -= 1
            if self._alive_workers <= 0:
                # No survivors anywhere: force-resolve everything rather
                # than leave handles hanging.
                for entry in list(self._runs.values()):
                    if not entry.finalize_enqueued:
                        self._maybe_finalize_locked(entry)
                for entry in list(self._pending):
                    entry.handle._resolve(
                        JobState.FAILED,
                        exc=RuntimeError(
                            "every fleet worker failed; queued run "
                            f"{entry.run_id} cannot start"
                        ),
                    )
                self._pending.clear()
            self._cond.notify_all()

    def _open_worker_ctx(self, run_id: str, cluster_name: str) -> _WorkerCtx:
        """Create one worker's fold context for ``run_id``.

        The reduction object and ``WorkerStats`` are registered with the
        run immediately, so a later worker crash preserves the partial
        folds exactly as the single-run engines do.
        """
        with self._cond:
            entry = self._runs[run_id]
            wstats = WorkerStats()
            entry.stats.clusters[cluster_name].workers.append(wstats)
            robj = entry.spec.create_reduction_object()
            entry.robjs[cluster_name].append(robj)
            return _WorkerCtx(entry, wstats, robj)

    # -- finalization --------------------------------------------------------

    def _maybe_finalize_locked(self, entry: _RunEntry) -> None:
        if entry.finalize_enqueued:
            return
        if entry.handle.status() is JobState.QUEUED:
            return
        force = self._fleet_started and self._alive_workers <= 0
        if entry.scheduler.all_done or force:
            entry.finalize_enqueued = True
            entry.live = False
            self._finalize_q.put(entry)

    def _finalize_loop(self) -> None:
        while True:
            entry = self._finalize_q.get()
            if entry is None:
                return
            try:
                self._finalize_entry(entry)
            except BaseException as exc:  # never kill the finalizer
                entry.handle._resolve(JobState.FAILED, exc=exc)
            finally:
                with self._cond:
                    self._running -= 1
                    self._tenant_running[entry.tenant] = (
                        self._tenant_running.get(entry.tenant, 1) - 1
                    )
                    self._multi.remove_run(entry.run_id)
                    self._admit_locked()
                    self._cond.notify_all()

    def _finalize_entry(self, entry: _RunEntry) -> None:
        state = entry.handle.status()
        aborted = (
            state is JobState.CANCELLED
            or entry.errors
            or not entry.scheduler.all_done
        )
        if aborted:
            # Salvage path: close the run's fetchers and roll their
            # fault state in, then resolve with the right error.  The
            # partial reduction state is discarded.
            for cluster in self.clusters:
                rollup_fetcher_stats(
                    entry.stats.clusters[cluster.name],
                    entry.fetchers.get(cluster.name, {}),
                )
            entry.stats.n_requeued_jobs = entry.scheduler.n_reassigned
            if self._health is not None:
                entry.stats.breakers = self._health.snapshot()
            entry.stats.total_s = time.monotonic() - entry.t0
            if state is JobState.CANCELLED:
                entry.handle._resolve(
                    JobState.CANCELLED,
                    exc=JobCancelledError(f"{entry.run_id} was cancelled"),
                )
            else:
                exc = (
                    entry.errors[0]
                    if entry.errors
                    else RuntimeError(
                        f"{entry.run_id} ended with "
                        f"{entry.scheduler.remaining} unassigned / "
                        f"{entry.scheduler.outstanding} outstanding chunks "
                        "and no workers left to recover"
                    )
                )
                entry.handle._resolve(JobState.FAILED, exc=exc)
            return
        try:
            rr = finalize_run(
                spec=entry.spec,
                clusters=self.clusters,
                stats=entry.stats,
                scheduler=entry.scheduler,
                fetchers=entry.fetchers,
                cluster_robjs=entry.robjs,
                errors=entry.errors,
                t_start=entry.t0,
                health=self._health,
            )
        except BaseException as exc:
            entry.handle._resolve(JobState.FAILED, exc=exc)
        else:
            entry.handle._resolve(JobState.DONE, result=rr)

    # -- cancellation / shutdown ---------------------------------------------

    def _cancel(self, run_id: str) -> bool:
        with self._cond:
            entry = self._runs.get(run_id)
            if entry is None:
                return False
            return self._cancel_locked(entry)

    def _cancel_locked(self, entry: _RunEntry) -> bool:
        state = entry.handle.status()
        if state.terminal or entry.handle.done():
            return False
        if state is JobState.QUEUED:
            try:
                self._pending.remove(entry)
            except ValueError:
                pass
            entry.handle._mark_cancelled()
            entry.handle._resolve(
                JobState.CANCELLED,
                exc=JobCancelledError(f"{entry.run_id} cancelled before start"),
            )
            return True
        if self.engine_name != "threaded":
            # The run-per-job backend cannot interrupt a running engine.
            return False
        entry.handle._mark_cancelled()
        entry.live = False
        entry.scheduler.drain_unassigned()
        self._maybe_finalize_locked(entry)
        self._cond.notify_all()
        return True

    def shutdown(
        self, *, cancel_pending: bool = False, timeout: float | None = None
    ) -> None:
        """Drain and stop the service.

        Rejects new submissions immediately; waits for every registered
        run to resolve (with ``cancel_pending=True``, cancels queued and
        running fleet jobs instead of waiting for them); then stops and
        joins the fleet, the finalizer, and any run threads.  Idempotent.
        """
        with self._cond:
            self._closed = True
            if cancel_pending:
                for entry in list(self._order):
                    self._cancel_locked(entry)
            self._cond.notify_all()
        for entry in list(self._order):
            entry.handle.wait(timeout)
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for th in self._threads:
            th.join(timeout)
        for th in self._run_threads:
            th.join(timeout)
        if self._finalizer is not None and self._finalizer.is_alive():
            self._finalize_q.put(None)
            self._finalizer.join(timeout)

    close = shutdown

    def __enter__(self) -> "BurstingService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- introspection -------------------------------------------------------

    def _run_stats(self, run_id: str) -> RunStats:
        return self._runs[run_id].stats

    def _run_progress(self, run_id: str) -> dict[str, int]:
        entry = self._runs[run_id]
        return {"jobs_total": entry.n_total, "jobs_done": entry.n_done}

    def _run_chunk_times(self, run_id: str) -> list[float]:
        return list(self._runs[run_id].chunk_done_t)

    def status(self) -> list[dict[str, Any]]:
        """One row per registered run: id, tenant, state, progress."""
        with self._cond:
            return [
                {
                    "job": e.run_id,
                    "tenant": e.tenant,
                    "state": e.handle.status().value,
                    "chunks": e.n_total,
                    "chunks_done": e.n_done,
                }
                for e in self._order
            ]

    def service_rows(self) -> list[dict[str, Any]]:
        """Per-run stats rollup plus an ALL summary row.

        ``RunStats`` is per-job under the service; these rows are the
        service-level view -- one line per run (fault isolation visible
        per run) and the fleet totals at the bottom.
        """
        rows: list[dict[str, Any]] = []
        totals = {
            "chunks": 0, "chunks_done": 0, "total_s": 0.0, "stolen": 0,
            "workers_failed": 0, "recovered": 0, "requeued": 0, "retries": 0,
        }
        with self._cond:
            entries = list(self._order)
        for e in entries:
            s = e.stats
            row = {
                "job": e.run_id,
                "tenant": e.tenant,
                "state": e.handle.status().value,
                "chunks": e.n_total,
                "chunks_done": e.n_done,
                "total_s": round(s.total_s, 4),
                "stolen": s.jobs_stolen,
                "workers_failed": s.n_failed_workers,
                "recovered": s.jobs_recovered,
                "requeued": s.n_requeued_jobs,
                "retries": s.n_retries,
            }
            rows.append(row)
            totals["chunks"] += e.n_total
            totals["chunks_done"] += e.n_done
            totals["total_s"] += s.total_s
            totals["stolen"] += s.jobs_stolen
            totals["workers_failed"] += s.n_failed_workers
            totals["recovered"] += s.jobs_recovered
            totals["requeued"] += s.n_requeued_jobs
            totals["retries"] += s.n_retries
        rows.append(
            {
                "job": "ALL",
                "tenant": "-",
                "state": "-",
                "chunks": totals["chunks"],
                "chunks_done": totals["chunks_done"],
                "total_s": round(totals["total_s"], 4),
                "stolen": totals["stolen"],
                "workers_failed": totals["workers_failed"],
                "recovered": totals["recovered"],
                "requeued": totals["requeued"],
                "retries": totals["retries"],
            }
        )
        return rows

    def tenant_report(self) -> dict[str, dict[str, Any]]:
        """Per-tenant served work and configured weight (fairness view)."""
        with self._cond:
            return {
                name: {
                    "weight": cfg.weight,
                    "max_inflight": cfg.max_inflight,
                    "served_chunks": self._multi.served(name),
                    "running": self._tenant_running.get(name, 0),
                }
                for name, cfg in self._tenants.items()
            }
