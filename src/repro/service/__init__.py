"""Multi-tenant bursting service: a long-lived head over one fleet.

Public surface::

    from repro.service import BurstingService, TenantConfig

    svc = BurstingService(clusters, stores, chunk_cache=ChunkCache(64 << 20))
    h1 = svc.submit(spec_a, index_a, tenant="analytics")
    h2 = svc.submit(spec_b, index_b, tenant="ingest")
    out = h1.result()          # blocking; or: await h1.aresult()
    svc.shutdown()

See :mod:`repro.service.service` for the architecture notes.
"""

from repro.service.registry import JobCancelledError, JobHandle, JobState
from repro.service.scheduler import MultiJobScheduler, TenantConfig
from repro.service.service import BurstingService

__all__ = [
    "BurstingService",
    "JobHandle",
    "JobState",
    "JobCancelledError",
    "MultiJobScheduler",
    "TenantConfig",
]
