"""Cloud pricing model (pay-as-you-go, circa the paper).

The paper motivates bursting with the pay-as-you-go economics of EC2/S3
and closes by noting bursting "can allow flexibility in combining
limited local resources with pay-as-you-go cloud resources"; the
authors' follow-up work makes the time/cost trade-off explicit.  This
module prices a simulated run under the 2011-era AWS model:

* EC2 instances billed per (partial) instance-hour;
* S3 GET requests billed per request;
* data transfer *out* of AWS billed per GB (inbound and intra-AWS free) --
  which is exactly the traffic work stealing by the local cluster and
  reduction-object uploads to a local head node generate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PricingModel"]


@dataclass(frozen=True)
class PricingModel:
    """AWS-style price book.  Defaults mirror late-2011 us-east prices."""

    #: $ per instance-hour (m1.large was $0.34).
    instance_hour_usd: float = 0.34
    #: Cores per instance (m1.large: 2 virtual cores).
    cores_per_instance: int = 2
    #: Minimum billed granularity in hours (EC2 billed whole hours).
    billing_quantum_h: float = 1.0
    #: $ per 1,000 GET requests (S3: $0.01 per 10,000 -> 0.001 per 1k).
    s3_get_per_1k_usd: float = 0.001
    #: $ per GB transferred out of AWS ($0.12 first tiers).
    egress_per_gb_usd: float = 0.12
    #: $ per GB-month of S3 storage ($0.14 standard).
    s3_storage_gb_month_usd: float = 0.14

    def __post_init__(self) -> None:
        if self.cores_per_instance <= 0:
            raise ValueError("cores_per_instance must be positive")
        if self.billing_quantum_h <= 0:
            raise ValueError("billing_quantum_h must be positive")
        if min(
            self.instance_hour_usd,
            self.s3_get_per_1k_usd,
            self.egress_per_gb_usd,
            self.s3_storage_gb_month_usd,
        ) < 0:
            raise ValueError("prices must be non-negative")

    def instances_for(self, cores: int) -> int:
        """Instances needed to host ``cores`` cores."""
        if cores < 0:
            raise ValueError("cores must be non-negative")
        return math.ceil(cores / self.cores_per_instance)

    def compute_cost(self, cloud_cores: int, duration_s: float) -> float:
        """EC2 bill for a run of ``duration_s`` on ``cloud_cores`` cores."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if cloud_cores == 0 or duration_s == 0:
            return 0.0
        hours = duration_s / 3600.0
        billed = math.ceil(hours / self.billing_quantum_h) * self.billing_quantum_h
        return self.instances_for(cloud_cores) * billed * self.instance_hour_usd

    def request_cost(self, n_gets: int) -> float:
        """S3 request bill."""
        if n_gets < 0:
            raise ValueError("n_gets must be non-negative")
        return (n_gets / 1000.0) * self.s3_get_per_1k_usd

    def egress_cost(self, nbytes: float) -> float:
        """Data-transfer-out bill."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return (nbytes / float(1 << 30)) * self.egress_per_gb_usd

    def storage_cost(self, nbytes: float, days: float) -> float:
        """S3 storage bill for holding ``nbytes`` for ``days``."""
        if nbytes < 0 or days < 0:
            raise ValueError("nbytes and days must be non-negative")
        return (nbytes / float(1 << 30)) * self.s3_storage_gb_month_usd * (days / 30.0)
