"""Spot-instance analysis: cheap capacity that can vanish mid-run.

EC2's spot market (launched 2009) rents spare capacity at a steep
discount but may revoke instances at any moment -- the classic
follow-up question for bursting middleware (cf. the "AMAZING" optimal
spot-bidding line of work).  Because this middleware already tolerates
worker loss (the head reassigns in-flight jobs and survivors absorb the
load), spot revocation is *graceful degradation*, and the interesting
question becomes statistical: over the revocation distribution, what do
time and cost look like versus on-demand?

``spot_analysis`` Monte-Carlos revocation times through the simulator's
failure machinery and summarizes the time/cost distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index
from repro.cost.pricing import PricingModel
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.simrun import FailureSpec, simulate_run

__all__ = ["SpotMarket", "SpotTrial", "SpotSummary", "spot_analysis"]


@dataclass(frozen=True)
class SpotMarket:
    """Spot price and revocation behaviour.

    ``discount`` scales the on-demand instance price; revocations
    arrive as a Poisson process with ``revocation_rate_per_hour`` per
    *fleet* (a revocation takes out ``revocation_fraction`` of the spot
    cores at once, modelling a price spike clearing part of the bid).
    """

    discount: float = 0.3
    revocation_rate_per_hour: float = 1.0
    revocation_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.discount <= 1:
            raise ValueError("discount must be in (0, 1]")
        if self.revocation_rate_per_hour < 0:
            raise ValueError("revocation rate must be non-negative")
        if not 0 < self.revocation_fraction <= 1:
            raise ValueError("revocation_fraction must be in (0, 1]")


@dataclass(frozen=True)
class SpotTrial:
    """One Monte-Carlo outcome."""

    time_s: float
    cost_usd: float
    revoked_cores: int
    revocation_time_s: float | None


@dataclass(frozen=True)
class SpotSummary:
    """Distribution summary plus the on-demand reference point."""

    trials: tuple[SpotTrial, ...]
    ondemand_time_s: float
    ondemand_cost_usd: float

    @property
    def mean_time_s(self) -> float:
        return float(np.mean([t.time_s for t in self.trials]))

    @property
    def p95_time_s(self) -> float:
        return float(np.percentile([t.time_s for t in self.trials], 95))

    @property
    def mean_cost_usd(self) -> float:
        return float(np.mean([t.cost_usd for t in self.trials]))

    @property
    def revocation_frequency(self) -> float:
        return sum(1 for t in self.trials if t.revoked_cores > 0) / len(self.trials)

    @property
    def mean_savings_pct(self) -> float:
        return 100.0 * (1.0 - self.mean_cost_usd / self.ondemand_cost_usd)

    @property
    def mean_slowdown_pct(self) -> float:
        return 100.0 * (self.mean_time_s / self.ondemand_time_s - 1.0)


def spot_analysis(
    app: str,
    env: EnvironmentConfig,
    market: SpotMarket = SpotMarket(),
    params: ResourceParams | None = None,
    pricing: PricingModel = PricingModel(),
    *,
    n_trials: int = 20,
    seed: int = 0,
) -> SpotSummary:
    """Monte-Carlo the run with spot-revocation failures on the cloud side.

    Cost model per trial: the whole cloud fleet is billed at the spot
    discount for the run's (per-quantum) duration; revoked capacity
    stops billing at the revocation instant.  The local cluster is free
    (owned).  Durations use per-minute quanta, appropriate for the
    sub-hour simulated runs.
    """
    if env.cloud_cores <= 0:
        raise ValueError("spot analysis needs cloud cores")
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    params = params or ResourceParams()
    profile = APP_PROFILES[app]
    index = paper_index(profile, env)
    clusters = env.clusters(params)
    minute = PricingModel(
        instance_hour_usd=pricing.instance_hour_usd,
        cores_per_instance=pricing.cores_per_instance,
        billing_quantum_h=1 / 60,
        s3_get_per_1k_usd=pricing.s3_get_per_1k_usd,
        egress_per_gb_usd=pricing.egress_per_gb_usd,
    )

    base = simulate_run(index, clusters, profile, params, seed=seed)
    ondemand_cost = minute.compute_cost(env.cloud_cores, base.total_s)

    rng = np.random.default_rng(seed)
    revoke_cores = max(1, int(round(env.cloud_cores * market.revocation_fraction)))
    trials: list[SpotTrial] = []
    for trial in range(n_trials):
        if market.revocation_rate_per_hour > 0:
            revoke_at = float(rng.exponential(3600.0 / market.revocation_rate_per_hour))
        else:
            revoke_at = math.inf
        if revoke_at >= base.total_s * 3:  # effectively never, within the run
            res = simulate_run(index, clusters, profile, params, seed=seed + trial)
            cost = market.discount * minute.compute_cost(env.cloud_cores, res.total_s)
            trials.append(SpotTrial(res.total_s, cost, 0, None))
            continue
        res = simulate_run(
            index, clusters, profile, params, seed=seed + trial,
            failures=[FailureSpec("cloud", revoke_cores, revoke_at)],
        )
        surviving = env.cloud_cores - revoke_cores
        cost = market.discount * (
            minute.compute_cost(revoke_cores, min(revoke_at, res.total_s))
            + minute.compute_cost(surviving, res.total_s)
        )
        trials.append(SpotTrial(res.total_s, cost, revoke_cores, revoke_at))
    return SpotSummary(tuple(trials), base.total_s, ondemand_cost)
