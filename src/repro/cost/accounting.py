"""Cost accounting for simulated bursting runs.

Derives the billable quantities of one execution from its
:class:`~repro.sim.simrun.SimRunResult`, the environment, and the
application profile:

* **compute**: cloud instance-hours for the run's duration;
* **requests**: one ranged GET per retrieval thread per S3-resident job
  (multi-threaded retrieval literally multiplies the request bill);
* **egress**: bytes leaving AWS -- chunks stolen by the local cluster
  plus the cloud master's reduction-object upload to a local head node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bursting.config import EnvironmentConfig
from repro.cost.pricing import PricingModel
from repro.sim.calibration import AppSimProfile, PAPER_DATASET_NBYTES, PAPER_N_JOBS
from repro.sim.simrun import SimRunResult

__all__ = ["CostReport", "cost_of_run"]


@dataclass(frozen=True)
class CostReport:
    """Dollar breakdown of one run."""

    compute_usd: float
    requests_usd: float
    egress_usd: float

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.requests_usd + self.egress_usd

    def to_dict(self) -> dict:
        return {
            "compute_usd": round(self.compute_usd, 4),
            "requests_usd": round(self.requests_usd, 4),
            "egress_usd": round(self.egress_usd, 4),
            "total_usd": round(self.total_usd, 4),
        }


def cost_of_run(
    result: SimRunResult,
    env: EnvironmentConfig,
    profile: AppSimProfile,
    pricing: PricingModel = PricingModel(),
    *,
    retrieval_threads: int = 8,
) -> CostReport:
    """Price one simulated execution.

    S3-resident jobs processed by the cloud cluster are intra-AWS
    (free transfer, billed requests); jobs stolen by the local cluster
    pay both requests and egress.  The reduction object crosses out of
    AWS only when a local head exists (hybrid and all-local setups).
    """
    if retrieval_threads <= 0:
        raise ValueError("retrieval_threads must be positive")
    clusters = result.stats.clusters
    chunk_nbytes = PAPER_DATASET_NBYTES / PAPER_N_JOBS

    compute = pricing.compute_cost(env.cloud_cores, result.total_s)

    # Jobs fetched from S3: everything except local-cluster local jobs.
    local = clusters.get("local")
    cloud = clusters.get("cloud")
    s3_jobs = 0
    egress_bytes = 0.0
    if cloud is not None:
        # Cloud's non-stolen jobs came from S3 (its own site's store).
        s3_jobs += cloud.jobs_processed - cloud.jobs_stolen
    if local is not None:
        # Local's stolen jobs are S3 reads crossing out of AWS.
        s3_jobs += local.jobs_stolen
        egress_bytes += local.jobs_stolen * chunk_nbytes
    requests = pricing.request_cost(s3_jobs * retrieval_threads)

    # Reduction object leaves AWS iff the head sits at the local cluster.
    if cloud is not None and local is not None:
        egress_bytes += profile.robj_nbytes
    egress = pricing.egress_cost(egress_bytes)

    return CostReport(compute_usd=compute, requests_usd=requests, egress_usd=egress)
