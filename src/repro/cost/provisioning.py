"""Time/cost-sensitive provisioning.

Answers the operational questions cloud bursting raises, using the
simulator as the performance oracle:

* *"My deadline is T seconds -- how many cloud cores do I rent?"*
  (:func:`cheapest_meeting_deadline`)
* *"My budget is $B -- how fast can I get the answer?"*
  (:func:`fastest_within_budget`)
* *"Show me the whole trade-off."* (:func:`tradeoff_curve`,
  :func:`pareto_frontier`)

This realizes the paper's closing motivation ("avoid over-provisioning
of base resources, while still providing users better response time")
and the authors' follow-up work on time/cost-constrained execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import simulate_environment
from repro.cost.accounting import CostReport, cost_of_run
from repro.cost.pricing import PricingModel
from repro.sim.calibration import APP_PROFILES, ResourceParams

__all__ = [
    "ProvisioningPoint",
    "tradeoff_curve",
    "pareto_frontier",
    "cheapest_meeting_deadline",
    "fastest_within_budget",
]

DEFAULT_CLOUD_CORE_OPTIONS = (0, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class ProvisioningPoint:
    """One evaluated configuration on the time/cost plane."""

    cloud_cores: int
    time_s: float
    cost: CostReport
    env: EnvironmentConfig

    @property
    def cost_usd(self) -> float:
        return self.cost.total_usd

    def to_dict(self) -> dict:
        d = {"cloud_cores": self.cloud_cores, "time_s": round(self.time_s, 2)}
        d.update(self.cost.to_dict())
        return d


def tradeoff_curve(
    app: str,
    *,
    local_cores: int,
    local_data_fraction: float,
    cloud_core_options: Sequence[int] = DEFAULT_CLOUD_CORE_OPTIONS,
    params: ResourceParams | None = None,
    pricing: PricingModel = PricingModel(),
    seed: int = 0,
) -> list[ProvisioningPoint]:
    """Simulate each candidate cloud-core count and price it.

    A candidate is skipped when it cannot process the dataset at all
    (no cores anywhere, or cloud-resident data with zero cores at both
    sites cannot happen since local cores always exist in practice).
    """
    profile = APP_PROFILES[app]
    params = params or ResourceParams()
    points: list[ProvisioningPoint] = []
    for cloud_cores in sorted(set(cloud_core_options)):
        if local_cores == 0 and cloud_cores == 0:
            continue
        env = EnvironmentConfig(
            f"prov-{cloud_cores}", local_data_fraction, local_cores, cloud_cores
        )
        result = simulate_environment(app, env, params, seed=seed)
        report = cost_of_run(result, env, profile, pricing)
        points.append(
            ProvisioningPoint(cloud_cores, result.total_s, report, env)
        )
    if not points:
        raise ValueError("no feasible configurations to evaluate")
    return points


def pareto_frontier(points: Sequence[ProvisioningPoint]) -> list[ProvisioningPoint]:
    """Configurations not dominated in (time, cost), sorted by time."""
    ordered = sorted(points, key=lambda p: (p.time_s, p.cost_usd))
    frontier: list[ProvisioningPoint] = []
    best_cost = float("inf")
    for p in ordered:
        if p.cost_usd < best_cost - 1e-12:
            frontier.append(p)
            best_cost = p.cost_usd
    return frontier


def cheapest_meeting_deadline(
    points: Sequence[ProvisioningPoint], deadline_s: float
) -> ProvisioningPoint | None:
    """Cheapest configuration finishing within ``deadline_s`` (None if none)."""
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    feasible = [p for p in points if p.time_s <= deadline_s]
    if not feasible:
        return None
    return min(feasible, key=lambda p: (p.cost_usd, p.time_s))


def fastest_within_budget(
    points: Sequence[ProvisioningPoint], budget_usd: float
) -> ProvisioningPoint | None:
    """Fastest configuration costing at most ``budget_usd`` (None if none)."""
    if budget_usd < 0:
        raise ValueError("budget must be non-negative")
    feasible = [p for p in points if p.cost_usd <= budget_usd]
    if not feasible:
        return None
    return min(feasible, key=lambda p: (p.time_s, p.cost_usd))
