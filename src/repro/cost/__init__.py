"""Time/cost-sensitive bursting: pricing, accounting, provisioning."""

from repro.cost.accounting import CostReport, cost_of_run
from repro.cost.instances import (
    EC2_CATALOG_2011,
    InstanceChoice,
    InstanceType,
    cheapest_instances_for_deadline,
    instance_tradeoff,
)
from repro.cost.placement import PlacementPoint, best_placement, placement_curve
from repro.cost.pricing import PricingModel
from repro.cost.spot import SpotMarket, SpotSummary, SpotTrial, spot_analysis
from repro.cost.provisioning import (
    DEFAULT_CLOUD_CORE_OPTIONS,
    ProvisioningPoint,
    cheapest_meeting_deadline,
    fastest_within_budget,
    pareto_frontier,
    tradeoff_curve,
)

__all__ = [
    "CostReport",
    "cost_of_run",
    "PricingModel",
    "EC2_CATALOG_2011",
    "InstanceChoice",
    "InstanceType",
    "cheapest_instances_for_deadline",
    "instance_tradeoff",
    "PlacementPoint",
    "best_placement",
    "placement_curve",
    "DEFAULT_CLOUD_CORE_OPTIONS",
    "ProvisioningPoint",
    "cheapest_meeting_deadline",
    "fastest_within_budget",
    "pareto_frontier",
    "tradeoff_curve",
    "SpotMarket",
    "SpotSummary",
    "SpotTrial",
    "spot_analysis",
]
