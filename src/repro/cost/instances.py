"""Instance-type selection.

2011-era EC2 offered several instance families with different
core counts, per-core speeds (ECUs), and hourly prices; the paper used
m1.large.  This module extends provisioning to the *type* axis: given a
catalog, simulate each (type, count) candidate and pick the cheapest
configuration meeting a deadline -- quantifying, e.g., whether slower
m1.small cores or faster cluster-compute cores are the better deal for
a given workload mix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.bursting.driver import paper_index
from repro.bursting.config import EnvironmentConfig
from repro.cost.pricing import PricingModel
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.simrun import SimClusterConfig, simulate_run

__all__ = [
    "InstanceType",
    "EC2_CATALOG_2011",
    "InstanceChoice",
    "instance_tradeoff",
    "cheapest_instances_for_deadline",
]


@dataclass(frozen=True)
class InstanceType:
    """One rentable instance family."""

    name: str
    cores: int
    core_speed: float      # relative to a local cluster core
    price_hour_usd: float

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.core_speed <= 0 or self.price_hour_usd < 0:
            raise ValueError(f"invalid instance type {self.name!r}")

    @property
    def throughput(self) -> float:
        """Local-core equivalents this instance provides."""
        return self.cores * self.core_speed

    @property
    def usd_per_equiv_hour(self) -> float:
        """Price per local-core-equivalent hour (efficiency metric)."""
        return self.price_hour_usd / self.throughput


#: Late-2011 us-east on-demand prices, speeds as local-Xeon fractions.
EC2_CATALOG_2011: tuple[InstanceType, ...] = (
    InstanceType("m1.small", cores=1, core_speed=0.40, price_hour_usd=0.085),
    InstanceType("m1.large", cores=2, core_speed=16 / 22, price_hour_usd=0.34),
    InstanceType("m1.xlarge", cores=4, core_speed=16 / 22, price_hour_usd=0.68),
    InstanceType("c1.xlarge", cores=8, core_speed=0.90, price_hour_usd=0.68),
    InstanceType("cc1.4xlarge", cores=8, core_speed=1.00, price_hour_usd=1.30),
)


@dataclass(frozen=True)
class InstanceChoice:
    """One simulated (type, count) candidate."""

    itype: InstanceType
    count: int
    time_s: float
    compute_usd: float

    @property
    def cloud_cores(self) -> int:
        return self.itype.cores * self.count

    def to_dict(self) -> dict:
        return {
            "instance": self.itype.name,
            "count": self.count,
            "cloud_cores": self.cloud_cores,
            "time_s": round(self.time_s, 1),
            "compute_usd": round(self.compute_usd, 3),
        }


def instance_tradeoff(
    app: str,
    *,
    local_cores: int,
    local_data_fraction: float,
    catalog: Sequence[InstanceType] = EC2_CATALOG_2011,
    counts: Sequence[int] = (2, 4, 8, 16),
    params: ResourceParams | None = None,
    pricing: PricingModel = PricingModel(),
    retrieval_threads: int = 8,
    seed: int = 0,
) -> list[InstanceChoice]:
    """Simulate every (instance type, count) candidate and price it."""
    if not catalog or not counts:
        raise ValueError("catalog and counts must be non-empty")
    profile = APP_PROFILES[app]
    params = params or ResourceParams()
    choices: list[InstanceChoice] = []
    for itype in catalog:
        for count in sorted(set(counts)):
            if count <= 0:
                raise ValueError("instance counts must be positive")
            env = EnvironmentConfig(
                f"{itype.name}x{count}", local_data_fraction,
                local_cores, itype.cores * count,
            )
            index = paper_index(profile, env)
            clusters = []
            if local_cores > 0:
                clusters.append(
                    SimClusterConfig(
                        "local", "local", local_cores,
                        core_speed=params.local_core_speed,
                        retrieval_threads=retrieval_threads,
                    )
                )
            clusters.append(
                SimClusterConfig(
                    "cloud", "cloud", itype.cores * count,
                    core_speed=itype.core_speed,
                    retrieval_threads=retrieval_threads,
                )
            )
            res = simulate_run(index, clusters, profile, params, seed=seed)
            hours = res.total_s / 3600.0
            billed = math.ceil(hours / pricing.billing_quantum_h) * pricing.billing_quantum_h
            choices.append(
                InstanceChoice(itype, count, res.total_s, count * billed * itype.price_hour_usd)
            )
    return choices


def cheapest_instances_for_deadline(
    choices: Sequence[InstanceChoice], deadline_s: float
) -> InstanceChoice | None:
    """Cheapest candidate finishing within the deadline (None if none)."""
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    feasible = [c for c in choices if c.time_s <= deadline_s]
    if not feasible:
        return None
    return min(feasible, key=lambda c: (c.compute_usd, c.time_s))
