"""Data-placement advisor.

The paper observes that "the proportion of data distribution and
allocated throughput are important parameters" and that "having a
perfect distribution would likely minimize the total slowdown".  This
module searches the placement axis: for a fixed compute configuration,
simulate a grid of local-data fractions and report the one minimizing
execution time (or dollar cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import simulate_environment
from repro.cost.accounting import CostReport, cost_of_run
from repro.cost.pricing import PricingModel
from repro.sim.calibration import APP_PROFILES, ResourceParams

__all__ = ["PlacementPoint", "placement_curve", "best_placement"]

DEFAULT_FRACTIONS = (0.0, 1 / 6, 1 / 3, 0.5, 2 / 3, 5 / 6, 1.0)


@dataclass(frozen=True)
class PlacementPoint:
    """One evaluated data distribution."""

    local_fraction: float
    time_s: float
    cost: CostReport
    env: EnvironmentConfig

    def to_dict(self) -> dict:
        d = {
            "local_fraction": round(self.local_fraction, 3),
            "time_s": round(self.time_s, 2),
        }
        d.update(self.cost.to_dict())
        return d


def placement_curve(
    app: str,
    *,
    local_cores: int,
    cloud_cores: int,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    params: ResourceParams | None = None,
    pricing: PricingModel = PricingModel(),
    seed: int = 0,
) -> list[PlacementPoint]:
    """Simulate each candidate local-data fraction and price it."""
    if not fractions:
        raise ValueError("need at least one candidate fraction")
    profile = APP_PROFILES[app]
    params = params or ResourceParams()
    points = []
    for frac in sorted(set(fractions)):
        if not 0.0 <= frac <= 1.0:
            raise ValueError(f"fraction {frac} outside [0, 1]")
        env = EnvironmentConfig(f"place-{frac:.2f}", frac, local_cores, cloud_cores)
        result = simulate_environment(app, env, params, seed=seed)
        points.append(
            PlacementPoint(frac, result.total_s, cost_of_run(result, env, profile, pricing), env)
        )
    return points


def best_placement(
    points: Sequence[PlacementPoint], *, objective: str = "time"
) -> PlacementPoint:
    """The point minimizing ``objective`` ("time" or "cost")."""
    if not points:
        raise ValueError("no placement points to choose from")
    if objective == "time":
        return min(points, key=lambda p: (p.time_s, p.cost.total_usd))
    if objective == "cost":
        return min(points, key=lambda p: (p.cost.total_usd, p.time_s))
    raise ValueError(f"unknown objective {objective!r}")
