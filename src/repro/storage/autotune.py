"""AIMD autotuning of the parallel sub-range fetch fan-out.

The paper fixes the number of retrieval threads per slave; the right
count actually depends on the path -- per-connection caps, aggregate
throttles, and WAN fair-sharing all move the knee.  Sector/Sphere-style
transfer layers tune connections to the link they are on, and that is
what :class:`AimdAutotuner` does for one (cluster, data location) path:

* **additive increase** -- after ``probe_interval`` samples at the
  current fan-out, grow by one connection while the measured aggregate
  throughput still improves by at least ``grow_gain`` over the best
  lower setting (i.e. the added connection is paying for itself);
* **multiplicative decrease** -- when an added connection stops paying
  (per-connection cap reached or the aggregate bucket is saturated),
  remember the knee as a *ceiling* and cut the fan-out by ``backoff``,
  re-climbing toward (but not past) the ceiling;
* periodic **re-probing** -- every ``reprobe_every`` decisions the
  ceiling is lifted once so a changed link can be rediscovered.

Throughput per fan-out setting is tracked as an EWMA, giving a smoothed
``effective_bw`` estimate of the path; :meth:`snapshot` exports the
estimate plus the decision trajectory for the stats report.

The tuner is lock-protected and driven purely by ``record`` calls with
observed (nbytes, parts, elapsed) triples, so the same class serves the
threaded engines (wall-clock samples) and the DES simulator (virtual
clock samples).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["AutotuneParams", "AimdAutotuner"]


@dataclass(frozen=True)
class AutotuneParams:
    """Knobs of the AIMD fan-out controller."""

    min_parts: int = 1
    max_parts: int = 16
    start_parts: int = 2
    min_part_nbytes: int = 64 * 1024  # never shatter below 64 KiB per GET
    ewma_alpha: float = 0.4
    grow_gain: float = 1.05   # +1 conn must buy >= 5% aggregate throughput
    backoff: float = 0.5      # multiplicative decrease factor
    probe_interval: int = 2   # samples at a setting before deciding
    reprobe_every: int = 8    # decisions between ceiling re-probes

    def __post_init__(self) -> None:
        if self.min_parts <= 0:
            raise ValueError("min_parts must be positive")
        if self.max_parts < self.min_parts:
            raise ValueError("max_parts must be >= min_parts")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.backoff < 1.0:
            raise ValueError("backoff must be in (0, 1)")
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")


class AimdAutotuner:
    """Adaptive fan-out for one (cluster, location) transfer path."""

    def __init__(self, params: AutotuneParams | None = None, name: str = "") -> None:
        self.params = params or AutotuneParams()
        self.name = name
        p = self.params
        self._parts = min(max(p.start_parts, p.min_parts), p.max_parts)
        self._bw_at: dict[int, float] = {}  # fan-out -> EWMA bytes/s
        self._samples_here = 0
        self._ceiling: int | None = None
        self._decisions_since_probe = 0
        self.n_grow = 0
        self.n_backoff = 0
        self.n_samples = 0
        self.trajectory: list[int] = [self._parts]
        self._lock = threading.Lock()

    @property
    def parts(self) -> int:
        with self._lock:
            return self._parts

    def parts_for(self, nbytes: int) -> int:
        """Fan-out to use for a fetch of ``nbytes`` (min-part-size clamped)."""
        with self._lock:
            parts = self._parts
        if self.params.min_part_nbytes > 0:
            parts = min(parts, max(1, nbytes // self.params.min_part_nbytes))
        return max(1, parts)

    def record(self, nbytes: int, n_parts: int, elapsed_s: float) -> None:
        """Feed one completed fetch back into the controller."""
        if nbytes <= 0 or elapsed_s <= 0:
            return
        bw = nbytes / elapsed_s
        a = self.params.ewma_alpha
        with self._lock:
            self.n_samples += 1
            prev = self._bw_at.get(n_parts)
            self._bw_at[n_parts] = bw if prev is None else (1 - a) * prev + a * bw
            if n_parts != self._parts:
                return  # clamped small fetch or stale in-flight sample
            self._samples_here += 1
            if self._samples_here < self.params.probe_interval:
                return
            self._samples_here = 0
            self._decide()

    def _decide(self) -> None:
        """AIMD step; caller holds the lock."""
        p = self.params
        cur_bw = self._bw_at.get(self._parts)
        lower = max((n for n in self._bw_at if n < self._parts), default=None)
        self._decisions_since_probe += 1
        reprobe = self._decisions_since_probe >= p.reprobe_every
        scaling = (
            lower is None
            or cur_bw is None
            or cur_bw >= self._bw_at[lower] * p.grow_gain
        )
        if scaling:
            blocked = (
                self._ceiling is not None and self._parts + 1 > self._ceiling
            )
            if self._parts < p.max_parts and (not blocked or reprobe):
                if blocked:
                    self._ceiling = None  # re-probe past the remembered knee
                    self._decisions_since_probe = 0
                    self._parts += 1
                elif self._ceiling is not None and self._parts < self._ceiling:
                    # Recovering after a backoff toward a knee we already
                    # located: jump straight back to it instead of
                    # re-climbing one connection at a time, so the
                    # post-backoff sawtooth spends its time at the knee.
                    self._parts = self._ceiling
                else:
                    self._parts += 1
                self.n_grow += 1
                self.trajectory.append(self._parts)
        else:
            # The last added connection stopped paying: remember the knee
            # and back off multiplicatively.
            self._ceiling = max(p.min_parts, self._parts - 1)
            self._parts = max(p.min_parts, int(self._parts * p.backoff))
            self.n_backoff += 1
            self.trajectory.append(self._parts)

    @property
    def effective_bw(self) -> float:
        """Smoothed bytes/s estimate at the best fan-out seen so far."""
        with self._lock:
            return max(self._bw_at.values(), default=0.0)

    def snapshot(self) -> dict:
        """Exportable state for the stats report / benchmark JSON."""
        with self._lock:
            return {
                "name": self.name,
                "parts": self._parts,
                "ceiling": self._ceiling,
                "effective_bw": max(self._bw_at.values(), default=0.0),
                "bw_at": {str(k): v for k, v in sorted(self._bw_at.items())},
                "n_grow": self.n_grow,
                "n_backoff": self.n_backoff,
                "n_samples": self.n_samples,
                "trajectory": list(self.trajectory),
            }
