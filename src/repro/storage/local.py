"""Local stores: in-memory and on-disk.

``MemoryStore`` backs tests and the simulated S3 service;
``LocalDiskStore`` is the cluster storage-node equivalent, with ranged
reads implemented via ``seek`` so a chunk fetch never touches the rest of
the file.
"""

from __future__ import annotations

import os
import threading

from repro.storage.base import StorageBackend

__all__ = ["MemoryStore", "LocalDiskStore"]


class MemoryStore(StorageBackend):
    """Thread-safe in-memory object store."""

    def __init__(self, location: str = "local") -> None:
        super().__init__()
        self.location = location
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def put(self, key: str, data: bytes) -> None:
        data = bytes(data)
        with self._lock:
            self._objects[key] = data
        self.stats.record_put(len(data))

    def get(self, key: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        with self._lock:
            try:
                obj = self._objects[key]
            except KeyError:
                raise KeyError(key) from None
        nbytes = self._check_range(key, len(obj), offset, nbytes)
        out = obj[offset : offset + nbytes]
        self.stats.record_get(len(out))
        return out

    def size(self, key: str) -> int:
        with self._lock:
            try:
                return len(self._objects[key])
            except KeyError:
                raise KeyError(key) from None

    def list_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._objects)

    def delete(self, key: str) -> None:
        with self._lock:
            try:
                del self._objects[key]
            except KeyError:
                raise KeyError(key) from None


class LocalDiskStore(StorageBackend):
    """Filesystem-backed store rooted at a directory.

    Keys map to file paths under ``root``; nested keys ("a/b.bin") create
    subdirectories.  Paths escaping the root are rejected.
    """

    def __init__(self, root: str, location: str = "local") -> None:
        super().__init__()
        self.location = location
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        path = os.path.abspath(os.path.join(self.root, key))
        if not path.startswith(self.root + os.sep):
            raise ValueError(f"key {key!r} escapes store root")
        return path

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        self.stats.record_put(len(data))

    def get(self, key: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        path = self._path(key)
        try:
            total = os.path.getsize(path)
        except OSError:
            raise KeyError(key) from None
        nbytes = self._check_range(key, total, offset, nbytes)
        with open(path, "rb") as fh:
            fh.seek(offset)
            out = fh.read(nbytes)
        self.stats.record_get(len(out))
        return out

    def size(self, key: str) -> int:
        try:
            return os.path.getsize(self._path(key))
        except OSError:
            raise KeyError(key) from None

    def list_keys(self) -> list[str]:
        keys = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fn in filenames:
                if fn.endswith(".tmp"):
                    continue
                full = os.path.join(dirpath, fn)
                keys.append(os.path.relpath(full, self.root))
        return sorted(k.replace(os.sep, "/") for k in keys)

    def delete(self, key: str) -> None:
        try:
            os.remove(self._path(key))
        except OSError:
            raise KeyError(key) from None
