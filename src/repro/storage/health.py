"""Store health tracking: latency EWMAs, circuit breakers, hedge policy.

A bursting deployment reads the same dataset through paths with wildly
different reliability: the local storage node rarely fails, the WAN link
to S3 stalls and times out routinely.  Retrying a dead store wastes the
retry budget; hammering a stalled one turns a latency blip into a run
stall.  This module gives the fetch path the two signals it needs to do
better when chunks carry replicas:

* :class:`StoreHealth` -- one store's rolling view: a latency EWMA fed
  by every completed fetch and an error-rate EWMA fed by every outcome,
  driving a closed / open / half-open **circuit breaker**
  (:class:`BreakerPolicy`).  Consecutive failures or a high error rate
  open the breaker; after a cooldown it admits a limited number of
  half-open probes, and enough probe successes close it again.  All
  transitions are counted, so a run can prove its breakers fired.
* :class:`HealthRegistry` -- the per-run map ``location -> StoreHealth``
  shared by every cluster's fetchers and by the head scheduler.  It
  orders replica sources (healthy before half-open before open, faster
  EWMA first) and reports the set of open locations so the scheduler
  can deprioritize chunks stranded behind them.
* :class:`HedgePolicy` -- when to launch a **hedged fetch**: if the
  fetch of a chunk exceeds ``multiplier`` times the store's latency EWMA
  (floored at ``min_threshold_s``), the same range is requested from the
  next replica and the first result wins.

The clock is injectable so breaker cooldown tests never sleep.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "BreakerPolicy",
    "HedgePolicy",
    "StoreHealth",
    "HealthRegistry",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: EWMA smoothing factor for latency and error-rate tracking.
EWMA_ALPHA = 0.2


def _parse_kv(text: str, fields: dict[str, tuple[str, type]], what: str) -> dict:
    """Shared ``k=v,k=v`` parser for the policy CLI string forms."""
    kwargs: dict = {}
    for pair in filter(None, (p.strip() for p in text.split(","))):
        k, sep, v = pair.partition("=")
        if not sep or k.strip() not in fields:
            raise ValueError(
                f"malformed {what} option {pair!r} "
                f"(expected one of {sorted(fields)})"
            )
        field, conv = fields[k.strip()]
        kwargs[field] = conv(v.strip())
    return kwargs


@dataclass(frozen=True)
class BreakerPolicy:
    """When a store's circuit breaker opens, cools down, and closes.

    The breaker opens when ``fail_threshold`` consecutive failures land
    *or* the error-rate EWMA exceeds ``error_rate`` (whichever first).
    After ``recovery_s`` it admits up to ``probes`` concurrent half-open
    probe fetches; ``close_after`` probe successes close it, any probe
    failure re-opens it (restarting the cooldown).

    String form (for ``--breaker``)::

        fails=3,recovery=1.0,probes=1,close=1,error=0.5
    """

    fail_threshold: int = 3
    recovery_s: float = 1.0
    probes: int = 1
    close_after: int = 1
    error_rate: float = 0.75

    def __post_init__(self) -> None:
        if self.fail_threshold <= 0:
            raise ValueError("fail_threshold must be positive")
        if self.recovery_s <= 0:
            raise ValueError("recovery_s must be positive")
        if self.probes <= 0:
            raise ValueError("probes must be positive")
        if self.close_after <= 0:
            raise ValueError("close_after must be positive")
        if not 0.0 < self.error_rate <= 1.0:
            raise ValueError("error_rate must be in (0, 1]")

    _FIELDS = {
        "fails": ("fail_threshold", int),
        "recovery": ("recovery_s", float),
        "probes": ("probes", int),
        "close": ("close_after", int),
        "error": ("error_rate", float),
    }

    @classmethod
    def parse(cls, text: str) -> "BreakerPolicy":
        """Parse the CLI string form (empty string = defaults)."""
        return cls(**_parse_kv(text, cls._FIELDS, "breaker"))


@dataclass(frozen=True)
class HedgePolicy:
    """When to launch a duplicate fetch against another replica.

    A fetch still in flight after ``multiplier`` times the store's
    latency EWMA (never less than ``min_threshold_s``; before the EWMA
    warms up the floor alone applies) is *hedged*: the same chunk is
    requested from up to ``max_hedges`` further replicas and the first
    successful result wins, the losers being cancelled or absorbed.

    String form (for ``--hedge``)::

        mult=3,min=0.05,max=1
    """

    multiplier: float = 3.0
    min_threshold_s: float = 0.05
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if self.min_threshold_s <= 0:
            raise ValueError("min_threshold_s must be positive")
        if self.max_hedges <= 0:
            raise ValueError("max_hedges must be positive")

    _FIELDS = {
        "mult": ("multiplier", float),
        "min": ("min_threshold_s", float),
        "max": ("max_hedges", int),
    }

    @classmethod
    def parse(cls, text: str) -> "HedgePolicy":
        """Parse the CLI string form (empty string = defaults)."""
        return cls(**_parse_kv(text, cls._FIELDS, "hedge"))

    def threshold_s(self, latency_ewma_s: float) -> float:
        """Hedge trigger for a store currently averaging that latency."""
        return max(self.min_threshold_s, self.multiplier * latency_ewma_s)


class StoreHealth:
    """Rolling health of one store: latency/error EWMAs plus a breaker.

    Thread-safe; every method may be called concurrently from all of a
    run's fetch threads.  With ``policy=None`` the health record still
    tracks EWMAs (used for replica ordering and hedge thresholds) but
    the breaker never opens.
    """

    def __init__(
        self,
        location: str,
        policy: BreakerPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.location = location
        self.policy = policy
        self.clock = clock
        self.latency_ewma_s = 0.0
        self.error_ewma = 0.0
        self.n_successes = 0
        self.n_failures = 0
        # Breaker transition counters (the proof the ladder's top rung
        # fired): closed->open, open->half-open, half-open->closed.
        self.n_opened = 0
        self.n_half_opened = 0
        self.n_closed = 0
        self.n_rejected = 0  # fetches skipped because the breaker was open
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probe_successes = 0
        self._lock = threading.Lock()

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current breaker state, advancing open -> half-open on cooldown."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == BREAKER_OPEN
            and self.policy is not None
            and self.clock() - self._opened_at >= self.policy.recovery_s
        ):
            self._state = BREAKER_HALF_OPEN
            self._probe_successes = 0
            self._probes_inflight = 0
            self.n_half_opened += 1
        return self._state

    def order_rank(self) -> int:
        """Sort key for replica ordering: closed < half-open < open."""
        return {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}[
            self.state
        ]

    def allow(self) -> bool:
        """May a fetch be sent to this store right now?

        Closed always allows.  Open rejects (counted) until the cooldown
        elapses; half-open admits at most ``policy.probes`` concurrent
        probe fetches.  Callers holding a granted half-open probe must
        report the outcome via :meth:`record_success` /
        :meth:`record_failure` (which release the probe slot).
        """
        with self._lock:
            state = self._state_locked()
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_HALF_OPEN:
                assert self.policy is not None
                if self._probes_inflight < self.policy.probes:
                    self._probes_inflight += 1
                    return True
            self.n_rejected += 1
            return False

    # -- outcome recording ---------------------------------------------------

    def record_success(self, latency_s: float | None = None) -> None:
        """One fetch from this store completed in ``latency_s`` seconds.

        ``None`` records the success (resetting failure streaks and
        releasing any half-open probe slot) without a latency sample --
        used for cache hits, which never touched the store's wire.
        """
        with self._lock:
            self.n_successes += 1
            self._consecutive_failures = 0
            if latency_s is not None:
                if self.latency_ewma_s == 0.0:
                    self.latency_ewma_s = latency_s
                else:
                    self.latency_ewma_s += EWMA_ALPHA * (
                        latency_s - self.latency_ewma_s
                    )
            self.error_ewma *= 1.0 - EWMA_ALPHA
            if self._state_locked() == BREAKER_HALF_OPEN:
                assert self.policy is not None
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.policy.close_after:
                    self._state = BREAKER_CLOSED
                    self.n_closed += 1

    def record_failure(self) -> None:
        """One fetch from this store failed past its retry policy."""
        with self._lock:
            self.n_failures += 1
            self._consecutive_failures += 1
            self.error_ewma += EWMA_ALPHA * (1.0 - self.error_ewma)
            if self.policy is None:
                return
            state = self._state_locked()
            if state == BREAKER_HALF_OPEN:
                # The probe failed: straight back to open, new cooldown.
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._open_locked()
            elif state == BREAKER_CLOSED and (
                self._consecutive_failures >= self.policy.fail_threshold
                or self.error_ewma >= self.policy.error_rate
            ):
                self._open_locked()

    def _open_locked(self) -> None:
        self._state = BREAKER_OPEN
        self._opened_at = self.clock()
        self._consecutive_failures = 0
        self.n_opened += 1

    def snapshot(self) -> dict:
        """Counters and state for stats rollup (JSON-friendly)."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "latency_ewma_ms": round(self.latency_ewma_s * 1e3, 3),
                "error_ewma": round(self.error_ewma, 4),
                "n_successes": self.n_successes,
                "n_failures": self.n_failures,
                "n_opened": self.n_opened,
                "n_half_opened": self.n_half_opened,
                "n_closed": self.n_closed,
                "n_rejected": self.n_rejected,
            }


class HealthRegistry:
    """Per-run map of store location -> :class:`StoreHealth`.

    One registry is shared by every cluster's fetchers (and handed to
    the head scheduler), so all observations of a store pool into one
    breaker -- a store that died for one cluster is dead for all.
    """

    def __init__(
        self,
        breaker: BreakerPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.breaker = breaker
        self.clock = clock
        self._stores: dict[str, StoreHealth] = {}
        self._lock = threading.Lock()

    def health(self, location: str) -> StoreHealth:
        with self._lock:
            h = self._stores.get(location)
            if h is None:
                h = StoreHealth(location, self.breaker, self.clock)
                self._stores[location] = h
            return h

    def record_success(self, location: str, latency_s: float | None = None) -> None:
        self.health(location).record_success(latency_s)

    def record_failure(self, location: str) -> None:
        self.health(location).record_failure()

    def order(self, locations: list[str]) -> list[str]:
        """Locations sorted healthiest-first.

        Sorts by breaker state rank only (closed < half-open < open);
        the sort is stable, so among equally-healthy stores the input
        order -- primary placement first -- is preserved.  Latency is
        deliberately *not* a sort key: routing every fetch to the
        momentarily-fastest store would defeat the placement's locality
        and pile all load on one replica.  Slowness is handled by the
        hedge policy (whose threshold does use the latency EWMA), not
        by abandoning the primary.
        """
        return sorted(locations, key=lambda loc: self.health(loc).order_rank())

    def open_locations(self) -> set[str]:
        """Locations whose breaker is currently open (not half-open)."""
        with self._lock:
            stores = list(self._stores.values())
        return {h.location for h in stores if h.state == BREAKER_OPEN}

    def snapshot(self) -> dict[str, dict]:
        """Per-location health snapshots, for ``RunStats.breakers``."""
        with self._lock:
            stores = dict(self._stores)
        return {loc: h.snapshot() for loc, h in sorted(stores.items())}

    @property
    def n_transitions(self) -> int:
        """Total breaker transitions across every store."""
        with self._lock:
            stores = list(self._stores.values())
        return sum(h.n_opened + h.n_half_opened + h.n_closed for h in stores)
