"""Bandwidth shaping for the threaded (real-execution) path.

The simulated S3 store throttles reads with two mechanisms that mirror
the measured behaviour of the real service circa the paper:

* a **per-connection rate cap** -- one GET stream cannot exceed a fixed
  throughput, which is why slaves retrieve each chunk "using multiple
  retrieval threads";
* an **aggregate token bucket** shared by all connections -- total
  service bandwidth is finite, so concurrent readers contend.

Both are implemented against an injectable clock so tests can run on
virtual time.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Callable

__all__ = ["Clock", "TokenBucket", "RateCap"]


class Clock:
    """Wall clock with injectable time/sleep, for deterministic tests."""

    def __init__(
        self,
        now: Callable[[], float] = _time.monotonic,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        self.now = now
        self.sleep = sleep


class FakeClock(Clock):
    """Virtual clock: ``sleep`` advances time instantly.

    Not thread-accurate (concurrent sleepers serialize), but sufficient
    for unit-testing shaping arithmetic without real delays.
    """

    def __init__(self) -> None:
        self._t = 0.0
        self._lock = threading.Lock()
        super().__init__(now=self._now, sleep=self._sleep)

    def _now(self) -> float:
        with self._lock:
            return self._t

    def _sleep(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot sleep a negative duration")
        with self._lock:
            self._t += dt


class TokenBucket:
    """Thread-safe token bucket metering aggregate bytes per second.

    ``acquire(n)`` reserves ``n`` tokens and returns the duration the
    caller should sleep before proceeding, implementing a fluid
    approximation of fair sharing: concurrent acquirers are serialized in
    arrival order and each pushes the virtual availability time forward.
    """

    def __init__(self, rate: float, clock: Clock | None = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.clock = clock or Clock()
        self._available_at = self.clock.now()
        self._lock = threading.Lock()

    def acquire(self, nbytes: int) -> float:
        """Reserve capacity for ``nbytes``; return seconds to wait."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        duration = nbytes / self.rate
        with self._lock:
            now = self.clock.now()
            start = max(now, self._available_at)
            self._available_at = start + duration
            return max(0.0, self._available_at - now)

    def throttle(self, nbytes: int) -> float:
        """Acquire and sleep; returns the time actually waited."""
        wait = self.acquire(nbytes)
        if wait > 0:
            self.clock.sleep(wait)
        return wait


class RateCap:
    """Stateless per-connection cap: time to move ``nbytes`` at ``rate``."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)

    def duration(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.rate
