"""Chunk compression codecs for the WAN transfer layer.

Inter-cluster bandwidth is the scarcest resource in the bursting setup,
so the data organizer can write cloud-resident chunks *pre-compressed*
and the fetch path ships the encoded bytes over the (simulated) WAN,
decoding after reassembly.  Every encoded chunk is a self-describing
**frame** so any worker can decode any chunk regardless of the
producer's settings:

    +-------+---------+----------+------------+------------------+---------+
    | magic | version | codec id | unit       | logical size     | payload |
    | b"RC" | u8      | u8       | stride u32 | u64              | ...     |
    +-------+---------+----------+------------+------------------+---------+

Registered codecs:

``identity``
    No transform; the frame only adds the 16-byte header.  Baseline and
    escape hatch for incompressible data.
``zlib``
    Plain DEFLATE (always available, stdlib).
``lz4``
    LZ4 frame compression -- *optional* dependency.  When the ``lz4``
    package is absent, :func:`resolve_codec` falls back to ``zlib`` for
    encoding; decoding an lz4 frame without the package raises
    :class:`CodecError` (the bytes cannot be recovered locally).
``shuffle``
    Format-aware byte shuffle + DEFLATE, Blosc-style: the fixed-stride
    unit stream (stride = ``RecordFormat.unit_nbytes``) is byte-
    transposed so that the k-th byte of every unit becomes contiguous,
    then deflated.  Numeric data (int64 token ids, float64 coordinates)
    is mostly high-order zero bytes; transposing turns them into long
    runs that DEFLATE collapses.  This is where chunked numeric data
    actually compresses.

All corruption -- bad magic, unknown codec, truncated payload, size
mismatch after decode -- surfaces as a clean :class:`CodecError` rather
than garbage units.

Zero-copy contract: both directions accept any bytes-like buffer
(``bytes``, ``bytearray``, ``memoryview``, shared-memory pages) without
an intermediate ``bytes()`` materialization, and :func:`decode_chunk`
returns a **read-only view over the input frame** for the identity
codec -- the only copies on the decode path are the ones the transform
itself requires (inflate, byte un-transpose).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

try:  # optional dependency; the container may not ship it
    import lz4.frame as _lz4frame
except ImportError:  # pragma: no cover - exercised on lz4-less CI legs
    _lz4frame = None

__all__ = [
    "CodecError",
    "Codec",
    "CODECS",
    "CODEC_NAMES",
    "Buffer",
    "encode_chunk",
    "decode_chunk",
    "frame_info",
    "resolve_codec",
    "lz4_available",
]

#: Any contiguous bytes-like object the codec layer moves around.
Buffer = bytes | bytearray | memoryview

_MAGIC = b"RC"
_VERSION = 1
# magic(2) version(1) codec_id(1) stride(4) logical_nbytes(8)
_HEADER = struct.Struct("<2sBBIQ")
HEADER_NBYTES = _HEADER.size


class CodecError(Exception):
    """An encoded chunk frame is invalid, corrupt, or undecodable here."""


def lz4_available() -> bool:
    """True when the optional ``lz4`` package is importable."""
    return _lz4frame is not None


def _shuffle_bytes(raw: Buffer, stride: int) -> bytes:
    """Byte-transpose the stride-aligned prefix of ``raw``; tail kept raw.

    The transpose is the one copy this transform is (it rewrites the
    byte order); no other materialization happens.
    """
    view = memoryview(raw)
    n_units = view.nbytes // stride
    head = n_units * stride
    arr = np.frombuffer(view, dtype=np.uint8, count=head)
    shuffled = arr.reshape(n_units, stride).T.tobytes()
    return shuffled + bytes(view[head:])


def _unshuffle_bytes(raw: Buffer, stride: int) -> bytes:
    view = memoryview(raw)
    n_units = view.nbytes // stride
    head = n_units * stride
    arr = np.frombuffer(view, dtype=np.uint8, count=head)
    unshuffled = arr.reshape(stride, n_units).T.tobytes()
    return unshuffled + bytes(view[head:])


class Codec:
    """One registered transform: raw chunk bytes <-> wire payload.

    ``compress``/``decompress`` accept any bytes-like buffer and may
    return a view over it (the identity codec does); only transforms
    that rewrite bytes are allowed to allocate.
    """

    name = "identity"
    codec_id = 0

    def compress(self, raw: Buffer, stride: int) -> Buffer:
        return raw

    def decompress(self, payload: Buffer, stride: int) -> Buffer:
        return payload


class _ZlibCodec(Codec):
    name = "zlib"
    codec_id = 1

    def compress(self, raw: Buffer, stride: int) -> Buffer:
        return zlib.compress(raw, level=6)

    def decompress(self, payload: Buffer, stride: int) -> Buffer:
        try:
            return zlib.decompress(payload)
        except zlib.error as exc:
            raise CodecError(f"zlib payload corrupt: {exc}") from exc


class _Lz4Codec(Codec):
    name = "lz4"
    codec_id = 2

    def compress(self, raw: Buffer, stride: int) -> Buffer:
        if _lz4frame is None:  # pragma: no cover - encode side is gated
            raise CodecError("lz4 codec requires the optional lz4 package")
        return _lz4frame.compress(bytes(raw) if isinstance(raw, memoryview) else raw)

    def decompress(self, payload: Buffer, stride: int) -> Buffer:
        if _lz4frame is None:
            raise CodecError(
                "chunk was encoded with lz4 but the lz4 package is not installed"
            )
        try:
            return _lz4frame.decompress(
                bytes(payload) if isinstance(payload, memoryview) else payload
            )
        except RuntimeError as exc:  # pragma: no cover - needs lz4
            raise CodecError(f"lz4 payload corrupt: {exc}") from exc


class _ShuffleCodec(Codec):
    name = "shuffle"
    codec_id = 3

    def compress(self, raw: Buffer, stride: int) -> Buffer:
        if stride > 1 and memoryview(raw).nbytes:
            raw = _shuffle_bytes(raw, stride)
        return zlib.compress(raw, level=6)

    def decompress(self, payload: Buffer, stride: int) -> Buffer:
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise CodecError(f"shuffle payload corrupt: {exc}") from exc
        if stride > 1 and raw:
            return _unshuffle_bytes(raw, stride)
        return raw


CODECS: dict[str, Codec] = {
    c.name: c for c in (Codec(), _ZlibCodec(), _Lz4Codec(), _ShuffleCodec())
}
CODEC_NAMES = tuple(CODECS)
_BY_ID: dict[int, Codec] = {c.codec_id: c for c in CODECS.values()}


def resolve_codec(name: str) -> Codec:
    """Look up a codec for *encoding*, applying the lz4 -> zlib fallback.

    Raises ``ValueError`` (not :class:`CodecError`) for unknown names so
    CLI/config typos fail loudly at setup time rather than at decode.
    """
    if name not in CODECS:
        raise ValueError(
            f"unknown codec {name!r}; choose from {', '.join(CODEC_NAMES)}"
        )
    if name == "lz4" and not lz4_available():
        return CODECS["zlib"]
    return CODECS[name]


def encode_chunk(raw: Buffer, codec: str | Codec, unit_nbytes: int = 1) -> bytes:
    """Encode raw chunk bytes into a self-describing frame.

    ``unit_nbytes`` is the fixed record stride used by the shuffle
    transform; it is recorded in the header so decode needs no index.
    ``raw`` may be any bytes-like buffer and is compressed in place --
    the only allocation is the output frame itself (header + payload
    are necessarily one new contiguous object).
    """
    c = resolve_codec(codec) if isinstance(codec, str) else codec
    stride = max(1, int(unit_nbytes))
    logical = memoryview(raw).nbytes
    payload = c.compress(raw, stride)
    header = _HEADER.pack(_MAGIC, _VERSION, c.codec_id, stride, logical)
    return b"".join((header, payload))


def frame_info(frame: Buffer) -> tuple[str, int, int]:
    """Parse a frame header -> ``(codec_name, unit_stride, logical_nbytes)``."""
    if memoryview(frame).nbytes < HEADER_NBYTES:
        raise CodecError(
            f"frame of {memoryview(frame).nbytes} bytes is shorter than "
            f"the {HEADER_NBYTES}-byte header"
        )
    magic, version, codec_id, stride, logical = _HEADER.unpack_from(frame)
    if magic != _MAGIC:
        raise CodecError(f"bad frame magic {magic!r}")
    if version != _VERSION:
        raise CodecError(f"unsupported frame version {version}")
    codec = _BY_ID.get(codec_id)
    if codec is None:
        raise CodecError(f"unknown codec id {codec_id}")
    return codec.name, stride, logical


def decode_chunk(frame: Buffer) -> Buffer:
    """Decode one frame back into the chunk's logical bytes.

    Zero-copy where the transform allows: the payload is sliced off the
    frame as a ``memoryview`` (never re-materialized), and the identity
    codec returns a **read-only view aliasing the input buffer** -- for
    a frame mapped from shared memory the decoded bytes are the mapped
    pages themselves.  Transforms that must rewrite bytes (zlib, lz4,
    shuffle) return the one buffer their inflate produces.
    """
    name, stride, logical = frame_info(frame)
    codec = CODECS[name]
    payload = memoryview(frame).cast("B")[HEADER_NBYTES:]
    raw = codec.decompress(payload, stride)
    if isinstance(raw, memoryview):
        raw = raw.toreadonly()
    n = memoryview(raw).nbytes
    if n != logical:
        raise CodecError(
            f"decoded {n} bytes but frame declares {logical} logical bytes"
        )
    return raw
