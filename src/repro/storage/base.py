"""Storage backend interface.

Both the local cluster's storage node and the cloud object store expose
the same minimal API: whole-object ``put`` and ranged ``get``.  Ranged
reads matter because one job is a byte range (a chunk) of a larger file,
and remote jobs are "retrieved in chunks" via range requests.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field

__all__ = ["StorageStats", "StorageBackend"]


@dataclass
class StorageStats:
    """Counters a backend maintains about the traffic it served."""

    n_puts: int = 0
    n_gets: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    # Fault-path counters: retries the fetch layer issued against this
    # backend, bytes those retries re-requested, and errors that
    # surfaced past the retry policy (gave up or not retryable).
    n_errors: int = 0
    n_retries: int = 0
    bytes_retried: int = 0
    # Attempts abandoned by a per-attempt timeout: the attempt thread
    # was left running (bounded by the retry layer's AbandonGuard) and
    # its result discarded.
    n_abandoned: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_put(self, nbytes: int) -> None:
        with self._lock:
            self.n_puts += 1
            self.bytes_written += nbytes

    def record_get(self, nbytes: int) -> None:
        with self._lock:
            self.n_gets += 1
            self.bytes_read += nbytes

    def record_retry(self, nbytes: int) -> None:
        with self._lock:
            self.n_retries += 1
            self.bytes_retried += nbytes

    def record_error(self) -> None:
        with self._lock:
            self.n_errors += 1

    def record_abandoned(self) -> None:
        with self._lock:
            self.n_abandoned += 1


class StorageBackend(abc.ABC):
    """Abstract object store holding named byte blobs.

    Concrete backends must be safe for concurrent ``get`` from multiple
    threads (slaves use several retrieval threads per chunk).
    """

    #: Site label ("local", "cloud", ...) used for locality decisions.
    location: str = "local"

    def __init__(self) -> None:
        self.stats = StorageStats()

    @abc.abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, replacing any existing object."""

    @abc.abstractmethod
    def get(self, key: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        """Read ``nbytes`` bytes of object ``key`` starting at ``offset``.

        ``nbytes=None`` reads to the end of the object.  Reading past the
        end raises ``ValueError``; a missing key raises ``KeyError``.
        """

    @abc.abstractmethod
    def size(self, key: str) -> int:
        """Size in bytes of object ``key`` (``KeyError`` if missing)."""

    @abc.abstractmethod
    def list_keys(self) -> list[str]:
        """All object keys, sorted."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove object ``key`` (``KeyError`` if missing)."""

    def exists(self, key: str) -> bool:
        try:
            self.size(key)
            return True
        except KeyError:
            return False

    def _check_range(self, key: str, total: int, offset: int, nbytes: int | None) -> int:
        """Validate a range request; returns the resolved byte count."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if nbytes is None:
            nbytes = total - offset
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        if offset + nbytes > total:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) exceeds size {total} of {key!r}"
            )
        return nbytes
