"""Cross-iteration chunk cache.

Iterative applications (k-means, PageRank) run many passes over the
*same* distributed dataset, and every pass of the naive runtime re-pays
the remote-retrieval cost for every S3-resident chunk.  Cutting that
repeated inter-site movement is the point of this cache (compare
Meta-MapReduce's "avoid moving the same data twice" argument): the first
pass fetches a chunk once, later passes hit memory.

:class:`ChunkCache` is a byte-budgeted, thread-safe LRU keyed by the
full identity of a ranged read -- ``(location, key, offset, nbytes)`` --
so distinct sub-ranges of one object never alias.  It maintains
hit/miss/eviction counters that the engines surface in their run stats.

Zero-copy contract: the cache *owns* each inserted buffer (callers hand
over freshly fetched bytes and never mutate them afterwards), and
:meth:`get` hands out **read-only memoryviews** over the stored entry
rather than copies -- a hit costs no allocation, and downstream decode
(``np.frombuffer``) aliases the cached bytes directly.

The discrete-event simulator reuses the same class for its cache-policy
model; since the simulator never materializes bytes, ``put`` accepts an
explicit ``charge_nbytes`` so a placeholder value can be charged at the
chunk's true size (keeping eviction behaviour identical to a real run).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["ChunkCache"]

#: A cache key: (location, object key, offset, nbytes).
CacheKey = tuple[str, str, int, int]


class ChunkCache:
    """Byte-budgeted, thread-safe LRU over chunk byte ranges."""

    def __init__(self, capacity_nbytes: int) -> None:
        if capacity_nbytes <= 0:
            raise ValueError("capacity_nbytes must be positive")
        self.capacity_nbytes = int(capacity_nbytes)
        self._entries: "OrderedDict[CacheKey, tuple[bytes | bytearray | memoryview, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self.current_nbytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Puts skipped because the value alone exceeds the byte budget.
        self.rejected = 0

    # -- core operations -----------------------------------------------------

    def get(
        self, location: str, key: str, offset: int, nbytes: int
    ) -> memoryview | None:
        """Cached bytes for the range, or ``None`` (counts a hit/miss).

        Hits are handed out as **read-only memoryviews** over the stored
        entry -- no copy.  The view stays valid even if the entry is
        evicted afterwards (eviction drops the cache's reference; the
        view keeps the buffer alive).
        """
        k = (location, key, offset, nbytes)
        with self._lock:
            entry = self._entries.get(k)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(k)
            self.hits += 1
            return memoryview(entry[0]).toreadonly()

    def put(
        self,
        location: str,
        key: str,
        offset: int,
        nbytes: int,
        data: bytes | bytearray | memoryview,
        *,
        charge_nbytes: int | None = None,
    ) -> bool:
        """Insert a range, evicting LRU entries until it fits.

        The cache takes ownership of ``data`` (any bytes-like buffer;
        callers must not mutate it afterwards) -- no defensive copy is
        made.  ``charge_nbytes`` overrides the budgeted size (the
        simulator caches size-only placeholders); it defaults to the
        buffer's byte length.  Returns False when the value exceeds the
        whole budget and was not cached.
        """
        size = (
            memoryview(data).nbytes if charge_nbytes is None else int(charge_nbytes)
        )
        if size < 0:
            raise ValueError("charge_nbytes must be non-negative")
        k = (location, key, offset, nbytes)
        with self._lock:
            if size > self.capacity_nbytes:
                self.rejected += 1
                return False
            old = self._entries.pop(k, None)
            if old is not None:
                self.current_nbytes -= old[1]
            while self.current_nbytes + size > self.capacity_nbytes:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self.current_nbytes -= evicted_size
                self.evictions += 1
            self._entries[k] = (data, size)
            self.current_nbytes += size
            return True

    def contains(self, location: str, key: str, offset: int, nbytes: int) -> bool:
        """Membership probe that does not touch LRU order or counters."""
        with self._lock:
            return (location, key, offset, nbytes) in self._entries

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self.current_nbytes = 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Counters and occupancy as a plain dict (for reports)."""
        with self._lock:
            return {
                "capacity_nbytes": self.capacity_nbytes,
                "current_nbytes": self.current_nbytes,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "hit_rate": round(self.hit_rate, 4),
            }
