"""Multi-threaded ranged retrieval.

"Each slave retrieves jobs using multiple retrieval threads, to
capitalize on the fast network interconnects."  Per-connection caps make
a single GET stream slow; splitting a chunk's byte range across parallel
sub-range GETs recovers the aggregate bandwidth.

On top of the ranged fetch this module provides the two mechanisms of
the engines' data pipeline:

* an optional :class:`~repro.storage.cache.ChunkCache` consulted before
  any store traffic (cross-iteration reuse);
* :meth:`ParallelFetcher.fetch_async`, which runs a whole fetch on a
  background thread so a worker can overlap the retrieval of its *next*
  job with the processing of the current one (double buffering).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass

from repro.storage.autotune import AimdAutotuner
from repro.storage.base import StorageBackend
from repro.storage.cache import ChunkCache
from repro.storage.codecs import Buffer, CodecError, decode_chunk
from repro.storage.faults import PermanentStorageError
from repro.storage.health import HealthRegistry, HedgePolicy
from repro.storage.retry import RetryExhausted, RetryPolicy

__all__ = [
    "split_range",
    "FAILOVER_ERRORS",
    "FetchInfo",
    "PrefetchHandle",
    "ParallelFetcher",
]

#: Errors that exhaust one replica source and send the fetch to the
#: next one.  Anything else (bugs, corruption) still fails fast.
FAILOVER_ERRORS: tuple[type[BaseException], ...] = (
    RetryExhausted,
    PermanentStorageError,
    KeyError,
    ConnectionError,
    TimeoutError,
)

#: Default floor on parallel sub-range size: below this a GET is all
#: request overhead, so ranges are coalesced rather than shattered.
DEFAULT_MIN_PART_NBYTES = 4096


def split_range(
    offset: int, nbytes: int, n_parts: int, min_part_nbytes: int = 0
) -> list[tuple[int, int]]:
    """Split byte range ``[offset, offset+nbytes)`` into ``n_parts`` slices.

    Returns ``(offset, nbytes)`` pairs; sizes differ by at most one byte
    and empty slices are dropped (when ``n_parts > nbytes``).

    ``min_part_nbytes`` puts a floor under the slice size: the part
    count is reduced (coalescing neighbours) until every emitted slice
    holds at least that many bytes -- except when the whole range is
    smaller than the floor, which yields the single full range.
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if min_part_nbytes < 0:
        raise ValueError("min_part_nbytes must be non-negative")
    if min_part_nbytes > 0 and nbytes > 0:
        n_parts = min(n_parts, max(1, nbytes // min_part_nbytes))
    base, extra = divmod(nbytes, n_parts)
    parts: list[tuple[int, int]] = []
    pos = offset
    for i in range(n_parts):
        size = base + (1 if i < extra else 0)
        if size:
            parts.append((pos, size))
        pos += size
    return parts


@dataclass
class FetchInfo:
    """Accounting for one chunk fetch through :meth:`ParallelFetcher.fetch_chunk`.

    ``bytes_wire`` is what actually crossed the store connection (the
    encoded size for compressed chunks, zero on a cache hit);
    ``bytes_logical`` the decoded chunk size handed to the worker;
    ``decode_s`` the frame-decode time, kept separate from fetch time.
    ``n_copies`` counts whole-chunk buffer copies made *after* wire
    reassembly -- codec inflations that materialize new bytes, copies
    into shared-memory segments, cache-hit copies into caller buffers.
    Zero means the fold kernel aliased the fetched (or cached, or
    mapped) bytes directly; the hot-path work drives this to zero for
    the identity codec on every engine.
    """

    cache_hit: bool = False
    bytes_wire: int = 0
    bytes_logical: int = 0
    decode_s: float = 0.0
    n_copies: int = 0
    # Replica-aware retrieval: wall seconds the winning source's fetch
    # took (excluding decode), how many sources failed before it, how
    # many hedged duplicates were launched, and whether a hedge won.
    fetch_s: float = 0.0
    n_failovers: int = 0
    n_hedges: int = 0
    hedge_wins: int = 0
    # Erasure-striped retrieval: how many fragments fed the reassembly
    # (k for a striped chunk, 0 otherwise) and whether reconstruction
    # needed a parity decode (some data fragment lost the race or its
    # store).
    n_fragments: int = 0
    n_parity_decodes: int = 0


class PrefetchHandle:
    """One in-flight asynchronous fetch.

    ``fetch_s`` (wall seconds the fetch spent) and ``cache_hit`` are
    populated by the background thread and are valid once ``done()``
    returns True or ``result()`` has returned.  Chunk-aware prefetches
    (:meth:`ParallelFetcher.fetch_chunk_async`) additionally fill
    ``decode_s`` (frame-decode time, *separate* from ``fetch_s``) and
    the wire/logical byte counts.
    """

    __slots__ = (
        "_future",
        "fetch_s",
        "cache_hit",
        "decode_s",
        "bytes_wire",
        "bytes_logical",
        "n_failovers",
        "n_hedges",
        "hedge_wins",
        "n_fragments",
        "n_parity_decodes",
    )

    def __init__(self) -> None:
        self._future: Future = Future()
        self.fetch_s = 0.0
        self.cache_hit = False
        self.decode_s = 0.0
        self.bytes_wire = 0
        self.bytes_logical = 0
        self.n_failovers = 0
        self.n_hedges = 0
        self.hedge_wins = 0
        self.n_fragments = 0
        self.n_parity_decodes = 0

    def done(self) -> bool:
        return self._future.done()

    def result(self) -> bytes:
        """Block until the fetch completes; re-raises fetch errors."""
        return self._future.result()

    def cancel(self) -> None:
        """Cancel if not started; otherwise absorb the outcome."""
        if not self._future.cancel():
            try:
                self._future.result()
            except BaseException:
                pass


class ParallelFetcher:
    """Fetch byte ranges from a store with ``n_threads`` connections.

    ``cache`` (a shared :class:`ChunkCache`) short-circuits fetches of
    ranges already resident; ``prefetch_workers`` sizes the background
    pool serving :meth:`fetch_async` (lazily created on first use).

    ``retry`` (a :class:`~repro.storage.retry.RetryPolicy`) makes every
    store ``get`` -- including each parallel sub-range -- retry
    transient errors with backoff instead of failing the whole fetch.
    A failing sub-range therefore no longer cancels its siblings unless
    it exhausts the policy.  Retries are counted on the fetcher
    (``n_retries``/``n_giveups``/``bytes_retried``) and mirrored into
    the backend's :class:`~repro.storage.base.StorageStats`.

    Replica-aware retrieval: when chunks carry extra sources
    (:attr:`~repro.data.chunks.ChunkInfo.replicas`) and ``siblings``
    maps the other locations' fetchers, :meth:`fetch_chunk` **fails
    over** to the next replica when a source exhausts its retry policy
    (or is permanently gone), ordering candidates by breaker state and
    latency EWMA when a shared :class:`~repro.storage.health.HealthRegistry`
    is attached, and skipping open-breakered stores while alternatives
    remain.  With a :class:`~repro.storage.health.HedgePolicy` a fetch
    still in flight past the adaptive threshold is duplicated against
    the next replica and the first result wins.
    """

    def __init__(
        self,
        store: StorageBackend,
        n_threads: int = 1,
        *,
        cache: ChunkCache | None = None,
        prefetch_workers: int = 1,
        retry: RetryPolicy | None = None,
        autotune: AimdAutotuner | None = None,
        min_part_nbytes: int = DEFAULT_MIN_PART_NBYTES,
        health: HealthRegistry | None = None,
        hedge: HedgePolicy | None = None,
    ) -> None:
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        if prefetch_workers <= 0:
            raise ValueError("prefetch_workers must be positive")
        self.store = store
        self.n_threads = n_threads
        self.cache = cache
        self.prefetch_workers = prefetch_workers
        self.retry = retry
        self.autotune = autotune
        self.min_part_nbytes = min_part_nbytes
        self.health = health
        self.hedge = hedge
        #: location -> fetcher for the run's other stores; set by
        #: ``make_cluster_fetchers`` so replica sources route to the
        #: fetcher that owns their store (with its own pool/autotuner).
        self.siblings: dict[str, "ParallelFetcher"] = {store.location: self}
        self.n_retries = 0
        self.n_giveups = 0
        self.bytes_retried = 0
        self.bytes_wire = 0
        self.bytes_logical = 0
        self.decode_s = 0.0
        self.n_copies = 0
        self.n_failovers = 0
        self.n_hedges = 0
        self.hedge_wins = 0
        self.n_breaker_skips = 0
        self.n_abandoned = 0
        #: Bytes of losing striped fragments that completed anyway
        #: (fetched but unused); fetcher-level only, rolled up after
        #: close() since losers land after their fetch returns.
        self.fragments_wasted_bytes = 0
        #: per-successful-fetch wall seconds (decode excluded, cache
        #: hits excluded) -- the sample pool for p95 fetch latency.
        self.fetch_latencies: list[float] = []
        self._counter_lock = threading.Lock()
        self._hedge_pool: ThreadPoolExecutor | None = None
        pool_workers = n_threads
        if autotune is not None:
            pool_workers = max(pool_workers, autotune.params.max_parts)
        self._pool = (
            ThreadPoolExecutor(max_workers=pool_workers, thread_name_prefix="fetch")
            if pool_workers > 1
            else None
        )
        self._prefetch_pool: ThreadPoolExecutor | None = None

    def _plan_parts(self, nbytes: int) -> int:
        """Sub-range fan-out for a fetch of ``nbytes`` (adaptive or fixed)."""
        if self.autotune is not None:
            return self.autotune.parts_for(nbytes)
        n = self.n_threads
        if self.min_part_nbytes > 0 and nbytes > 0:
            n = min(n, max(1, nbytes // self.min_part_nbytes))
        return n

    def fetch(self, key: str, offset: int = 0, nbytes: int | None = None) -> Buffer:
        """Retrieve ``[offset, offset+nbytes)`` of ``key``, reassembled in order.

        Returns a bytes-like buffer: ``bytes`` for single-connection
        fetches, a ``bytearray`` assembled in place for parallel ones
        (no join copy), or a read-only ``memoryview`` on a cache hit.
        """
        data, _ = self.fetch_with_info(key, offset, nbytes)
        return data

    def fetch_with_info(
        self, key: str, offset: int = 0, nbytes: int | None = None
    ) -> tuple[Buffer, bool]:
        """Like :meth:`fetch`, also reporting whether the cache served it."""
        if nbytes is None:
            nbytes = self.store.size(key) - offset
        location = self.store.location
        if self.cache is not None:
            cached = self.cache.get(location, key, offset, nbytes)
            if cached is not None:
                return cached, True
        data = self._fetch_direct(key, offset, nbytes)
        if self.cache is not None:
            self.cache.put(location, key, offset, nbytes, data)
        return data, False

    def fetch_chunk(self, chunk) -> tuple[Buffer, FetchInfo]:
        """Fetch one index chunk's *logical* bytes, decoding if encoded.

        ``chunk`` is a :class:`~repro.data.chunks.ChunkInfo`.  For
        chunks the organizer wrote pre-compressed the *encoded* range is
        what travels the wire (sub-range splitting, retries, and the
        cache all operate on encoded bytes -- so the same ``cache_mb``
        budget holds more chunks and a retry re-requests encoded
        ranges); the frame is decoded after reassembly and checked
        against the index's logical size.  Returns the decoded bytes
        plus a :class:`FetchInfo` with wire/logical/decode/copy
        accounting.

        Chunks carrying replica sources route through the failover (and
        optionally hedged) path; single-source chunks take the direct
        path below, with health outcomes still recorded when a registry
        is attached.

        Zero-copy: the returned buffer aliases the fetched (or cached)
        bytes whenever the codec allows -- identity-codec frames decode
        to a read-only view over the frame itself, so ``n_copies`` is 0;
        only transforms that inflate (zlib/lz4/shuffle) materialize one
        new buffer (``n_copies`` 1).
        """
        if getattr(chunk, "fragments", None):
            return self._fetch_chunk_striped(chunk)
        sources = getattr(chunk, "sources", None)
        if sources is None or len(sources) <= 1:
            single = None if sources is None else sources[0]
            t0 = time.monotonic()
            try:
                data, info = self._fetch_chunk_source(chunk, single)
            except FAILOVER_ERRORS:
                if self.health is not None:
                    self.health.record_failure(self.store.location)
                raise
            self._record_win(self.store.location, time.monotonic() - t0, info)
            return data, info
        if self.hedge is not None:
            return self._fetch_chunk_hedged(chunk, list(sources))
        return self._fetch_chunk_failover(chunk, list(sources))

    def _route(self, src) -> "ParallelFetcher":
        """The fetcher owning ``src``'s store (self for the primary)."""
        try:
            return self.siblings[src.location]
        except KeyError:
            raise KeyError(
                f"no fetcher for replica location {src.location!r} "
                f"(have {sorted(self.siblings)})"
            ) from None

    def _order_sources(self, sources: list) -> list:
        """Sources healthiest-first (stable: ties keep primary first)."""
        if self.health is None:
            return sources
        ranked = self.health.order([s.location for s in sources])
        rank = {loc: i for i, loc in enumerate(ranked)}
        return sorted(sources, key=lambda s: rank[s.location])

    def _record_win(self, location: str, fetch_s: float, info: FetchInfo) -> None:
        """Account the winning source's latency and health outcome."""
        latency = max(0.0, fetch_s - info.decode_s)
        info.fetch_s = latency
        if self.health is not None:
            self.health.record_success(
                location, None if info.cache_hit else latency
            )
        if not info.cache_hit:
            with self._counter_lock:
                self.fetch_latencies.append(latency)

    def _fetch_chunk_failover(self, chunk, sources: list) -> tuple[Buffer, FetchInfo]:
        """Try sources in health order until one yields the chunk."""
        sources = self._order_sources(sources)
        last_exc: BaseException | None = None
        failovers = 0
        skips = 0
        for i, src in enumerate(sources):
            remaining = len(sources) - 1 - i
            if (
                self.health is not None
                and remaining > 0  # the last candidate is always attempted
                and not self.health.health(src.location).allow()
            ):
                skips += 1
                continue
            t0 = time.monotonic()
            try:
                data, info = self._route(src)._fetch_chunk_source(chunk, src)
            except FAILOVER_ERRORS as exc:
                last_exc = exc
                if self.health is not None:
                    self.health.record_failure(src.location)
                if remaining > 0:
                    failovers += 1
                continue
            info.n_failovers = failovers
            with self._counter_lock:
                self.n_failovers += failovers
                self.n_breaker_skips += skips
            self._record_win(src.location, time.monotonic() - t0, info)
            return data, info
        with self._counter_lock:
            self.n_breaker_skips += skips
        assert last_exc is not None  # the last source is always attempted
        raise last_exc

    def _hedge_pool_lazy(self) -> ThreadPoolExecutor:
        if self._hedge_pool is None:
            # Legs must never queue behind one another: a stalled
            # primary holding the last slot would block the very
            # duplicate launched to escape it, making hedging *worse*
            # than not hedging.  The executor spawns threads on demand
            # (never while one sits idle), so the generous cap costs
            # nothing on quiet runs.
            self._hedge_pool = ThreadPoolExecutor(
                max_workers=32, thread_name_prefix="hedge"
            )
        return self._hedge_pool

    def _fetch_chunk_hedged(self, chunk, sources: list) -> tuple[Buffer, FetchInfo]:
        """First-result-wins fetch with latency-triggered duplicates.

        The healthiest source is launched first; if it is still in
        flight after the hedge threshold (``multiplier`` x that store's
        latency EWMA, floored), the next source is launched too, up to
        ``max_hedges`` duplicates.  A source that *fails* immediately
        triggers the next launch (failover).  Losing fetches are
        cancelled when still queued, otherwise absorbed by a callback
        that records their health outcome.
        """
        assert self.hedge is not None
        ordered = self._order_sources(sources)
        if self.health is not None and len(ordered) > 1:
            # Put open-breakered stores last without reserving half-open
            # probe slots for launches that may never happen.
            open_locs = self.health.open_locations()
            skipped = [s for s in ordered if s.location in open_locs]
            ordered = [s for s in ordered if s.location not in open_locs] + skipped
            if skipped and len(skipped) < len(sources):
                with self._counter_lock:
                    self.n_breaker_skips += len(skipped)
        pool = self._hedge_pool_lazy()
        health = self.health
        t_start = time.monotonic()

        def task(src):
            fetcher = self._route(src)
            t0 = time.monotonic()
            try:
                data, info = fetcher._fetch_chunk_source(chunk, src)
            except FAILOVER_ERRORS:
                if health is not None:
                    health.record_failure(src.location)
                raise
            elapsed = time.monotonic() - t0
            if health is not None:
                latency = max(0.0, elapsed - info.decode_s)
                health.record_success(
                    src.location, None if info.cache_hit else latency
                )
            return data, info, elapsed

        inflight: dict[Future, object] = {}
        next_i = 0
        launched = 0
        n_hedges = 0
        failovers = 0
        last_exc: BaseException | None = None

        def launch() -> None:
            nonlocal next_i, launched
            src = ordered[next_i]
            next_i += 1
            launched += 1
            inflight[pool.submit(task, src)] = src

        launch()
        while True:
            # Threshold keyed to the oldest in-flight source's EWMA (no
            # health registry -> the policy floor alone applies).
            oldest = next(iter(inflight.values()))
            ewma = (
                self.health.health(oldest.location).latency_ewma_s
                if self.health is not None
                else 0.0
            )
            can_hedge = next_i < len(ordered) and n_hedges < self.hedge.max_hedges
            timeout = self.hedge.threshold_s(ewma) if can_hedge else None
            done, _pending = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            winner: Future | None = None
            for f in done:
                exc = f.exception()
                if exc is None:
                    winner = f
                    break
                if not isinstance(exc, FAILOVER_ERRORS):
                    # Bugs/corruption fail fast; absorb the other legs.
                    for g in inflight:
                        if g is not f and not g.cancel():
                            g.add_done_callback(lambda fut: fut.exception())
                    raise exc
                last_exc = exc
                del inflight[f]
                failovers += 1
            if winner is not None:
                data, info, _elapsed = winner.result()
                win_src = inflight.pop(winner)
                info.n_failovers = failovers
                info.n_hedges = n_hedges
                info.hedge_wins = int(win_src is not ordered[0])
                # Chunk-level latency: from first launch to first result,
                # hedge-wait included (the leg's own elapsed time already
                # fed the per-store EWMA inside ``task``).
                latency = max(0.0, time.monotonic() - t_start - info.decode_s)
                info.fetch_s = latency
                with self._counter_lock:
                    self.n_failovers += failovers
                    self.n_hedges += n_hedges
                    self.hedge_wins += info.hedge_wins
                    if not info.cache_hit:
                        self.fetch_latencies.append(latency)
                for f in inflight:  # absorb the losers
                    if not f.cancel():
                        f.add_done_callback(lambda fut: fut.exception())
                return data, info
            if not inflight and next_i >= len(ordered):
                with self._counter_lock:
                    self.n_failovers += failovers
                    self.n_hedges += n_hedges
                assert last_exc is not None
                raise last_exc
            if not inflight:
                launch()  # pure failover after a failure
            elif done:
                if next_i < len(ordered):
                    launch()  # replace a failed in-flight source
            elif can_hedge:
                n_hedges += 1  # threshold expired: duplicate the range
                launch()

    def _fetch_chunk_striped(self, chunk) -> tuple[Buffer, FetchInfo]:
        """Fastest-k-of-n fetch of an erasure-striped chunk.

        The ``k`` cheapest fragments -- data before parity, then breaker
        rank, so a half-open data store still gets its recovery probe
        and the common case needs no GF decode -- launch immediately on
        the shared hedge pool.  A fragment that *fails* triggers the
        next backup (failover); one still in flight past the
        :class:`HedgePolicy` threshold launches a backup too (hedge, up
        to ``max_hedges``).  The first ``k`` completions win; losers are
        cancelled when still queued, otherwise absorbed by a callback
        that credits their bytes to ``fragments_wasted_bytes``.  The
        winners reassemble into one contiguous buffer
        (:func:`repro.storage.erasure.reassemble`) that feeds the normal
        frame-decode path, so identity-codec chunks still hand the
        worker a view over that single buffer.
        """
        from repro.storage.erasure import ErasureError, reassemble

        k, m = chunk.stripe
        ordered = sorted(chunk.fragments, key=lambda f: f.frag_index)
        skips = 0
        rank: dict[str, int] = {}
        if self.health is not None:
            locs = list(dict.fromkeys(f.location for f in ordered))
            rank = {loc: i for i, loc in enumerate(self.health.order(locs))}
            open_locs = self.health.open_locations()
            healthy = [f for f in ordered if f.location not in open_locs]
            if len(healthy) >= k and len(healthy) < len(ordered):
                # Enough healthy sources: open-breakered stores go last,
                # used only if the healthy ones fail.
                skips = len(ordered) - len(healthy)
                ordered = healthy + [
                    f for f in ordered if f.location in open_locs
                ]
        ordered.sort(
            key=lambda f: (f.frag_index >= k, rank.get(f.location, 0), f.frag_index)
        )
        if len(ordered) < k:
            raise ErasureError(
                f"chunk {chunk.chunk_id}: {len(ordered)} fragments recorded, "
                f"need at least k={k}"
            )
        pool = self._hedge_pool_lazy()
        health = self.health
        t_start = time.monotonic()

        def task(frag):
            fetcher = self._route(frag)
            t0 = time.monotonic()
            try:
                data, hit = fetcher.fetch_with_info(frag.key, 0, frag.nbytes)
            except FAILOVER_ERRORS:
                if health is not None:
                    health.record_failure(frag.location)
                raise
            elapsed = time.monotonic() - t0
            if health is not None:
                health.record_success(frag.location, None if hit else elapsed)
            return data, hit, elapsed

        inflight: dict[Future, object] = {}
        hedge_launched: set[int] = set()
        next_i = 0
        n_hedges = 0
        failovers = 0
        wasted = 0
        last_exc: BaseException | None = None
        wins: dict[int, tuple[Buffer, bool, float]] = {}

        def launch(as_hedge: bool = False) -> None:
            nonlocal next_i
            frag = ordered[next_i]
            next_i += 1
            if as_hedge:
                hedge_launched.add(frag.frag_index)
            inflight[pool.submit(task, frag)] = frag

        def absorb_losers() -> None:
            for f, frag in list(inflight.items()):
                if f.cancel():
                    continue

                def credit(fut, nb=frag.nbytes):
                    if fut.cancelled() or fut.exception() is not None:
                        return
                    with self._counter_lock:
                        self.fragments_wasted_bytes += nb

                f.add_done_callback(credit)

        def flush_counters() -> None:
            with self._counter_lock:
                self.n_failovers += failovers
                self.n_hedges += n_hedges
                self.n_breaker_skips += skips
                self.fragments_wasted_bytes += wasted

        for _ in range(k):
            launch()
        while len(wins) < k:
            ewma = 0.0
            if health is not None:
                # A leg is late relative to what a healthy *sibling*
                # fragment takes, not to its own store's (possibly
                # degraded) history: the stripe completes at the k-th
                # order statistic, so the fastest expected leg sets the
                # clock the laggards are judged against.
                ewma = min(
                    (
                        e
                        for f in ordered
                        if (e := health.health(f.location).latency_ewma_s) > 0.0
                    ),
                    default=0.0,
                )
            can_hedge = (
                self.hedge is not None
                and next_i < len(ordered)
                and n_hedges < self.hedge.max_hedges
            )
            timeout = self.hedge.threshold_s(ewma) if can_hedge else None
            done, _pending = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            for f in done:
                frag = inflight.pop(f)
                exc = f.exception()
                if exc is None:
                    data, hit, elapsed = f.result()
                    if len(wins) < k:
                        wins[frag.frag_index] = (data, hit, elapsed)
                    else:
                        wasted += frag.nbytes
                elif isinstance(exc, FAILOVER_ERRORS):
                    last_exc = exc
                    failovers += 1
                else:
                    absorb_losers()
                    flush_counters()
                    raise exc
            if len(wins) >= k:
                break
            # Backfill failed legs so k completions stay reachable.
            while len(inflight) + len(wins) < k and next_i < len(ordered):
                launch()
            if len(inflight) + len(wins) < k:
                absorb_losers()
                flush_counters()
                if last_exc is not None:
                    raise last_exc
                raise ErasureError(
                    f"chunk {chunk.chunk_id}: ran out of fragment sources "
                    f"with {len(wins)} of {k} fetched"
                )
            if not done and can_hedge:
                n_hedges += 1
                launch(as_hedge=True)
        t_k = time.monotonic()
        absorb_losers()

        info = FetchInfo(bytes_logical=chunk.nbytes)
        info.n_fragments = k
        info.n_failovers = failovers
        info.n_hedges = n_hedges
        info.hedge_wins = int(any(i in hedge_launched for i in wins))
        info.cache_hit = all(hit for _, hit, _ in wins.values())
        info.bytes_wire = sum(
            memoryview(data).nbytes
            for data, hit, _ in wins.values()
            if not hit
        )
        t0 = time.monotonic()
        frame = bytearray(chunk.wire_nbytes)
        _, used_parity = reassemble(
            {i: data for i, (data, _, _) in wins.items()},
            k, m, chunk.wire_nbytes, out=frame,
        )
        info.n_copies += 1  # fragments gathered into one contiguous frame
        info.n_parity_decodes = int(used_parity)
        if chunk.codec is None:
            data_out: Buffer = frame
            info.decode_s = time.monotonic() - t0
        else:
            data_out = decode_chunk(frame)
            info.decode_s = time.monotonic() - t0
            if chunk.codec != "identity":
                info.n_copies += 1  # the inflate materialized new bytes
            n = memoryview(data_out).nbytes
            if n != chunk.nbytes:
                raise CodecError(
                    f"chunk {chunk.chunk_id}: decoded {n} bytes, "
                    f"index says {chunk.nbytes}"
                )
        info.fetch_s = max(0.0, t_k - t_start)
        frag_latencies = [
            elapsed for _, hit, elapsed in wins.values() if not hit
        ]
        with self._counter_lock:
            self.bytes_wire += info.bytes_wire
            self.bytes_logical += info.bytes_logical
            self.decode_s += info.decode_s
            self.n_copies += info.n_copies
            self.n_failovers += failovers
            self.n_hedges += n_hedges
            self.hedge_wins += info.hedge_wins
            self.n_breaker_skips += skips
            self.fragments_wasted_bytes += wasted
            self.fetch_latencies.extend(frag_latencies)
        return data_out, info

    def _fetch_chunk_source(self, chunk, src=None) -> tuple[Buffer, FetchInfo]:
        """Fetch the chunk's bytes from one concrete source (no routing).

        ``src`` (a :class:`~repro.data.chunks.ChunkSource`) overrides the
        key and encoded range; ``None`` means the chunk's own primary.
        Runs on the fetcher owning the source's store.
        """
        key = chunk.key if src is None else src.key
        info = FetchInfo(bytes_logical=chunk.nbytes)
        if chunk.codec is None:
            data, hit = self.fetch_with_info(key, chunk.offset, chunk.nbytes)
            info.cache_hit = hit
            if not hit:
                info.bytes_wire = chunk.nbytes
        else:
            enc_offset = chunk.enc_offset
            enc_nbytes = chunk.enc_nbytes
            if src is not None and src.enc_offset is not None:
                enc_offset = src.enc_offset
            if src is not None and src.enc_nbytes is not None:
                enc_nbytes = src.enc_nbytes
            frame, hit = self.fetch_with_info(key, enc_offset, enc_nbytes)
            info.cache_hit = hit
            if not hit:
                info.bytes_wire = enc_nbytes
            t0 = time.monotonic()
            data = decode_chunk(frame)
            info.decode_s = time.monotonic() - t0
            if chunk.codec != "identity":
                info.n_copies += 1  # the inflate materialized new bytes
            n = memoryview(data).nbytes
            if n != chunk.nbytes:
                raise CodecError(
                    f"chunk {chunk.chunk_id}: decoded {n} bytes, "
                    f"index says {chunk.nbytes}"
                )
        with self._counter_lock:
            self.bytes_wire += info.bytes_wire
            self.bytes_logical += info.bytes_logical
            self.decode_s += info.decode_s
            self.n_copies += info.n_copies
        return data, info

    def _get_with_retry(self, key: str, offset: int, nbytes: int) -> bytes:
        """One store ``get`` under the retry policy, with accounting."""
        if self.retry is None:
            return self.store.get(key, offset, nbytes)

        def on_retry(_exc: BaseException, _attempt: int) -> None:
            with self._counter_lock:
                self.n_retries += 1
                self.bytes_retried += nbytes
            self.store.stats.record_retry(nbytes)

        def on_abandon() -> None:
            with self._counter_lock:
                self.n_abandoned += 1
            self.store.stats.record_abandoned()

        try:
            return self.retry.call(
                lambda: self.store.get(key, offset, nbytes),
                token=f"{key}@{offset}+{nbytes}",
                on_retry=on_retry,
                on_abandon=on_abandon,
            )
        except RetryExhausted:
            with self._counter_lock:
                self.n_giveups += 1
            self.store.stats.record_error()
            raise
        except Exception:
            self.store.stats.record_error()
            raise

    def _fetch_direct(self, key: str, offset: int, nbytes: int) -> Buffer:
        n_parts = self._plan_parts(nbytes)
        t0 = time.monotonic()
        if self._pool is None or n_parts <= 1 or nbytes < n_parts:
            data = self._get_with_retry(key, offset, nbytes)
            if self.autotune is not None:
                self.autotune.record(nbytes, 1, time.monotonic() - t0)
            return data
        # Assemble parallel sub-ranges straight into one preallocated
        # buffer: each part GET writes its slice in place, so the old
        # reassembly ``join`` -- a full extra copy of every parallel
        # fetch -- never happens.
        out = bytearray(nbytes)
        view = memoryview(out)
        parts = split_range(offset, nbytes, n_parts, self.min_part_nbytes)
        futures = [
            self._pool.submit(
                self._get_part_into, key, off, n, view[off - offset : off - offset + n]
            )
            for off, n in parts
        ]
        error: BaseException | None = None
        # Each sub-range retries transient errors internally (when a
        # policy is set), so only an *exhausted or non-retryable* part
        # reaches this collection loop.  Collect in part order so such a
        # failure surfaces the earliest failing sub-range
        # deterministically; once one part fails, cancel the queued
        # siblings and absorb the running ones rather than leaving them
        # racing against the pool shutdown.
        for f in futures:
            if error is not None:
                f.cancel()
                continue
            try:
                f.result()
            except BaseException as exc:
                error = exc
        if error is not None:
            for f in futures:
                if not f.cancelled():
                    try:
                        f.result()
                    except BaseException:
                        pass
            raise error
        if self.autotune is not None:
            self.autotune.record(nbytes, len(parts), time.monotonic() - t0)
        return out

    def fetch_into(
        self, key: str, offset: int, nbytes: int, out
    ) -> tuple[int, FetchInfo]:
        """Fetch a range directly into a writable buffer; returns
        ``(nbytes, FetchInfo)``.

        This is the shared-memory handoff path: ``out`` is typically a
        :class:`~repro.storage.shm.SharedSegment` buffer, and each
        parallel sub-range GET writes into its slice of ``out`` -- the
        reassembly ``join`` (a full extra copy of the chunk) never
        happens.  With a cache attached the cached/evictable value must
        remain an independent buffer, so that path copies once from the
        cache entry into ``out`` (counted in ``FetchInfo.n_copies``).
        """
        view = memoryview(out).cast("B")
        if view.readonly:
            raise ValueError("fetch_into needs a writable buffer")
        if view.nbytes < nbytes:
            raise ValueError(
                f"buffer of {view.nbytes} bytes cannot hold {nbytes}-byte fetch"
            )
        if self.cache is not None:
            # Cache interplay: the cached/evictable entry must outlive
            # the caller's buffer, so reuse the assembled path and copy
            # once from the (new or cached) entry into ``out``.
            data, hit = self.fetch_with_info(key, offset, nbytes)
            view[:nbytes] = data
            info = FetchInfo(
                cache_hit=hit,
                bytes_wire=0 if hit else nbytes,
                bytes_logical=nbytes,
                n_copies=1,
            )
            with self._counter_lock:
                self.bytes_wire += info.bytes_wire
                self.bytes_logical += info.bytes_logical
                self.n_copies += 1
            return nbytes, info
        n_parts = self._plan_parts(nbytes)
        if self._pool is None or n_parts <= 1 or nbytes < n_parts:
            # Single-connection fetch, still straight into the buffer.
            t0 = time.monotonic()
            self._get_part_into(key, offset, nbytes, view[:nbytes])
            if self.autotune is not None:
                self.autotune.record(nbytes, 1, time.monotonic() - t0)
            with self._counter_lock:
                self.bytes_wire += nbytes
                self.bytes_logical += nbytes
            return nbytes, FetchInfo(bytes_wire=nbytes, bytes_logical=nbytes)
        t0 = time.monotonic()
        parts = split_range(offset, nbytes, n_parts, self.min_part_nbytes)
        futures = [
            self._pool.submit(
                self._get_part_into, key, off, n, view[off - offset : off - offset + n]
            )
            for off, n in parts
        ]
        error: BaseException | None = None
        for f in futures:  # same deterministic collection as _fetch_direct
            if error is not None:
                f.cancel()
                continue
            try:
                f.result()
            except BaseException as exc:
                error = exc
        if error is not None:
            for f in futures:
                if not f.cancelled():
                    try:
                        f.result()
                    except BaseException:
                        pass
            raise error
        if self.autotune is not None:
            self.autotune.record(nbytes, len(parts), time.monotonic() - t0)
        with self._counter_lock:
            self.bytes_wire += nbytes
            self.bytes_logical += nbytes
        return nbytes, FetchInfo(bytes_wire=nbytes, bytes_logical=nbytes)

    def _get_part_into(self, key: str, offset: int, nbytes: int, dest) -> None:
        dest[:] = self._get_with_retry(key, offset, nbytes)

    def fetch_async(
        self, key: str, offset: int = 0, nbytes: int | None = None
    ) -> PrefetchHandle:
        """Start a fetch on a background thread and return its handle.

        The handle's ``result()`` blocks until the bytes are available;
        ``fetch_s``/``cache_hit`` record how long the fetch actually ran
        and whether the cache served it, which the engine uses to
        account overlapped (hidden) retrieval time.
        """
        if self._prefetch_pool is None:
            self._prefetch_pool = ThreadPoolExecutor(
                max_workers=self.prefetch_workers, thread_name_prefix="prefetch"
            )
        handle = PrefetchHandle()

        def work() -> None:
            if not handle._future.set_running_or_notify_cancel():
                return
            t0 = time.monotonic()
            try:
                data, hit = self.fetch_with_info(key, offset, nbytes)
            except BaseException as exc:
                handle.fetch_s = time.monotonic() - t0
                handle._future.set_exception(exc)
                return
            handle.fetch_s = time.monotonic() - t0
            handle.cache_hit = hit
            handle._future.set_result(data)

        self._prefetch_pool.submit(work)
        return handle

    def fetch_chunk_async(self, chunk) -> PrefetchHandle:
        """Chunk-aware :meth:`fetch_async`: decodes on the background
        thread and fills the handle's wire/decode accounting, so decode
        time of prefetched chunks is overlapped (and reported) too."""
        if self._prefetch_pool is None:
            self._prefetch_pool = ThreadPoolExecutor(
                max_workers=self.prefetch_workers, thread_name_prefix="prefetch"
            )
        handle = PrefetchHandle()

        def work() -> None:
            if not handle._future.set_running_or_notify_cancel():
                return
            t0 = time.monotonic()
            try:
                data, info = self.fetch_chunk(chunk)
            except BaseException as exc:
                handle.fetch_s = time.monotonic() - t0
                handle._future.set_exception(exc)
                return
            handle.fetch_s = time.monotonic() - t0 - info.decode_s
            handle.cache_hit = info.cache_hit
            handle.decode_s = info.decode_s
            handle.bytes_wire = info.bytes_wire
            handle.bytes_logical = info.bytes_logical
            handle.n_failovers = info.n_failovers
            handle.n_hedges = info.n_hedges
            handle.hedge_wins = info.hedge_wins
            handle.n_fragments = info.n_fragments
            handle.n_parity_decodes = info.n_parity_decodes
            handle._future.set_result(data)

        self._prefetch_pool.submit(work)
        return handle

    def close(self) -> None:
        if self._prefetch_pool is not None:
            self._prefetch_pool.shutdown(wait=True)
            self._prefetch_pool = None
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=True)
            self._hedge_pool = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelFetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
