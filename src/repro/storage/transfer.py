"""Multi-threaded ranged retrieval.

"Each slave retrieves jobs using multiple retrieval threads, to
capitalize on the fast network interconnects."  Per-connection caps make
a single GET stream slow; splitting a chunk's byte range across parallel
sub-range GETs recovers the aggregate bandwidth.

On top of the ranged fetch this module provides the two mechanisms of
the engines' data pipeline:

* an optional :class:`~repro.storage.cache.ChunkCache` consulted before
  any store traffic (cross-iteration reuse);
* :meth:`ParallelFetcher.fetch_async`, which runs a whole fetch on a
  background thread so a worker can overlap the retrieval of its *next*
  job with the processing of the current one (double buffering).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.storage.autotune import AimdAutotuner
from repro.storage.base import StorageBackend
from repro.storage.cache import ChunkCache
from repro.storage.codecs import Buffer, CodecError, decode_chunk
from repro.storage.retry import RetryExhausted, RetryPolicy

__all__ = ["split_range", "FetchInfo", "PrefetchHandle", "ParallelFetcher"]

#: Default floor on parallel sub-range size: below this a GET is all
#: request overhead, so ranges are coalesced rather than shattered.
DEFAULT_MIN_PART_NBYTES = 4096


def split_range(
    offset: int, nbytes: int, n_parts: int, min_part_nbytes: int = 0
) -> list[tuple[int, int]]:
    """Split byte range ``[offset, offset+nbytes)`` into ``n_parts`` slices.

    Returns ``(offset, nbytes)`` pairs; sizes differ by at most one byte
    and empty slices are dropped (when ``n_parts > nbytes``).

    ``min_part_nbytes`` puts a floor under the slice size: the part
    count is reduced (coalescing neighbours) until every emitted slice
    holds at least that many bytes -- except when the whole range is
    smaller than the floor, which yields the single full range.
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if min_part_nbytes < 0:
        raise ValueError("min_part_nbytes must be non-negative")
    if min_part_nbytes > 0 and nbytes > 0:
        n_parts = min(n_parts, max(1, nbytes // min_part_nbytes))
    base, extra = divmod(nbytes, n_parts)
    parts: list[tuple[int, int]] = []
    pos = offset
    for i in range(n_parts):
        size = base + (1 if i < extra else 0)
        if size:
            parts.append((pos, size))
        pos += size
    return parts


@dataclass
class FetchInfo:
    """Accounting for one chunk fetch through :meth:`ParallelFetcher.fetch_chunk`.

    ``bytes_wire`` is what actually crossed the store connection (the
    encoded size for compressed chunks, zero on a cache hit);
    ``bytes_logical`` the decoded chunk size handed to the worker;
    ``decode_s`` the frame-decode time, kept separate from fetch time.
    ``n_copies`` counts whole-chunk buffer copies made *after* wire
    reassembly -- codec inflations that materialize new bytes, copies
    into shared-memory segments, cache-hit copies into caller buffers.
    Zero means the fold kernel aliased the fetched (or cached, or
    mapped) bytes directly; the hot-path work drives this to zero for
    the identity codec on every engine.
    """

    cache_hit: bool = False
    bytes_wire: int = 0
    bytes_logical: int = 0
    decode_s: float = 0.0
    n_copies: int = 0


class PrefetchHandle:
    """One in-flight asynchronous fetch.

    ``fetch_s`` (wall seconds the fetch spent) and ``cache_hit`` are
    populated by the background thread and are valid once ``done()``
    returns True or ``result()`` has returned.  Chunk-aware prefetches
    (:meth:`ParallelFetcher.fetch_chunk_async`) additionally fill
    ``decode_s`` (frame-decode time, *separate* from ``fetch_s``) and
    the wire/logical byte counts.
    """

    __slots__ = ("_future", "fetch_s", "cache_hit", "decode_s", "bytes_wire", "bytes_logical")

    def __init__(self) -> None:
        self._future: Future = Future()
        self.fetch_s = 0.0
        self.cache_hit = False
        self.decode_s = 0.0
        self.bytes_wire = 0
        self.bytes_logical = 0

    def done(self) -> bool:
        return self._future.done()

    def result(self) -> bytes:
        """Block until the fetch completes; re-raises fetch errors."""
        return self._future.result()

    def cancel(self) -> None:
        """Cancel if not started; otherwise absorb the outcome."""
        if not self._future.cancel():
            try:
                self._future.result()
            except BaseException:
                pass


class ParallelFetcher:
    """Fetch byte ranges from a store with ``n_threads`` connections.

    ``cache`` (a shared :class:`ChunkCache`) short-circuits fetches of
    ranges already resident; ``prefetch_workers`` sizes the background
    pool serving :meth:`fetch_async` (lazily created on first use).

    ``retry`` (a :class:`~repro.storage.retry.RetryPolicy`) makes every
    store ``get`` -- including each parallel sub-range -- retry
    transient errors with backoff instead of failing the whole fetch.
    A failing sub-range therefore no longer cancels its siblings unless
    it exhausts the policy.  Retries are counted on the fetcher
    (``n_retries``/``n_giveups``/``bytes_retried``) and mirrored into
    the backend's :class:`~repro.storage.base.StorageStats`.
    """

    def __init__(
        self,
        store: StorageBackend,
        n_threads: int = 1,
        *,
        cache: ChunkCache | None = None,
        prefetch_workers: int = 1,
        retry: RetryPolicy | None = None,
        autotune: AimdAutotuner | None = None,
        min_part_nbytes: int = DEFAULT_MIN_PART_NBYTES,
    ) -> None:
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        if prefetch_workers <= 0:
            raise ValueError("prefetch_workers must be positive")
        self.store = store
        self.n_threads = n_threads
        self.cache = cache
        self.prefetch_workers = prefetch_workers
        self.retry = retry
        self.autotune = autotune
        self.min_part_nbytes = min_part_nbytes
        self.n_retries = 0
        self.n_giveups = 0
        self.bytes_retried = 0
        self.bytes_wire = 0
        self.bytes_logical = 0
        self.decode_s = 0.0
        self.n_copies = 0
        self._counter_lock = threading.Lock()
        pool_workers = n_threads
        if autotune is not None:
            pool_workers = max(pool_workers, autotune.params.max_parts)
        self._pool = (
            ThreadPoolExecutor(max_workers=pool_workers, thread_name_prefix="fetch")
            if pool_workers > 1
            else None
        )
        self._prefetch_pool: ThreadPoolExecutor | None = None

    def _plan_parts(self, nbytes: int) -> int:
        """Sub-range fan-out for a fetch of ``nbytes`` (adaptive or fixed)."""
        if self.autotune is not None:
            return self.autotune.parts_for(nbytes)
        n = self.n_threads
        if self.min_part_nbytes > 0 and nbytes > 0:
            n = min(n, max(1, nbytes // self.min_part_nbytes))
        return n

    def fetch(self, key: str, offset: int = 0, nbytes: int | None = None) -> Buffer:
        """Retrieve ``[offset, offset+nbytes)`` of ``key``, reassembled in order.

        Returns a bytes-like buffer: ``bytes`` for single-connection
        fetches, a ``bytearray`` assembled in place for parallel ones
        (no join copy), or a read-only ``memoryview`` on a cache hit.
        """
        data, _ = self.fetch_with_info(key, offset, nbytes)
        return data

    def fetch_with_info(
        self, key: str, offset: int = 0, nbytes: int | None = None
    ) -> tuple[Buffer, bool]:
        """Like :meth:`fetch`, also reporting whether the cache served it."""
        if nbytes is None:
            nbytes = self.store.size(key) - offset
        location = self.store.location
        if self.cache is not None:
            cached = self.cache.get(location, key, offset, nbytes)
            if cached is not None:
                return cached, True
        data = self._fetch_direct(key, offset, nbytes)
        if self.cache is not None:
            self.cache.put(location, key, offset, nbytes, data)
        return data, False

    def fetch_chunk(self, chunk) -> tuple[Buffer, FetchInfo]:
        """Fetch one index chunk's *logical* bytes, decoding if encoded.

        ``chunk`` is a :class:`~repro.data.chunks.ChunkInfo`.  For
        chunks the organizer wrote pre-compressed the *encoded* range is
        what travels the wire (sub-range splitting, retries, and the
        cache all operate on encoded bytes -- so the same ``cache_mb``
        budget holds more chunks and a retry re-requests encoded
        ranges); the frame is decoded after reassembly and checked
        against the index's logical size.  Returns the decoded bytes
        plus a :class:`FetchInfo` with wire/logical/decode/copy
        accounting.

        Zero-copy: the returned buffer aliases the fetched (or cached)
        bytes whenever the codec allows -- identity-codec frames decode
        to a read-only view over the frame itself, so ``n_copies`` is 0;
        only transforms that inflate (zlib/lz4/shuffle) materialize one
        new buffer (``n_copies`` 1).
        """
        info = FetchInfo(bytes_logical=chunk.nbytes)
        if chunk.codec is None:
            data, hit = self.fetch_with_info(chunk.key, chunk.offset, chunk.nbytes)
            info.cache_hit = hit
            if not hit:
                info.bytes_wire = chunk.nbytes
        else:
            frame, hit = self.fetch_with_info(
                chunk.key, chunk.enc_offset, chunk.enc_nbytes
            )
            info.cache_hit = hit
            if not hit:
                info.bytes_wire = chunk.enc_nbytes
            t0 = time.monotonic()
            data = decode_chunk(frame)
            info.decode_s = time.monotonic() - t0
            if chunk.codec != "identity":
                info.n_copies += 1  # the inflate materialized new bytes
            n = memoryview(data).nbytes
            if n != chunk.nbytes:
                raise CodecError(
                    f"chunk {chunk.chunk_id}: decoded {n} bytes, "
                    f"index says {chunk.nbytes}"
                )
        with self._counter_lock:
            self.bytes_wire += info.bytes_wire
            self.bytes_logical += info.bytes_logical
            self.decode_s += info.decode_s
            self.n_copies += info.n_copies
        return data, info

    def _get_with_retry(self, key: str, offset: int, nbytes: int) -> bytes:
        """One store ``get`` under the retry policy, with accounting."""
        if self.retry is None:
            return self.store.get(key, offset, nbytes)

        def on_retry(_exc: BaseException, _attempt: int) -> None:
            with self._counter_lock:
                self.n_retries += 1
                self.bytes_retried += nbytes
            self.store.stats.record_retry(nbytes)

        try:
            return self.retry.call(
                lambda: self.store.get(key, offset, nbytes),
                token=f"{key}@{offset}+{nbytes}",
                on_retry=on_retry,
            )
        except RetryExhausted:
            with self._counter_lock:
                self.n_giveups += 1
            self.store.stats.record_error()
            raise
        except Exception:
            self.store.stats.record_error()
            raise

    def _fetch_direct(self, key: str, offset: int, nbytes: int) -> Buffer:
        n_parts = self._plan_parts(nbytes)
        t0 = time.monotonic()
        if self._pool is None or n_parts <= 1 or nbytes < n_parts:
            data = self._get_with_retry(key, offset, nbytes)
            if self.autotune is not None:
                self.autotune.record(nbytes, 1, time.monotonic() - t0)
            return data
        # Assemble parallel sub-ranges straight into one preallocated
        # buffer: each part GET writes its slice in place, so the old
        # reassembly ``join`` -- a full extra copy of every parallel
        # fetch -- never happens.
        out = bytearray(nbytes)
        view = memoryview(out)
        parts = split_range(offset, nbytes, n_parts, self.min_part_nbytes)
        futures = [
            self._pool.submit(
                self._get_part_into, key, off, n, view[off - offset : off - offset + n]
            )
            for off, n in parts
        ]
        error: BaseException | None = None
        # Each sub-range retries transient errors internally (when a
        # policy is set), so only an *exhausted or non-retryable* part
        # reaches this collection loop.  Collect in part order so such a
        # failure surfaces the earliest failing sub-range
        # deterministically; once one part fails, cancel the queued
        # siblings and absorb the running ones rather than leaving them
        # racing against the pool shutdown.
        for f in futures:
            if error is not None:
                f.cancel()
                continue
            try:
                f.result()
            except BaseException as exc:
                error = exc
        if error is not None:
            for f in futures:
                if not f.cancelled():
                    try:
                        f.result()
                    except BaseException:
                        pass
            raise error
        if self.autotune is not None:
            self.autotune.record(nbytes, len(parts), time.monotonic() - t0)
        return out

    def fetch_into(
        self, key: str, offset: int, nbytes: int, out
    ) -> tuple[int, FetchInfo]:
        """Fetch a range directly into a writable buffer; returns
        ``(nbytes, FetchInfo)``.

        This is the shared-memory handoff path: ``out`` is typically a
        :class:`~repro.storage.shm.SharedSegment` buffer, and each
        parallel sub-range GET writes into its slice of ``out`` -- the
        reassembly ``join`` (a full extra copy of the chunk) never
        happens.  With a cache attached the cached/evictable value must
        remain an independent buffer, so that path copies once from the
        cache entry into ``out`` (counted in ``FetchInfo.n_copies``).
        """
        view = memoryview(out).cast("B")
        if view.readonly:
            raise ValueError("fetch_into needs a writable buffer")
        if view.nbytes < nbytes:
            raise ValueError(
                f"buffer of {view.nbytes} bytes cannot hold {nbytes}-byte fetch"
            )
        if self.cache is not None:
            # Cache interplay: the cached/evictable entry must outlive
            # the caller's buffer, so reuse the assembled path and copy
            # once from the (new or cached) entry into ``out``.
            data, hit = self.fetch_with_info(key, offset, nbytes)
            view[:nbytes] = data
            info = FetchInfo(
                cache_hit=hit,
                bytes_wire=0 if hit else nbytes,
                bytes_logical=nbytes,
                n_copies=1,
            )
            with self._counter_lock:
                self.bytes_wire += info.bytes_wire
                self.bytes_logical += info.bytes_logical
                self.n_copies += 1
            return nbytes, info
        n_parts = self._plan_parts(nbytes)
        if self._pool is None or n_parts <= 1 or nbytes < n_parts:
            # Single-connection fetch, still straight into the buffer.
            t0 = time.monotonic()
            self._get_part_into(key, offset, nbytes, view[:nbytes])
            if self.autotune is not None:
                self.autotune.record(nbytes, 1, time.monotonic() - t0)
            with self._counter_lock:
                self.bytes_wire += nbytes
                self.bytes_logical += nbytes
            return nbytes, FetchInfo(bytes_wire=nbytes, bytes_logical=nbytes)
        t0 = time.monotonic()
        parts = split_range(offset, nbytes, n_parts, self.min_part_nbytes)
        futures = [
            self._pool.submit(
                self._get_part_into, key, off, n, view[off - offset : off - offset + n]
            )
            for off, n in parts
        ]
        error: BaseException | None = None
        for f in futures:  # same deterministic collection as _fetch_direct
            if error is not None:
                f.cancel()
                continue
            try:
                f.result()
            except BaseException as exc:
                error = exc
        if error is not None:
            for f in futures:
                if not f.cancelled():
                    try:
                        f.result()
                    except BaseException:
                        pass
            raise error
        if self.autotune is not None:
            self.autotune.record(nbytes, len(parts), time.monotonic() - t0)
        with self._counter_lock:
            self.bytes_wire += nbytes
            self.bytes_logical += nbytes
        return nbytes, FetchInfo(bytes_wire=nbytes, bytes_logical=nbytes)

    def _get_part_into(self, key: str, offset: int, nbytes: int, dest) -> None:
        dest[:] = self._get_with_retry(key, offset, nbytes)

    def fetch_async(
        self, key: str, offset: int = 0, nbytes: int | None = None
    ) -> PrefetchHandle:
        """Start a fetch on a background thread and return its handle.

        The handle's ``result()`` blocks until the bytes are available;
        ``fetch_s``/``cache_hit`` record how long the fetch actually ran
        and whether the cache served it, which the engine uses to
        account overlapped (hidden) retrieval time.
        """
        if self._prefetch_pool is None:
            self._prefetch_pool = ThreadPoolExecutor(
                max_workers=self.prefetch_workers, thread_name_prefix="prefetch"
            )
        handle = PrefetchHandle()

        def work() -> None:
            if not handle._future.set_running_or_notify_cancel():
                return
            t0 = time.monotonic()
            try:
                data, hit = self.fetch_with_info(key, offset, nbytes)
            except BaseException as exc:
                handle.fetch_s = time.monotonic() - t0
                handle._future.set_exception(exc)
                return
            handle.fetch_s = time.monotonic() - t0
            handle.cache_hit = hit
            handle._future.set_result(data)

        self._prefetch_pool.submit(work)
        return handle

    def fetch_chunk_async(self, chunk) -> PrefetchHandle:
        """Chunk-aware :meth:`fetch_async`: decodes on the background
        thread and fills the handle's wire/decode accounting, so decode
        time of prefetched chunks is overlapped (and reported) too."""
        if self._prefetch_pool is None:
            self._prefetch_pool = ThreadPoolExecutor(
                max_workers=self.prefetch_workers, thread_name_prefix="prefetch"
            )
        handle = PrefetchHandle()

        def work() -> None:
            if not handle._future.set_running_or_notify_cancel():
                return
            t0 = time.monotonic()
            try:
                data, info = self.fetch_chunk(chunk)
            except BaseException as exc:
                handle.fetch_s = time.monotonic() - t0
                handle._future.set_exception(exc)
                return
            handle.fetch_s = time.monotonic() - t0 - info.decode_s
            handle.cache_hit = info.cache_hit
            handle.decode_s = info.decode_s
            handle.bytes_wire = info.bytes_wire
            handle.bytes_logical = info.bytes_logical
            handle._future.set_result(data)

        self._prefetch_pool.submit(work)
        return handle

    def close(self) -> None:
        if self._prefetch_pool is not None:
            self._prefetch_pool.shutdown(wait=True)
            self._prefetch_pool = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelFetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
