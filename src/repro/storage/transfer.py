"""Multi-threaded ranged retrieval.

"Each slave retrieves jobs using multiple retrieval threads, to
capitalize on the fast network interconnects."  Per-connection caps make
a single GET stream slow; splitting a chunk's byte range across parallel
sub-range GETs recovers the aggregate bandwidth.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.storage.base import StorageBackend

__all__ = ["split_range", "ParallelFetcher"]


def split_range(offset: int, nbytes: int, n_parts: int) -> list[tuple[int, int]]:
    """Split byte range ``[offset, offset+nbytes)`` into ``n_parts`` slices.

    Returns ``(offset, nbytes)`` pairs; sizes differ by at most one byte
    and empty slices are dropped (when ``n_parts > nbytes``).
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    base, extra = divmod(nbytes, n_parts)
    parts: list[tuple[int, int]] = []
    pos = offset
    for i in range(n_parts):
        size = base + (1 if i < extra else 0)
        if size:
            parts.append((pos, size))
        pos += size
    return parts


class ParallelFetcher:
    """Fetch byte ranges from a store with ``n_threads`` connections."""

    def __init__(self, store: StorageBackend, n_threads: int = 1) -> None:
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self.store = store
        self.n_threads = n_threads
        self._pool = (
            ThreadPoolExecutor(max_workers=n_threads, thread_name_prefix="fetch")
            if n_threads > 1
            else None
        )

    def fetch(self, key: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        """Retrieve ``[offset, offset+nbytes)`` of ``key``, reassembled in order."""
        if nbytes is None:
            nbytes = self.store.size(key) - offset
        if self._pool is None or nbytes < self.n_threads:
            return self.store.get(key, offset, nbytes)
        parts = split_range(offset, nbytes, self.n_threads)
        futures = [self._pool.submit(self.store.get, key, off, n) for off, n in parts]
        return b"".join(f.result() for f in futures)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelFetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
