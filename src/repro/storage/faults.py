"""Deterministic fault injection for storage backends.

WAN-separated object stores fail in mundane ways: transient request
errors, objects that become unreadable, latency spikes on a congested
link.  :class:`FaultInjectingStore` wraps any
:class:`~repro.storage.base.StorageBackend` and injects exactly those
faults on the ``get`` path, so the retry/recovery machinery of the live
engine can be exercised end-to-end.

Injection is **fully deterministic given a seed**: every probabilistic
decision is a pure hash of ``(seed, key, offset, attempt)``, never a
draw from shared RNG state.  Thread interleaving therefore cannot change
which fetch attempts fail -- two runs with the same seed inject the same
faults and produce identical retry counters, which is what makes chaos
tests reproducible.

The exception taxonomy drives the retry policy
(:mod:`repro.storage.retry`):

* :class:`TransientStorageError` -- retryable; a later attempt on the
  same range may succeed;
* :class:`PermanentStorageError` -- not retryable; the object is gone
  and every attempt will fail, so callers fail fast;
* :class:`WorkerCrash` -- raised by the engine's crash-injection hook
  (not by stores) to model the loss of a compute worker.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.storage.base import StorageBackend

__all__ = [
    "TransientStorageError",
    "PermanentStorageError",
    "WorkerCrash",
    "seeded_uniform",
    "FaultSpec",
    "FaultInjectingStore",
]


class TransientStorageError(IOError):
    """A request failed in a way that retrying may fix."""


class PermanentStorageError(IOError):
    """A request failed in a way no retry can fix."""


class WorkerCrash(RuntimeError):
    """A compute worker died (injected by the engine's crash plan)."""


def seeded_uniform(seed: int, *parts: object) -> float:
    """Deterministic uniform in ``[0, 1)`` from ``seed`` and ``parts``.

    A pure function of its arguments (blake2b over the rendered parts),
    so concurrent callers get identical values regardless of scheduling
    -- the foundation of reproducible fault injection and jitter.
    """
    text = ":".join([str(seed), *(str(p) for p in parts)])
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultSpec:
    """What faults to inject, parseable from a CLI string.

    ``transient_p`` fails a ``get`` attempt with that probability
    (decided per ``(key, offset, attempt)``, so a retried range rolls a
    fresh, but predetermined, die).  ``permanent_keys`` are substrings:
    any key containing one always raises
    :class:`PermanentStorageError`.  ``latency_p``/``latency_s`` inject
    a fixed-duration sleep before that fraction of requests.
    ``stall_p``/``stall_s`` inject a *seeded-duration* stall: the
    decision **and** the duration are pure hashes of
    ``(seed, key, offset, attempt)``, the duration uniform in
    ``[stall_s/2, stall_s]`` -- so a hedging/breaker test knows exactly
    which requests stall and for how long, per seed.  ``fail_nth``
    fails the listed 1-based global ``get`` call numbers -- a
    call-count schedule for scripted single-threaded tests (under
    concurrency the global call order, unlike the hash-based modes,
    depends on scheduling).

    String form (clauses joined by ``+``)::

        transient:p=0.3,seed=7
        permanent:key=f3
        latency:p=0.1,s=0.05
        stall:p=0.3,s=0.05,seed=5
        transient:nth=3|7
        transient:p=0.2+latency:p=0.1,s=0.01,seed=3
    """

    transient_p: float = 0.0
    permanent_keys: tuple[str, ...] = ()
    latency_p: float = 0.0
    latency_s: float = 0.0
    stall_p: float = 0.0
    stall_s: float = 0.0
    fail_nth: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_p", "latency_p", "stall_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.stall_s < 0:
            raise ValueError("stall_s must be non-negative")
        if any(n <= 0 for n in self.fail_nth):
            raise ValueError("fail_nth entries are 1-based call numbers")

    def stall_duration_s(self, key: str, offset: int, attempt: int) -> float | None:
        """Seeded stall duration for one attempt, or ``None`` (no stall).

        A pure function of ``(seed, key, offset, attempt)``: callers
        (and tests) can predict exactly which requests stall and for how
        long without executing anything.
        """
        if self.stall_p <= 0:
            return None
        if seeded_uniform(self.seed, "s", key, offset, attempt) >= self.stall_p:
            return None
        frac = seeded_uniform(self.seed, "sd", key, offset, attempt)
        return self.stall_s * (0.5 + 0.5 * frac)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI string form (see class docstring)."""
        kwargs: dict = {}
        permanent: list[str] = []
        fail_nth: list[int] = []
        for clause in text.split("+"):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, rest = clause.partition(":")
            kind = kind.strip()
            if kind not in ("transient", "permanent", "latency", "stall"):
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    "(expected transient, permanent, latency, or stall)"
                )
            opts: dict[str, str] = {}
            for pair in filter(None, rest.split(",")):
                k, sep, v = pair.partition("=")
                if not sep:
                    raise ValueError(f"malformed option {pair!r} in {clause!r}")
                opts[k.strip()] = v.strip()
            if "seed" in opts:
                kwargs["seed"] = int(opts.pop("seed"))
            if kind == "transient":
                if "p" in opts:
                    kwargs["transient_p"] = float(opts.pop("p"))
                if "nth" in opts:
                    fail_nth.extend(int(n) for n in opts.pop("nth").split("|"))
            elif kind == "permanent":
                if "key" in opts:
                    permanent.append(opts.pop("key"))
            elif kind == "latency":
                if "p" in opts:
                    kwargs["latency_p"] = float(opts.pop("p"))
                if "s" in opts:
                    kwargs["latency_s"] = float(opts.pop("s"))
            elif kind == "stall":
                if "p" in opts:
                    kwargs["stall_p"] = float(opts.pop("p"))
                if "s" in opts:
                    kwargs["stall_s"] = float(opts.pop("s"))
            if opts:
                raise ValueError(
                    f"unknown option(s) {sorted(opts)} for fault kind {kind!r}"
                )
        return cls(
            permanent_keys=tuple(permanent), fail_nth=tuple(fail_nth), **kwargs
        )


class FaultInjectingStore(StorageBackend):
    """Wraps a backend, injecting the faults described by a spec.

    Only ``get`` is fault-injected (the engines' hot path); writes and
    metadata calls pass straight through.  Injection counters
    (``n_transient``, ``n_permanent``, ``n_latency``, ``n_stall``)
    record what was actually injected, so tests can assert the chaos
    really happened; every counter mutation and
    :meth:`injection_counts` share one lock, so the snapshot is
    consistent under concurrent injection.

    ``sleeper`` is the function used to realize injected latency/stall
    delays (default :func:`time.sleep`); tests substitute a recorder to
    assert seeded stall schedules without wall-clock sleeping.

    ``armed=False`` constructs the injector dormant -- reads pass
    straight through until :meth:`arm` is called.  Drivers use this to
    model a store that fails *after* dataset placement: preparation
    (including replication reads) sees a healthy store, the run does
    not.  :func:`~repro.bursting.driver.run_threaded_bursting` arms any
    store exposing ``arm()`` right before the engine starts.
    """

    def __init__(
        self,
        inner: StorageBackend,
        spec: FaultSpec,
        sleeper: Callable[[float], None] = time.sleep,
        *,
        armed: bool = True,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.spec = spec
        self.sleeper = sleeper
        self.armed = armed
        self.location = inner.location
        self.n_transient = 0
        self.n_permanent = 0
        self.n_latency = 0
        self.n_stall = 0
        self.stalled_s = 0.0
        self._calls = 0
        self._attempts: dict[tuple[str, int], int] = {}
        self._lock = threading.Lock()

    def _next_attempt(self, key: str, offset: int) -> tuple[int, int]:
        with self._lock:
            self._calls += 1
            call_no = self._calls
            attempt = self._attempts.get((key, offset), 0)
            self._attempts[(key, offset)] = attempt + 1
        return call_no, attempt

    def arm(self) -> None:
        """Start injecting faults (no-op when already armed)."""
        self.armed = True

    def disarm(self) -> None:
        """Stop injecting faults; reads pass through untouched."""
        self.armed = False

    def _inject(self, key: str, offset: int) -> None:
        if not self.armed:
            return
        call_no, attempt = self._next_attempt(key, offset)
        for sub in self.spec.permanent_keys:
            if sub in key:
                with self._lock:
                    self.n_permanent += 1
                self.stats.record_error()
                raise PermanentStorageError(
                    f"injected permanent fault: object {key!r} is unreadable"
                )
        if call_no in self.spec.fail_nth:
            with self._lock:
                self.n_transient += 1
            raise TransientStorageError(
                f"injected transient fault (call #{call_no}, {key!r}@{offset})"
            )
        if self.spec.transient_p > 0 and (
            seeded_uniform(self.spec.seed, "t", key, offset, attempt)
            < self.spec.transient_p
        ):
            with self._lock:
                self.n_transient += 1
            raise TransientStorageError(
                f"injected transient fault ({key!r}@{offset}, attempt {attempt})"
            )
        if self.spec.latency_p > 0 and (
            seeded_uniform(self.spec.seed, "l", key, offset, attempt)
            < self.spec.latency_p
        ):
            with self._lock:
                self.n_latency += 1
            if self.spec.latency_s > 0:
                self.sleeper(self.spec.latency_s)
        stall = self.spec.stall_duration_s(key, offset, attempt)
        if stall is not None:
            with self._lock:
                self.n_stall += 1
                self.stalled_s += stall
            self.sleeper(stall)

    # -- StorageBackend ------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        self.inner.put(key, data)
        self.stats.record_put(len(data))

    def get(self, key: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        self._inject(key, offset)
        out = self.inner.get(key, offset, nbytes)
        self.stats.record_get(len(out))
        return out

    def size(self, key: str) -> int:
        return self.inner.size(key)

    def list_keys(self) -> list[str]:
        return self.inner.list_keys()

    def delete(self, key: str) -> None:
        self.inner.delete(key)

    def injection_counts(self) -> dict[str, int]:
        """Consistent snapshot of what has been injected so far.

        Taken under the same lock every injection increments under, so
        concurrent readers never observe a torn multi-counter state.
        """
        with self._lock:
            return {
                "transient": self.n_transient,
                "permanent": self.n_permanent,
                "latency": self.n_latency,
                "stall": self.n_stall,
            }
