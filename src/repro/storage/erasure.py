"""Systematic erasure coding over encoded chunk frames.

A chunk's wire frame is split into ``k`` equal-size data fragments
(zero-padded so the frame length need not divide by ``k``) and extended
with ``m`` parity fragments.  Any ``k`` of the ``k + m`` fragments
reconstruct the frame exactly, so a fetch can race all sources and keep
whichever ``k`` arrive first: tail latency becomes the k-th order
statistic instead of the slowest single source, and storage overhead is
``(k + m) / k`` instead of the ``1 + r`` of full replication.

Two code paths, both pure numpy:

* ``m == 1`` -- single XOR parity (RAID-5 style), vectorised with
  ``np.bitwise_xor``;
* ``m >= 2`` -- a systematic Reed-Solomon code over GF(256) built from a
  Vandermonde matrix ``V`` (points ``0..n-1``, polynomial ``0x11d``) as
  ``G = V @ inv(V[:k])``.  The top ``k`` rows of ``G`` are the identity
  (data fragments are verbatim frame slices) and *any* ``k`` rows are
  invertible, which is the MDS property the fastest-k-of-n fetch relies
  on.  Decoding inverts the ``k x k`` submatrix of surviving rows --
  tiny (``k <= 256``) -- then applies it with table-driven GF
  multiplies over the full fragment width.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

__all__ = ["stripe_frame", "reassemble", "fragment_nbytes", "ErasureError"]

#: Largest supported ``k + m`` (GF(256) has 255 nonzero points plus 0).
MAX_FRAGMENTS = 256


class ErasureError(ValueError):
    """Invalid stripe geometry or insufficient fragments to reassemble."""


# -- GF(256) arithmetic tables (polynomial 0x11d, generator 2) ---------------

_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)


def _build_tables() -> None:
    x = 1
    for i in range(255):
        _EXP[i] = x
        _LOG[x] = i
        x <<= 1
        if x & 0x100:
            x ^= 0x11D
    # Duplicate so exp lookups never need an explicit mod 255.
    _EXP[255:510] = _EXP[:255]


_build_tables()


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return int(_EXP[int(_LOG[a]) + int(_LOG[b])])


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("GF(256) inverse of 0")
    return int(_EXP[255 - int(_LOG[a])])


def _gf_mul_vec(c: int, vec: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``vec`` by the GF scalar ``c``."""
    if c == 0:
        return np.zeros_like(vec)
    if c == 1:
        return vec.copy()
    shift = int(_LOG[c])
    out = _EXP[_LOG[vec.astype(np.int32)] + shift].astype(np.uint8)
    out[vec == 0] = 0
    return out


def _gf_matmul(mat: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """GF(256) matrix product ``mat @ rows`` (mat r x k, rows k x width)."""
    out = np.zeros((mat.shape[0], rows.shape[1]), dtype=np.uint8)
    for i in range(mat.shape[0]):
        acc = np.zeros(rows.shape[1], dtype=np.uint8)
        for j in range(mat.shape[1]):
            c = int(mat[i, j])
            if c == 0:
                continue
            acc ^= _gf_mul_vec(c, rows[j])
        out[i] = acc
    return out


def _gf_inv_matrix(mat: np.ndarray) -> np.ndarray:
    """Invert a k x k GF(256) matrix via Gauss-Jordan elimination."""
    k = mat.shape[0]
    aug = np.concatenate(
        [mat.astype(np.uint8), np.eye(k, dtype=np.uint8)], axis=1
    )
    for col in range(k):
        pivot = next(
            (r for r in range(col, k) if aug[r, col] != 0), None
        )
        if pivot is None:
            raise ErasureError("singular fragment matrix (duplicate rows?)")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv = _gf_inv(int(aug[col, col]))
        aug[col] = _gf_mul_vec(inv, aug[col])
        for r in range(k):
            if r != col and aug[r, col] != 0:
                aug[r] ^= _gf_mul_vec(int(aug[r, col]), aug[col])
    return aug[:, k:]


def _generator_matrix(k: int, m: int) -> np.ndarray:
    """Systematic MDS generator: ``G = V @ inv(V[:k])`` for Vandermonde V.

    The plain Vandermonde points ``0..n-1`` are distinct, so every k x k
    submatrix of V is invertible; right-multiplying by ``inv(V[:k])``
    makes the top k rows the identity while preserving that property.
    """
    n = k + m
    v = np.zeros((n, k), dtype=np.uint8)
    for i in range(n):
        acc = 1
        for j in range(k):
            v[i, j] = acc
            acc = _gf_mul(acc, i)
    top_inv = _gf_inv_matrix(v[:k])
    return _gf_matmul(v, np.ascontiguousarray(top_inv))


_GEN_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _generator(k: int, m: int) -> np.ndarray:
    key = (k, m)
    g = _GEN_CACHE.get(key)
    if g is None:
        g = _GEN_CACHE[key] = _generator_matrix(k, m)
    return g


# -- public API --------------------------------------------------------------


def _check_geometry(k: int, m: int) -> None:
    if k < 1:
        raise ErasureError(f"stripe needs k >= 1 data fragments, got k={k}")
    if m < 0:
        raise ErasureError(f"stripe needs m >= 0 parity fragments, got m={m}")
    if k + m > MAX_FRAGMENTS:
        raise ErasureError(
            f"stripe width k+m={k + m} exceeds GF(256) limit {MAX_FRAGMENTS}"
        )


def fragment_nbytes(frame_nbytes: int, k: int) -> int:
    """Size of each fragment: the frame split k ways, rounded up."""
    if frame_nbytes <= 0:
        raise ErasureError(f"frame must be non-empty, got {frame_nbytes} bytes")
    return -(-frame_nbytes // k)


def stripe_frame(frame: bytes | bytearray | memoryview, k: int, m: int) -> list[bytes]:
    """Split ``frame`` into ``k`` data + ``m`` parity fragments.

    Fragments are equal-size (``ceil(len(frame) / k)``); the last data
    fragment is zero-padded.  Fragment ``i < k`` is the verbatim frame
    slice (systematic code), fragments ``k..k+m-1`` are parity.
    """
    _check_geometry(k, m)
    view = memoryview(frame)
    frame_nbytes = view.nbytes
    frag = fragment_nbytes(frame_nbytes, k)
    data = np.zeros((k, frag), dtype=np.uint8)
    flat = np.frombuffer(view, dtype=np.uint8)
    data.reshape(-1)[:frame_nbytes] = flat
    fragments = [data[i].tobytes() for i in range(k)]
    if m == 0:
        return fragments
    if m == 1:
        fragments.append(np.bitwise_xor.reduce(data, axis=0).tobytes())
        return fragments
    parity = _gf_matmul(_generator(k, m)[k:], data)
    fragments.extend(parity[i].tobytes() for i in range(m))
    return fragments


def reassemble(
    fragments: Mapping[int, bytes | bytearray | memoryview],
    k: int,
    m: int,
    frame_nbytes: int,
    out: bytearray | memoryview | None = None,
) -> tuple[bytearray | memoryview, bool]:
    """Rebuild the original frame from any ``k`` fragments.

    ``fragments`` maps fragment index (``0..k+m-1``) to its bytes.  At
    least ``k`` distinct indices must be present; extras are ignored
    (the ``k`` lowest indices are preferred, which keeps the common
    all-data case on the pure-copy path).  Returns ``(buffer,
    used_parity)`` where ``buffer`` is ``out`` if given (must hold
    ``frame_nbytes``) else a fresh ``bytearray``, and ``used_parity``
    says whether a GF/XOR decode was needed.
    """
    _check_geometry(k, m)
    if frame_nbytes <= 0:
        raise ErasureError(f"frame must be non-empty, got {frame_nbytes} bytes")
    frag = fragment_nbytes(frame_nbytes, k)
    have = sorted(i for i in fragments if 0 <= i < k + m)
    if len(have) < k:
        raise ErasureError(
            f"need {k} fragments to reassemble, have {len(have)} of {k + m}"
        )
    use = have[:k]
    for i in use:
        if memoryview(fragments[i]).nbytes != frag:
            raise ErasureError(
                f"fragment {i} is {memoryview(fragments[i]).nbytes} bytes, "
                f"expected {frag}"
            )
    if out is None:
        out = bytearray(frame_nbytes)
    dst = memoryview(out)
    if dst.nbytes != frame_nbytes:
        raise ErasureError(
            f"output buffer is {dst.nbytes} bytes, expected {frame_nbytes}"
        )

    used_parity = use[-1] >= k
    if not used_parity:
        # All data fragments present: straight concatenation.
        pos = 0
        for i in use:
            take = min(frag, frame_nbytes - pos)
            dst[pos : pos + take] = memoryview(fragments[i])[:take]
            pos += take
        return out, False

    rows = np.empty((k, frag), dtype=np.uint8)
    for r, i in enumerate(use):
        rows[r] = np.frombuffer(fragments[i], dtype=np.uint8)
    missing = [i for i in range(k) if i not in set(use)]
    if m == 1:
        # XOR parity: the one missing data fragment is the XOR of the rest.
        (lost,) = missing
        recovered = np.bitwise_xor.reduce(rows, axis=0)
        data = np.empty((k, frag), dtype=np.uint8)
        for r, i in enumerate(use):
            if i < k:
                data[i] = rows[r]
        data[lost] = recovered
    else:
        sub = _generator(k, m)[use]  # k x k rows of G that we hold
        data = _gf_matmul(_gf_inv_matrix(sub), rows)
    flat = data.reshape(-1)[:frame_nbytes]
    dst[:] = flat.tobytes()
    return out, True
