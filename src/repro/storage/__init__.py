"""Storage substrates: local disk/memory stores and a simulated S3."""

from repro.storage.base import StorageBackend, StorageStats
from repro.storage.bandwidth import Clock, RateCap, TokenBucket
from repro.storage.cache import ChunkCache
from repro.storage.faults import (
    FaultInjectingStore,
    FaultSpec,
    PermanentStorageError,
    TransientStorageError,
    WorkerCrash,
)
from repro.storage.local import LocalDiskStore, MemoryStore
from repro.storage.retry import RetryExhausted, RetryPolicy
from repro.storage.s3 import S3Profile, SimulatedS3Store
from repro.storage.shm import SharedSegment, SharedSegmentPool, attach_segment
from repro.storage.transfer import ParallelFetcher, PrefetchHandle, split_range

__all__ = [
    "StorageBackend",
    "StorageStats",
    "ChunkCache",
    "Clock",
    "RateCap",
    "TokenBucket",
    "FaultInjectingStore",
    "FaultSpec",
    "PermanentStorageError",
    "TransientStorageError",
    "WorkerCrash",
    "RetryExhausted",
    "RetryPolicy",
    "LocalDiskStore",
    "MemoryStore",
    "S3Profile",
    "SimulatedS3Store",
    "SharedSegment",
    "SharedSegmentPool",
    "attach_segment",
    "ParallelFetcher",
    "PrefetchHandle",
    "split_range",
]
