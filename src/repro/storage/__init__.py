"""Storage substrates: local disk/memory stores and a simulated S3."""

from repro.storage.autotune import AimdAutotuner, AutotuneParams
from repro.storage.base import StorageBackend, StorageStats
from repro.storage.bandwidth import Clock, RateCap, TokenBucket
from repro.storage.cache import ChunkCache
from repro.storage.codecs import (
    CODEC_NAMES,
    CodecError,
    decode_chunk,
    encode_chunk,
    frame_info,
    lz4_available,
    resolve_codec,
)
from repro.storage.faults import (
    FaultInjectingStore,
    FaultSpec,
    PermanentStorageError,
    TransientStorageError,
    WorkerCrash,
)
from repro.storage.health import (
    BreakerPolicy,
    HealthRegistry,
    HedgePolicy,
    StoreHealth,
)
from repro.storage.local import LocalDiskStore, MemoryStore
from repro.storage.retry import AbandonGuard, RetryExhausted, RetryPolicy
from repro.storage.s3 import S3Profile, SimulatedS3Store
from repro.storage.shm import SharedSegment, SharedSegmentPool, attach_segment
from repro.storage.transfer import (
    DEFAULT_MIN_PART_NBYTES,
    FAILOVER_ERRORS,
    FetchInfo,
    ParallelFetcher,
    PrefetchHandle,
    split_range,
)

__all__ = [
    "AimdAutotuner",
    "AutotuneParams",
    "StorageBackend",
    "StorageStats",
    "ChunkCache",
    "CODEC_NAMES",
    "CodecError",
    "decode_chunk",
    "encode_chunk",
    "frame_info",
    "lz4_available",
    "resolve_codec",
    "Clock",
    "RateCap",
    "TokenBucket",
    "FaultInjectingStore",
    "FaultSpec",
    "PermanentStorageError",
    "TransientStorageError",
    "WorkerCrash",
    "AbandonGuard",
    "RetryExhausted",
    "RetryPolicy",
    "BreakerPolicy",
    "HedgePolicy",
    "HealthRegistry",
    "StoreHealth",
    "LocalDiskStore",
    "MemoryStore",
    "S3Profile",
    "SimulatedS3Store",
    "SharedSegment",
    "SharedSegmentPool",
    "attach_segment",
    "DEFAULT_MIN_PART_NBYTES",
    "FAILOVER_ERRORS",
    "FetchInfo",
    "ParallelFetcher",
    "PrefetchHandle",
    "split_range",
]
