"""Simulated cloud object store (Amazon S3 stand-in).

The paper stores the remote fraction of each dataset in S3 and retrieves
it with ranged GETs.  We reproduce the service's performance envelope:

* fixed **request latency** per GET/PUT;
* a **per-connection throughput cap** (single-stream GETs are slow, so
  multi-threaded retrieval pays off -- the paper's env-cloud retrieval
  beating env-local depends on this);
* a shared **aggregate bandwidth** across all concurrent connections.

Functionally it is just an object store (delegating to any inner
backend), so the threaded middleware runs real data through it; the
delays are only injected when a shaping profile is configured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.base import StorageBackend
from repro.storage.bandwidth import Clock, RateCap, TokenBucket
from repro.storage.local import MemoryStore

__all__ = ["S3Profile", "SimulatedS3Store"]


@dataclass(frozen=True)
class S3Profile:
    """Performance envelope of the simulated service.

    Rates are bytes/second.  ``None`` disables that mechanism.
    """

    request_latency_s: float = 0.0
    per_connection_bw: float | None = None
    aggregate_bw: float | None = None

    @classmethod
    def unthrottled(cls) -> "S3Profile":
        return cls()


class SimulatedS3Store(StorageBackend):
    """Object store wrapper injecting S3-like latency and throughput."""

    def __init__(
        self,
        inner: StorageBackend | None = None,
        profile: S3Profile = S3Profile.unthrottled(),
        clock: Clock | None = None,
        location: str = "cloud",
    ) -> None:
        super().__init__()
        self.location = location
        self.inner = inner if inner is not None else MemoryStore(location=location)
        self.profile = profile
        self.clock = clock or Clock()
        self._per_conn = (
            RateCap(profile.per_connection_bw)
            if profile.per_connection_bw is not None
            else None
        )
        self._aggregate = (
            TokenBucket(profile.aggregate_bw, self.clock)
            if profile.aggregate_bw is not None
            else None
        )

    def _delay(self, nbytes: int) -> None:
        wait = self.profile.request_latency_s
        if self._per_conn is not None:
            wait += self._per_conn.duration(nbytes)
        if wait > 0:
            self.clock.sleep(wait)
        if self._aggregate is not None:
            self._aggregate.throttle(nbytes)

    def put(self, key: str, data: bytes) -> None:
        self._delay(len(data))
        self.inner.put(key, data)
        self.stats.record_put(len(data))

    def get(self, key: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        out = self.inner.get(key, offset, nbytes)
        self._delay(len(out))
        self.stats.record_get(len(out))
        return out

    def size(self, key: str) -> int:
        return self.inner.size(key)

    def list_keys(self) -> list[str]:
        return self.inner.list_keys()

    def delete(self, key: str) -> None:
        self._delay(0)
        self.inner.delete(key)
