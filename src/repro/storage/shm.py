"""Shared-memory segments for cross-process data handoff.

The process engine moves chunk bytes and reduction-object payloads
between the parent (which owns the stores) and its worker processes
through POSIX shared memory: the parent writes fetched bytes into a
segment once, and a worker maps the same physical pages and decodes
them with a zero-copy ``np.frombuffer`` -- no per-chunk pickling through
a pipe, no second copy of the payload.

Lifecycle discipline -- the part that actually matters:

* **only the parent creates and unlinks segments.**  Workers attach and
  close.  This keeps every ``/dev/shm`` entry owned by exactly one
  process, so a single :class:`SharedSegmentPool` can assert at the end
  of a run that nothing leaked, and the multiprocessing resource
  tracker never has to clean up after us (its "leaked shared_memory
  objects" warning is the symptom this module is designed to prevent);
* ``unlink`` is independent of ``close``: removing the ``/dev/shm``
  name succeeds even while mappings are still open, and the memory is
  returned once the last mapping drops.  :meth:`SharedSegment.release`
  therefore always unlinks, and tolerates a still-exported buffer view
  by deferring only the local ``close``.
"""

from __future__ import annotations

import os
import threading
from multiprocessing import shared_memory

__all__ = ["SharedSegment", "SharedSegmentPool", "attach_segment", "close_quietly"]


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment by name (worker side).

    The caller must ``close()`` the returned object when done -- and
    must *not* ``unlink()`` it; the creating process owns the name.
    """
    return shared_memory.SharedMemory(name=name)


def close_quietly(shm: shared_memory.SharedMemory) -> None:
    """Close a mapping even while numpy views still alias it.

    ``SharedMemory.close`` raises ``BufferError`` when any exported view
    is alive (CPython bpo-39959), and -- worse -- ``__del__`` retries the
    close and spams the same error at garbage collection.  When that
    happens we abandon the mapping to the surviving views instead: the
    ``mmap`` object unmaps itself when the last view dies, the fd is
    closed here, and the neutralized object's ``__del__`` has nothing
    left to re-raise on.

    ``_buf``/``_mmap``/``_fd`` are CPython implementation privates; every
    touch is guarded so an interpreter that renames them degrades to a
    plain (possibly noisy-at-GC) close rather than an ``AttributeError``
    on this cleanup path.
    """
    try:
        shm.close()
    except BufferError:
        if hasattr(shm, "_buf"):
            shm._buf = None
        if hasattr(shm, "_mmap"):
            shm._mmap = None  # the last surviving view's destructor unmaps
        fd = getattr(shm, "_fd", -1)
        if isinstance(fd, int) and fd >= 0:
            os.close(fd)
            shm._fd = -1


class SharedSegment:
    """One parent-owned shared-memory block."""

    __slots__ = ("shm", "nbytes", "_released")

    def __init__(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
        # The kernel may round the mapping up to a page; remember the
        # requested size so views never expose trailing slack.
        self.nbytes = nbytes
        self._released = False

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self) -> memoryview:
        """Writable view of exactly the requested bytes."""
        return memoryview(self.shm.buf)[: self.nbytes]

    def write(self, data) -> int:
        """Copy ``data`` (bytes-like) into the segment from offset 0."""
        view = memoryview(data).cast("B")
        if view.nbytes > self.nbytes:
            raise ValueError(
                f"data of {view.nbytes} bytes exceeds segment size {self.nbytes}"
            )
        self.shm.buf[: view.nbytes] = view
        return view.nbytes

    def release(self) -> None:
        """Unlink the ``/dev/shm`` name and drop this mapping.

        Safe to call more than once.  If a numpy view over the buffer is
        still alive the local ``close`` is skipped (the mapping is freed
        when the view goes away), but the name is removed regardless --
        unlink is what prevents a leak.
        """
        if self._released:
            return
        self._released = True
        close_quietly(self.shm)
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class SharedSegmentPool:
    """Tracks every live segment of one engine run.

    All creation goes through :meth:`create` and all cleanup through
    :meth:`release` / :meth:`close_all`, so the engine can both verify
    clean teardown (``active_count == 0``) and guarantee it on error
    paths (``close_all`` in a ``finally``).
    """

    def __init__(self) -> None:
        self._segments: dict[str, SharedSegment] = {}
        self._lock = threading.Lock()
        self.created = 0
        self.bytes_through = 0

    def create(self, nbytes: int) -> SharedSegment:
        seg = SharedSegment(nbytes)
        with self._lock:
            self._segments[seg.name] = seg
            self.created += 1
            self.bytes_through += nbytes
        return seg

    def release(self, seg: SharedSegment) -> None:
        with self._lock:
            self._segments.pop(seg.name, None)
        seg.release()

    def close_all(self) -> None:
        """Release everything still live (error-path safety net)."""
        with self._lock:
            leftovers = list(self._segments.values())
            self._segments.clear()
        for seg in leftovers:
            seg.release()

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def active_names(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)
