"""Retry policy for the fetch path: exponential backoff with full jitter.

Transient errors are the norm on a WAN fetch path, and the cheapest
recovery is to retry the failed range -- not to cancel the whole fetch,
and certainly not to abort the run.  :class:`RetryPolicy` encodes the
standard discipline (exponential backoff, full jitter, a per-attempt
timeout, and an overall deadline) as a small immutable value threaded
through :class:`~repro.storage.transfer.ParallelFetcher` and the
engines.

Jitter is deterministic: each delay is a pure hash of
``(seed, token, attempt)`` (see
:func:`~repro.storage.faults.seeded_uniform`), so a seeded chaos run
replays exactly, backoff included.

Only *retryable* errors are retried: :class:`TransientStorageError`,
``ConnectionError``, and ``TimeoutError``.  Anything else --
``KeyError`` for a missing object,
:class:`~repro.storage.faults.PermanentStorageError` for a dead one --
propagates immediately, because retrying a deterministic failure only
delays the inevitable.  When retries run out,
:class:`RetryExhausted` wraps the last error so callers can tell a
gave-up fetch from a fail-fast one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.storage.faults import TransientStorageError, seeded_uniform

__all__ = ["RETRYABLE_ERRORS", "RetryExhausted", "RetryPolicy"]

#: Error types a retry may fix.  Everything else fails fast.
RETRYABLE_ERRORS = (TransientStorageError, ConnectionError, TimeoutError)


class RetryExhausted(IOError):
    """A retryable operation kept failing past the policy's limits."""

    def __init__(self, message: str, last_error: BaseException, attempts: int):
        super().__init__(message)
        self.last_error = last_error
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff discipline for one logical operation.

    ``max_attempts`` bounds tries (first call included);
    ``base_delay_s``/``max_delay_s`` shape the exponential backoff,
    with *full jitter*: the ``n``-th delay is uniform in
    ``[0, min(max_delay_s, base_delay_s * 2**n))``.  ``deadline_s``
    caps the total elapsed time across attempts, and
    ``attempt_timeout_s`` (optional) bounds one attempt -- a stuck call
    is abandoned on a daemon thread and counted as a retryable timeout.

    String form (for ``--retry``)::

        max=5,base=0.01,cap=1.0,deadline=30,timeout=2,seed=0
    """

    max_attempts: int = 5
    base_delay_s: float = 0.01
    max_delay_s: float = 1.0
    deadline_s: float | None = 30.0
    attempt_timeout_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive (or None)")

    _FIELDS = {
        "max": ("max_attempts", int),
        "base": ("base_delay_s", float),
        "cap": ("max_delay_s", float),
        "deadline": ("deadline_s", float),
        "timeout": ("attempt_timeout_s", float),
        "seed": ("seed", int),
    }

    @classmethod
    def parse(cls, text: str) -> "RetryPolicy":
        """Parse the CLI string form (see class docstring)."""
        kwargs: dict = {}
        for pair in filter(None, (p.strip() for p in text.split(","))):
            k, sep, v = pair.partition("=")
            if not sep or k.strip() not in cls._FIELDS:
                raise ValueError(
                    f"malformed retry option {pair!r} "
                    f"(expected one of {sorted(cls._FIELDS)})"
                )
            field, conv = cls._FIELDS[k.strip()]
            kwargs[field] = None if v.strip() == "none" else conv(v)
        return cls(**kwargs)

    def backoff_s(self, attempt: int, token: str = "") -> float:
        """Full-jitter delay before retry number ``attempt`` (1-based)."""
        ceiling = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
        return seeded_uniform(self.seed, "backoff", token, attempt) * ceiling

    def _attempt(self, fn: Callable[[], bytes]):
        if self.attempt_timeout_s is None:
            return fn()
        box: dict = {}

        def runner() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:
                box["error"] = exc

        th = threading.Thread(target=runner, daemon=True)
        th.start()
        th.join(self.attempt_timeout_s)
        if th.is_alive():
            # The attempt is abandoned (its thread keeps running to
            # completion but nobody consumes the result).
            raise TimeoutError(
                f"attempt exceeded per-attempt timeout {self.attempt_timeout_s}s"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def call(
        self,
        fn: Callable[[], bytes],
        *,
        token: str = "",
        on_retry: Callable[[BaseException, int], None] | None = None,
    ):
        """Run ``fn`` under this policy, returning its result.

        ``token`` namespaces the deterministic jitter (use the range
        being fetched).  ``on_retry(error, attempt)`` is invoked before
        each backoff sleep -- the accounting hook.  Raises
        :class:`RetryExhausted` when attempts or the deadline run out,
        chaining the last underlying error.
        """
        t0 = time.monotonic()
        attempt = 0
        while True:
            try:
                return self._attempt(fn)
            except RETRYABLE_ERRORS as exc:
                attempt += 1
                if attempt >= self.max_attempts:
                    raise RetryExhausted(
                        f"gave up after {attempt} attempts ({token or 'op'}): {exc}",
                        exc, attempt,
                    ) from exc
                delay = self.backoff_s(attempt, token)
                elapsed = time.monotonic() - t0
                if self.deadline_s is not None and elapsed + delay >= self.deadline_s:
                    raise RetryExhausted(
                        f"retry deadline {self.deadline_s}s exceeded after "
                        f"{attempt} attempts ({token or 'op'}): {exc}",
                        exc, attempt,
                    ) from exc
                if on_retry is not None:
                    on_retry(exc, attempt)
                if delay > 0:
                    time.sleep(delay)
