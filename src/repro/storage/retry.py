"""Retry policy for the fetch path: exponential backoff with full jitter.

Transient errors are the norm on a WAN fetch path, and the cheapest
recovery is to retry the failed range -- not to cancel the whole fetch,
and certainly not to abort the run.  :class:`RetryPolicy` encodes the
standard discipline (exponential backoff, full jitter, a per-attempt
timeout, and an overall deadline) as a small immutable value threaded
through :class:`~repro.storage.transfer.ParallelFetcher` and the
engines.

Jitter is deterministic: each delay is a pure hash of
``(seed, token, attempt)`` (see
:func:`~repro.storage.faults.seeded_uniform`), so a seeded chaos run
replays exactly, backoff included.

Only *retryable* errors are retried: :class:`TransientStorageError`,
``ConnectionError``, and ``TimeoutError``.  Anything else --
``KeyError`` for a missing object,
:class:`~repro.storage.faults.PermanentStorageError` for a dead one --
propagates immediately, because retrying a deterministic failure only
delays the inevitable.  When retries run out,
:class:`RetryExhausted` wraps the last error so callers can tell a
gave-up fetch from a fail-fast one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.storage.faults import TransientStorageError, seeded_uniform

__all__ = ["RETRYABLE_ERRORS", "RetryExhausted", "RetryPolicy", "AbandonGuard"]

#: Error types a retry may fix.  Everything else fails fast.
RETRYABLE_ERRORS = (TransientStorageError, ConnectionError, TimeoutError)

#: Default cap on attempt threads abandoned by per-attempt timeouts
#: that are still running.  Hitting the cap back-pressures new
#: timeout-guarded attempts instead of accumulating stuck threads.
DEFAULT_MAX_ABANDONED = 32


class AbandonGuard:
    """Bounds the number of live abandoned attempt threads.

    A per-attempt timeout abandons a stuck call: its daemon thread keeps
    running until the underlying operation returns, but nobody consumes
    the result.  Unbounded, a pathological store (every call hangs
    forever) would leak one thread per attempt.  The guard admits a new
    timeout-guarded attempt only while fewer than ``max_abandoned``
    abandoned threads are still live, blocking (briefly) otherwise --
    back-pressure instead of leak.

    One process-wide instance (:data:`_ABANDON_GUARD`) serves every
    :class:`RetryPolicy`; tests may swap it for a smaller one.
    """

    def __init__(self, max_abandoned: int = DEFAULT_MAX_ABANDONED) -> None:
        if max_abandoned <= 0:
            raise ValueError("max_abandoned must be positive")
        self.max_abandoned = max_abandoned
        self.live = 0            # abandoned threads still running
        self.total_abandoned = 0  # ever abandoned (monotonic)
        self._cond = threading.Condition()

    def wait_for_slot(self, timeout_s: float) -> None:
        """Block until a new abandonment would stay under the cap.

        Gives up after ``timeout_s`` (the attempt then proceeds anyway:
        the cap is back-pressure, not a hard ceiling, so a wedged store
        cannot deadlock the fetch path).
        """
        with self._cond:
            self._cond.wait_for(
                lambda: self.live < self.max_abandoned, timeout=timeout_s
            )

    def mark_abandoned(self) -> None:
        with self._cond:
            self.live += 1
            self.total_abandoned += 1

    def release(self) -> None:
        """An abandoned thread finally finished."""
        with self._cond:
            self.live = max(0, self.live - 1)
            self._cond.notify_all()


#: Process-wide guard shared by all retry policies.
_ABANDON_GUARD = AbandonGuard()


class RetryExhausted(IOError):
    """A retryable operation kept failing past the policy's limits."""

    def __init__(self, message: str, last_error: BaseException, attempts: int):
        super().__init__(message)
        self.last_error = last_error
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff discipline for one logical operation.

    ``max_attempts`` bounds tries (first call included);
    ``base_delay_s``/``max_delay_s`` shape the exponential backoff,
    with *full jitter*: the ``n``-th delay is uniform in
    ``[0, min(max_delay_s, base_delay_s * 2**n))``.  ``deadline_s``
    caps the total elapsed time across attempts, and
    ``attempt_timeout_s`` (optional) bounds one attempt -- a stuck call
    is abandoned on a daemon thread and counted as a retryable timeout.

    String form (for ``--retry``)::

        max=5,base=0.01,cap=1.0,deadline=30,timeout=2,seed=0
    """

    max_attempts: int = 5
    base_delay_s: float = 0.01
    max_delay_s: float = 1.0
    deadline_s: float | None = 30.0
    attempt_timeout_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive (or None)")

    _FIELDS = {
        "max": ("max_attempts", int),
        "base": ("base_delay_s", float),
        "cap": ("max_delay_s", float),
        "deadline": ("deadline_s", float),
        "timeout": ("attempt_timeout_s", float),
        "seed": ("seed", int),
    }

    @classmethod
    def parse(cls, text: str) -> "RetryPolicy":
        """Parse the CLI string form (see class docstring)."""
        kwargs: dict = {}
        for pair in filter(None, (p.strip() for p in text.split(","))):
            k, sep, v = pair.partition("=")
            if not sep or k.strip() not in cls._FIELDS:
                raise ValueError(
                    f"malformed retry option {pair!r} "
                    f"(expected one of {sorted(cls._FIELDS)})"
                )
            field, conv = cls._FIELDS[k.strip()]
            kwargs[field] = None if v.strip() == "none" else conv(v)
        return cls(**kwargs)

    def backoff_s(self, attempt: int, token: str = "") -> float:
        """Full-jitter delay before retry number ``attempt`` (1-based)."""
        ceiling = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
        return seeded_uniform(self.seed, "backoff", token, attempt) * ceiling

    def _attempt(
        self,
        fn: Callable[[], bytes],
        on_abandon: Callable[[], None] | None = None,
    ):
        if self.attempt_timeout_s is None:
            return fn()
        guard = _ABANDON_GUARD
        # Back-pressure: while the cap's worth of abandoned threads are
        # still live, hold new timeout-guarded attempts briefly instead
        # of stacking more stuck threads on top.
        guard.wait_for_slot(self.attempt_timeout_s)
        box: dict = {}
        state_lock = threading.Lock()
        state = {"abandoned": False, "done": False}

        def runner() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:
                box["error"] = exc
            with state_lock:
                state["done"] = True
                was_abandoned = state["abandoned"]
            if was_abandoned:
                guard.release()

        th = threading.Thread(target=runner, daemon=True)
        th.start()
        th.join(self.attempt_timeout_s)
        with state_lock:
            finished = state["done"]
            if not finished:
                # The attempt is abandoned: its thread keeps running to
                # completion, but nobody consumes the result.  Exactly
                # one side accounts it -- the handshake above makes the
                # runner release the guard slot when it finally ends.
                state["abandoned"] = True
        if not finished:
            guard.mark_abandoned()
            if on_abandon is not None:
                on_abandon()
            raise TimeoutError(
                f"attempt exceeded per-attempt timeout {self.attempt_timeout_s}s"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def call(
        self,
        fn: Callable[[], bytes],
        *,
        token: str = "",
        on_retry: Callable[[BaseException, int], None] | None = None,
        on_abandon: Callable[[], None] | None = None,
    ):
        """Run ``fn`` under this policy, returning its result.

        ``token`` namespaces the deterministic jitter (use the range
        being fetched).  ``on_retry(error, attempt)`` is invoked before
        each backoff sleep -- the accounting hook.  ``on_abandon()`` is
        invoked each time a per-attempt timeout abandons a still-running
        attempt thread.  Raises :class:`RetryExhausted` when attempts or
        the deadline run out, chaining the last underlying error.
        """
        t0 = time.monotonic()
        attempt = 0
        while True:
            try:
                return self._attempt(fn, on_abandon)
            except RETRYABLE_ERRORS as exc:
                attempt += 1
                if attempt >= self.max_attempts:
                    raise RetryExhausted(
                        f"gave up after {attempt} attempts ({token or 'op'}): {exc}",
                        exc, attempt,
                    ) from exc
                delay = self.backoff_s(attempt, token)
                elapsed = time.monotonic() - t0
                if self.deadline_s is not None and elapsed + delay >= self.deadline_s:
                    raise RetryExhausted(
                        f"retry deadline {self.deadline_s}s exceeded after "
                        f"{attempt} attempts ({token or 'op'}): {exc}",
                        exc, attempt,
                    ) from exc
                if on_retry is not None:
                    on_retry(exc, attempt)
                if delay > 0:
                    time.sleep(delay)
