"""Elastic cloud provisioning during a run.

The paper's related work (Marshall et al.'s *Elastic Site*, de Assunção
et al.) grows the cloud side on demand; this module integrates that
behaviour with the data-aware middleware: a deadline-driven monitor
projects the finish time from the observed per-core throughput and
leases additional cloud cores -- each usable only after an instance
**startup latency** -- whenever the projection misses the deadline.
Leased cores join the cloud master's pull loop like any other worker,
so the scheduler needs no changes and the new cores immediately share
the remaining jobs (stealing included).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.data.index import DataIndex
from repro.runtime.scheduler import HeadScheduler
from repro.runtime.stats import WorkerStats
from repro.sim import simrun as _simrun
from repro.sim.calibration import AppSimProfile, ResourceParams
from repro.sim.simrun import SimClusterConfig, SimRunResult, simulate_run

__all__ = ["ElasticPolicy", "ElasticRunResult", "simulate_elastic_run"]


@dataclass(frozen=True)
class ElasticPolicy:
    """Deadline-driven scale-out policy.

    Every ``check_interval_s`` the monitor estimates the finish time as
    ``now + remaining_work / current_capacity``.  If that misses
    ``deadline_s``, it leases ``step_cores`` more cloud cores (up to
    ``max_extra_cores`` total), each usable ``startup_latency_s`` after
    its lease.
    """

    deadline_s: float
    check_interval_s: float = 10.0
    startup_latency_s: float = 60.0
    step_cores: int = 4
    max_extra_cores: int = 32
    #: Lease when the projection exceeds ``safety * deadline``: the
    #: throughput model is optimistic (boot delays, stealing overhead,
    #: batch granularity), so real systems keep headroom.
    safety: float = 0.85

    def __post_init__(self) -> None:
        if self.deadline_s <= 0 or self.check_interval_s <= 0:
            raise ValueError("deadline and check interval must be positive")
        if self.startup_latency_s < 0:
            raise ValueError("startup latency must be non-negative")
        if self.step_cores <= 0 or self.max_extra_cores < 0:
            raise ValueError("step_cores > 0 and max_extra_cores >= 0 required")
        if not 0 < self.safety <= 1:
            raise ValueError("safety must be in (0, 1]")


@dataclass
class ElasticRunResult:
    """Outcome of an elastic run."""

    result: SimRunResult
    policy: ElasticPolicy
    extra_cores_leased: int
    lease_times_s: list[float] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.result.total_s

    @property
    def met_deadline(self) -> bool:
        return self.total_s <= self.policy.deadline_s


def _plan_leases(base: SimRunResult, base_cores: int, policy: ElasticPolicy) -> list[float]:
    """Replay the monitor against the observed throughput trajectory.

    The base (non-elastic) run gives the fleet's average job rate.  The
    monitor integrates completed work at the *current* capacity (leased
    cores contribute proportionally once booted) and projects the finish
    piecewise through pending boots; it leases another step whenever the
    projection still misses the deadline.
    """
    total_jobs = base.stats.jobs_processed
    horizon = base.stats.processing_end_s
    avg_rate = total_jobs / horizon  # jobs/s of the base fleet

    def ratio_at(time: float, leases: list[float]) -> float:
        live = sum(
            policy.step_cores
            for lt in leases
            if lt + policy.startup_latency_s <= time
        )
        return (base_cores + live) / base_cores

    def project_finish(now: float, remaining: float, leases: list[float]) -> float:
        """Walk forward through pending boot events at known capacities."""
        boots = sorted(
            lt + policy.startup_latency_s
            for lt in leases
            if lt + policy.startup_latency_s > now
        )
        t = now
        for boot in boots:
            rate = avg_rate * ratio_at(t, leases)
            if remaining <= rate * (boot - t):
                return t + remaining / rate
            remaining -= rate * (boot - t)
            t = boot
        return t + remaining / (avg_rate * ratio_at(t, leases))

    leases: list[float] = []
    done = 0.0
    t = 0.0
    while done < total_jobs and len(leases) * policy.step_cores < policy.max_extra_cores:
        # Advance one monitoring interval at the live capacity.
        done += avg_rate * ratio_at(t, leases) * policy.check_interval_s
        t += policy.check_interval_s
        remaining = total_jobs - done
        if remaining <= 0:
            break
        if project_finish(t, remaining, leases) > policy.safety * policy.deadline_s:
            leases.append(t)
    return leases


def simulate_elastic_run(
    index: DataIndex,
    clusters: list[SimClusterConfig],
    profile: AppSimProfile,
    policy: ElasticPolicy,
    params: ResourceParams = ResourceParams(),
    *,
    seed: int = 0,
) -> ElasticRunResult:
    """Simulate with deadline-driven elastic scale-out of the cloud side.

    Two deterministic passes: first the unmodified run, whose throughput
    trajectory drives the policy's lease decisions; then the run with
    the leased cores added as late-starting cloud workers (they sleep
    through their boot window, then enter the normal pull loop).
    """
    cloud = next((c for c in clusters if c.location == "cloud"), None)
    if cloud is None:
        raise ValueError("elastic scale-out needs a cloud cluster to grow")

    base = simulate_run(index, clusters, profile, params, seed=seed)
    leases = _plan_leases(base, sum(c.n_cores for c in clusters), policy)
    if not leases:
        return ElasticRunResult(result=base, policy=policy, extra_cores_leased=0)

    delayed = [
        (
            SimClusterConfig(
                name=f"cloud-elastic-{i}",
                location="cloud",
                n_cores=policy.step_cores,
                core_speed=cloud.core_speed,
                retrieval_threads=cloud.retrieval_threads,
            ),
            lease_t + policy.startup_latency_s,
        )
        for i, lease_t in enumerate(leases)
    ]
    result = _run_with_delayed_clusters(index, clusters, delayed, profile, params, seed=seed)
    return ElasticRunResult(
        result=result,
        policy=policy,
        extra_cores_leased=len(leases) * policy.step_cores,
        lease_times_s=leases,
    )


def _run_with_delayed_clusters(
    index: DataIndex,
    clusters: list[SimClusterConfig],
    delayed: list[tuple[SimClusterConfig, float]],
    profile: AppSimProfile,
    params: ResourceParams,
    *,
    seed: int,
) -> SimRunResult:
    """``simulate_run`` plus clusters whose cores start at given times.

    Mirrors the body of :func:`repro.sim.simrun.simulate_run`, with one
    difference: a delayed cluster's workers sleep out their start time
    before entering the standard worker loop.
    """
    start_times = {spec.name: when for spec, when in delayed}
    env = _simrun.SimEnv()
    net = _simrun.FlowNetwork(env)
    head_location = (
        _simrun.Topology.LOCAL
        if any(c.location == _simrun.Topology.LOCAL for c in clusters)
        else _simrun.Topology.CLOUD
    )
    topo = _simrun.Topology(params, head_location)
    all_clusters = clusters + [spec for spec, _ in delayed]
    scheduler = HeadScheduler(_simrun.jobs_from_index(index))
    spec_ctx = _simrun._SpeculationContext(enabled=False)

    stats = _simrun.RunStats()
    cluster_events = []
    masters = []
    for ci, cluster in enumerate(all_clusters):
        sigma = (
            params.local_speed_sigma
            if cluster.location == _simrun.Topology.LOCAL
            else params.cloud_speed_sigma
        )
        varmodel = _simrun.VariabilityModel(
            _simrun.VariabilityParams(sigma=sigma), seed=seed * 1009 + ci
        )
        master = _simrun._SimMaster(
            env, scheduler, cluster.location, params.batch_size,
            topo.refill_rtt(cluster.location),
        )
        masters.append(master)
        cstats = _simrun.ClusterStats(cluster.name, cluster.location)
        stats.clusters[cluster.name] = cstats
        start_at = start_times.get(cluster.name, 0.0)
        worker_events = []
        for _ in range(cluster.n_cores):
            wstats = WorkerStats()
            cstats.workers.append(wstats)
            speed = varmodel.core_speed_factor()

            def boot(wstats=wstats, speed=speed, master=master,
                     cluster=cluster, start_at=start_at, varmodel=varmodel):
                if start_at > 0:
                    yield start_at  # instance boot / lease delay
                yield from _simrun._worker_proc(
                    env, net, topo, master, cluster, profile,
                    wstats, speed, varmodel, math.inf, spec_ctx,
                )

            worker_events.append(env.process(boot()))
        cluster_events.append(
            env.process(
                _simrun._cluster_proc(
                    env, net, topo, cluster, worker_events, cstats,
                    profile.robj_nbytes, params, master,
                )
            )
        )
    for m in masters:
        m.peers = masters

    def _head_proc():
        yield _simrun.all_of(env, cluster_events)
        merge = params.merge_fixed_s
        merge += len(all_clusters) * profile.robj_nbytes * params.merge_s_per_byte
        yield merge

    env.process(_head_proc())
    env.run()
    if not scheduler.all_done:
        raise RuntimeError("elastic simulation ended with unprocessed jobs")

    end = env.now
    stats.total_s = end
    processing_end = max(c.finished_at for c in stats.clusters.values())
    stats.processing_end_s = processing_end
    stats.global_reduction_s = end - processing_end
    for cstats in stats.clusters.values():
        cstats.idle_s = max(0.0, processing_end - cstats.finished_at)
        for w in cstats.workers:
            w.sync_s = max(0.0, end - w.finished_at)
    return SimRunResult(stats=stats, end_time_s=end)
