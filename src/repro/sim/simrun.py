"""Simulated cloud-bursting execution.

Drives the *same* head-scheduler policy as the threaded runtime
(:class:`repro.runtime.scheduler.HeadScheduler`) over the discrete-event
kernel, modelling every core, link, and reduction-object exchange.  This
is the engine behind all Figure-3/4 and Table-I/II reproductions.

The accounting mirrors the paper exactly:

* per-worker **retrieval** and **processing** timers (serial per job,
  matching the paper's stacked bars that sum to total execution time);
* **sync** = time from a worker running out of jobs until the head
  finishes the global reduction (intra-cluster barrier skew +
  inter-cluster wait + reduction-object exchange);
* per-cluster **idle time** and the run's **global reduction time** for
  Table II.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.data.index import DataIndex
from repro.runtime.jobs import Job, jobs_from_index
from repro.runtime.scheduler import HeadScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.sim.calibration import AppSimProfile, ResourceParams
from repro.sim.events import Event, SimEnv, all_of
from repro.sim.flows import FlowNetwork
from repro.sim.topology import Topology
from repro.sim.variability import VariabilityModel, VariabilityParams

__all__ = [
    "SimClusterConfig",
    "FailureSpec",
    "StragglerSpec",
    "SimRunResult",
    "simulate_run",
]


@dataclass(frozen=True)
class SimClusterConfig:
    """One simulated cluster."""

    name: str
    location: str          # "local" or "cloud"
    n_cores: int
    core_speed: float = 1.0
    retrieval_threads: int = 8


@dataclass(frozen=True)
class FailureSpec:
    """Kill ``n_workers`` cores of ``cluster`` at simulated time ``at_s``.

    A worker whose in-flight job has not completed by ``at_s`` loses
    that job; the head reassigns it (possibly to the other cluster) and
    the dead core never requests work again.

    Recovery relies on surviving workers still in their request loop; a
    failure landing after every other worker has already drained the
    pool and exited cannot be recovered (mirroring a real run, where the
    job would need a new scheduling round) and the simulation raises.

    Jobs a core completed *before* dying keep contributing to the final
    result: this models the checkpointed reduction object of the
    authors' fault-tolerance follow-up work, where the small robj is
    periodically persisted so only the in-flight chunk is lost.
    """

    cluster: str
    n_workers: int
    at_s: float

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")


@dataclass(frozen=True)
class StragglerSpec:
    """Slow ``n_workers`` cores of ``cluster`` down to ``slowdown`` speed.

    Models the persistent stragglers of heterogeneous/virtualized
    environments (Zaharia et al.'s motivation for LATE): the affected
    cores run at ``slowdown`` times their normal speed for the whole
    run.  Combine with ``speculation=True`` to let idle workers back up
    the stragglers' in-flight jobs.
    """

    cluster: str
    n_workers: int
    slowdown: float

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if not 0 < self.slowdown < 1:
            raise ValueError("slowdown must be in (0, 1)")


class _SpeculationContext:
    """Shared bookkeeping for speculative (backup) execution.

    Tracks in-flight jobs; once the head pool is empty, idle workers
    pick the in-flight job that started earliest (the likeliest
    straggler victim), run a backup copy, and whichever copy finishes
    first completes the job -- the other is discarded as wasted work.
    """

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.in_flight: dict[int, tuple[Job, float]] = {}
        self.backed_up: set[int] = set()
        self.completed: set[int] = set()
        self.wasted_executions = 0

    def start(self, job: Job, now: float) -> None:
        self.in_flight.setdefault(job.job_id, (job, now))

    def try_complete(self, job: Job) -> bool:
        """First finisher wins; returns False for the redundant copy."""
        if job.job_id in self.completed:
            self.wasted_executions += 1
            return False
        self.completed.add(job.job_id)
        self.in_flight.pop(job.job_id, None)
        return True

    def pick_backup(self) -> Job | None:
        """Oldest in-flight job not yet backed up (None if nothing left)."""
        if not self.enabled:
            return None
        candidates = [
            (started, job)
            for job_id, (job, started) in self.in_flight.items()
            if job_id not in self.backed_up
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda t: t[0])
        job = candidates[0][1]
        self.backed_up.add(job.job_id)
        return job


@dataclass
class SimRunResult:
    """Statistics of one simulated run (simulated seconds)."""

    stats: RunStats
    end_time_s: float
    #: Redundant speculative executions whose primary won the race.
    wasted_executions: int = 0

    @property
    def total_s(self) -> float:
        return self.end_time_s


class _SimMaster:
    """Cluster-local pool refilling from the shared head scheduler."""

    def __init__(
        self,
        env: SimEnv,
        scheduler: HeadScheduler,
        location: str,
        batch_size: int,
        refill_rtt_s: float,
    ) -> None:
        self.env = env
        self.scheduler = scheduler
        self.location = location
        self.batch_size = batch_size
        self.refill_rtt_s = refill_rtt_s
        self.pool: deque[Job] = deque()
        self.done = False
        self._inflight: Event | None = None
        #: All masters of the run (set by simulate_run), so a failure's
        #: reassignment can reopen every cluster's request loop.
        self.peers: list["_SimMaster"] = [self]

    def get_job(self):
        """Process-style generator returning the next job or ``None``."""
        while True:
            if self.pool:
                return self.pool.popleft()
            if self.done:
                return None
            if self._inflight is not None:
                # Another worker is already asking the head; wait for it.
                yield self._inflight
                continue
            self._inflight = self.env.event()
            if self.refill_rtt_s > 0:
                yield self.refill_rtt_s
            jobs = self.scheduler.request_jobs(self.location, self.batch_size)
            if jobs:
                self.pool.extend(jobs)
            else:
                self.done = True
            ev, self._inflight = self._inflight, None
            ev.succeed()

    def complete(self, job: Job) -> None:
        self.scheduler.complete(job)

    def reopen(self) -> None:
        """A reassigned job re-entered the head pool: ask again."""
        self.done = False


def _worker_proc(
    env: SimEnv,
    net: FlowNetwork,
    topo: Topology,
    master: _SimMaster,
    cluster: SimClusterConfig,
    profile: AppSimProfile,
    wstats: WorkerStats,
    speed_factor: float,
    varmodel: VariabilityModel,
    fail_at_s: float = math.inf,
    spec_ctx: _SpeculationContext | None = None,
    tracer=None,
    worker_name: str = "",
):
    """One simulated core: pull, fetch, process, repeat.

    A core with a finite ``fail_at_s`` dies at that instant: the job it
    was working on is handed back to the head for reassignment and the
    core stops requesting work.  With speculation enabled, a core that
    finds the pool empty backs up the oldest in-flight job instead of
    idling.
    """
    spec_ctx = spec_ctx or _SpeculationContext(enabled=False)

    def execute(job: Job, is_backup: bool):
        # -- retrieval ------------------------------------------------------
        t0 = env.now
        path = topo.fetch_path(cluster.location, job.location, cluster.retrieval_threads)
        if path.latency_s > 0:
            yield path.latency_s
        yield net.transfer(path.links, job.nbytes, path.per_flow_cap)
        wstats.retrieval_s += env.now - t0
        stolen = job.location != cluster.location
        if tracer is not None:
            tracer.record(worker_name, "fetch", t0, env.now, job.job_id,
                          job.location, stolen)
        # -- processing -----------------------------------------------------
        t0 = env.now
        base = job.n_units * profile.compute_s_per_unit
        base /= cluster.core_speed * speed_factor
        base /= varmodel.effective_speed(base)
        if spec_ctx.enabled:
            # Process in quanta so a copy that lost the race is killed
            # promptly instead of grinding to the end (LATE semantics).
            n_slices = 8
            for _ in range(n_slices):
                yield base / n_slices
                if job.job_id in spec_ctx.completed:
                    spec_ctx.wasted_executions += 1
                    wstats.processing_s += env.now - t0
                    return env.now <= fail_at_s
        else:
            yield base
        if env.now > fail_at_s:
            # Died mid-job.  Unless a backup copy exists (or already
            # finished), hand the job back for reassignment; masters
            # that already saw an empty pool must start asking again.
            if not is_backup and job.job_id not in spec_ctx.completed:
                if job.job_id in spec_ctx.backed_up:
                    pass  # the running backup will complete it
                else:
                    spec_ctx.in_flight.pop(job.job_id, None)
                    master.scheduler.reassign(job)
                    for m in master.peers:
                        m.reopen()
            return False
        wstats.processing_s += env.now - t0
        if tracer is not None:
            tracer.record(worker_name, "compute", t0, env.now, job.job_id,
                          job.location, stolen)
        if spec_ctx.try_complete(job):
            wstats.jobs_processed += 1
            if stolen:
                wstats.jobs_stolen += 1
            master.complete(job)
        return True

    while env.now < fail_at_s:
        job = yield from master.get_job()
        if job is None:
            backup = spec_ctx.pick_backup()
            if backup is None:
                break
            alive = yield from execute(backup, True)
            if not alive:
                wstats.finished_at = fail_at_s
                wstats.failed = True
                return
            continue
        spec_ctx.start(job, env.now)
        alive = yield from execute(job, False)
        if not alive:
            wstats.finished_at = fail_at_s
            wstats.failed = True
            return
    wstats.failed = env.now >= fail_at_s
    wstats.finished_at = min(env.now, fail_at_s) if wstats.failed else env.now


def _cluster_proc(
    env: SimEnv,
    net: FlowNetwork,
    topo: Topology,
    cluster: SimClusterConfig,
    worker_events: list[Event],
    cstats: ClusterStats,
    robj_nbytes: int,
    params: ResourceParams,
    master: _SimMaster,
):
    """Cluster coordinator: barrier, combine, ship the reduction object.

    Intra-cluster combination merges the workers' reduction-object
    copies in a binary tree (``ceil(log2(n))`` sequential merge steps),
    so large objects (pagerank) charge a combination cost that grows
    with the core count -- one of the two effects capping pagerank's
    scalability in the paper (the other is the fixed WAN exchange).
    """
    yield all_of(env, worker_events)
    cstats.finished_at = env.now
    if all(w.failed for w in cstats.workers) and master.pool:
        # Every core died with jobs still prefetched in the master's
        # pool: hand them back to the head so another cluster recovers.
        while master.pool:
            master.scheduler.reassign(master.pool.pop())
        for m in master.peers:
            m.reopen()
    if cluster.n_cores > 1 and robj_nbytes > 0:
        depth = math.ceil(math.log2(cluster.n_cores))
        yield depth * robj_nbytes * params.merge_s_per_byte
    path = topo.robj_path(cluster.location)
    t0 = env.now
    if path.latency_s > 0:
        yield path.latency_s
    if path.links:
        yield net.transfer(path.links, robj_nbytes, path.per_flow_cap)
    cstats.robj_transfer_s = env.now - t0
    cstats.robj_nbytes = robj_nbytes


def simulate_run(
    index: DataIndex,
    clusters: list[SimClusterConfig],
    profile: AppSimProfile,
    params: ResourceParams = ResourceParams(),
    *,
    seed: int = 0,
    scheduler_factory=HeadScheduler,
    failures: list[FailureSpec] | None = None,
    stragglers: list[StragglerSpec] | None = None,
    speculation: bool = False,
    topology=None,
    site_sigmas: dict[str, float] | None = None,
    tracer=None,
) -> SimRunResult:
    """Simulate one complete cloud-bursting execution.

    The default two-site topology puts the head node at the local
    cluster when one exists, matching the paper's deployment; an
    all-cloud configuration hosts it in the cloud (so env-cloud pays no
    WAN for its global reduction).  Pass ``topology`` (any object with
    the :class:`~repro.sim.topology.Topology` interface, e.g. a
    :class:`~repro.sim.multisite.MultiSiteTopology`) for other layouts,
    and ``site_sigmas`` to override per-site variability.
    """
    if not clusters:
        raise ValueError("need at least one cluster")
    env = SimEnv()
    net = FlowNetwork(env)
    if topology is not None:
        topo = topology
    else:
        head_location = (
            Topology.LOCAL
            if any(c.location == Topology.LOCAL for c in clusters)
            else Topology.CLOUD
        )
        topo = Topology(params, head_location)
    scheduler = scheduler_factory(jobs_from_index(index))

    # Map each failure spec to per-worker kill times (first n cores).
    fail_times: dict[str, list[float]] = {}
    for spec in failures or []:
        if spec.cluster not in {c.name for c in clusters}:
            raise ValueError(f"failure targets unknown cluster {spec.cluster!r}")
        fail_times.setdefault(spec.cluster, []).extend([spec.at_s] * spec.n_workers)

    # Map straggler specs to per-worker slowdown factors (last n cores,
    # so failures and stragglers target disjoint cores by default).
    slow_factors: dict[str, list[float]] = {}
    for sspec in stragglers or []:
        if sspec.cluster not in {c.name for c in clusters}:
            raise ValueError(f"straggler targets unknown cluster {sspec.cluster!r}")
        slow_factors.setdefault(sspec.cluster, []).extend(
            [sspec.slowdown] * sspec.n_workers
        )
    spec_ctx = _SpeculationContext(enabled=speculation)

    stats = RunStats()
    cluster_events: list[Event] = []
    masters: list[_SimMaster] = []
    for ci, cluster in enumerate(clusters):
        if site_sigmas is not None and cluster.location in site_sigmas:
            sigma = site_sigmas[cluster.location]
        elif cluster.location == Topology.LOCAL:
            sigma = params.local_speed_sigma
        else:
            sigma = params.cloud_speed_sigma
        varmodel = VariabilityModel(VariabilityParams(sigma=sigma), seed=seed * 1009 + ci)
        master = _SimMaster(
            env, scheduler, cluster.location, params.batch_size,
            topo.refill_rtt(cluster.location),
        )
        masters.append(master)
        cstats = ClusterStats(cluster.name, cluster.location)
        stats.clusters[cluster.name] = cstats
        kill_times = fail_times.get(cluster.name, [])
        if len(kill_times) > cluster.n_cores:
            raise ValueError(
                f"cannot fail {len(kill_times)} workers of {cluster.name!r} "
                f"({cluster.n_cores} cores)"
            )
        slows = slow_factors.get(cluster.name, [])
        if len(slows) > cluster.n_cores:
            raise ValueError(
                f"cannot slow {len(slows)} workers of {cluster.name!r} "
                f"({cluster.n_cores} cores)"
            )
        worker_events = []
        for wid in range(cluster.n_cores):
            wstats = WorkerStats()
            cstats.workers.append(wstats)
            speed = varmodel.core_speed_factor()
            slow_idx = wid - (cluster.n_cores - len(slows))
            if slow_idx >= 0:
                speed *= slows[slow_idx]
            fail_at = kill_times[wid] if wid < len(kill_times) else math.inf
            worker_events.append(
                env.process(
                    _worker_proc(
                        env, net, topo, master, cluster, profile,
                        wstats, speed, varmodel, fail_at, spec_ctx,
                        tracer, f"{cluster.name}/{wid}",
                    )
                )
            )
        cluster_events.append(
            env.process(
                _cluster_proc(
                    env, net, topo, cluster, worker_events, cstats,
                    profile.robj_nbytes, params, master,
                )
            )
        )

    for m in masters:
        m.peers = masters

    # Head: wait for every cluster's object, then merge them.
    def _head_proc():
        yield all_of(env, cluster_events)
        merge = params.merge_fixed_s
        merge += len(clusters) * profile.robj_nbytes * params.merge_s_per_byte
        yield merge

    env.process(_head_proc())
    env.run()

    if not scheduler.all_done:
        raise RuntimeError(
            "simulation ended with unprocessed jobs (did every worker fail?)"
        )

    end = env.now
    stats.total_s = end
    processing_end = max(c.finished_at for c in stats.clusters.values())
    stats.processing_end_s = processing_end
    stats.global_reduction_s = end - processing_end
    for cstats in stats.clusters.values():
        cstats.idle_s = max(0.0, processing_end - cstats.finished_at)
        for w in cstats.workers:
            w.sync_s = max(0.0, end - w.finished_at)
    return SimRunResult(
        stats=stats, end_time_s=end, wasted_executions=spec_ctx.wasted_executions
    )
