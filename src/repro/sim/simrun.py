"""Simulated cloud-bursting execution.

Drives the *same* head-scheduler policy as the threaded runtime
(:class:`repro.runtime.scheduler.HeadScheduler`) over the discrete-event
kernel, modelling every core, link, and reduction-object exchange.  This
is the engine behind all Figure-3/4 and Table-I/II reproductions.

The accounting mirrors the paper exactly:

* per-worker **retrieval** and **processing** timers (serial per job,
  matching the paper's stacked bars that sum to total execution time);
* **sync** = time from a worker running out of jobs until the head
  finishes the global reduction (intra-cluster barrier skew +
  inter-cluster wait + reduction-object exchange);
* per-cluster **idle time** and the run's **global reduction time** for
  Table II.

The threaded engine's data-pipeline optimizations are modelled here with
the same policies and accounting (so sweeps can quantify the win):

* ``prefetch=True`` runs each core pipelined -- the fetch of job *N+1*
  proceeds as its own simulated flow while job *N* computes, and
  ``retrieval_s`` records only the residual stall (``overlap_s`` the
  hidden fetch time);
* ``cache_nbytes``/``caches`` give each cluster a byte-budgeted
  :class:`~repro.storage.cache.ChunkCache` (size-only placeholders): a
  hit skips the storage/WAN links entirely, so a warmed cache makes
  iteration 2+ of an iterative workload cheaper, exactly as in the
  threaded engine.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.data.index import DataIndex
from repro.runtime.jobs import Job, jobs_from_index  # noqa: F401 (re-export)
from repro.runtime.pushdown import plan_jobs
from repro.runtime.scheduler import HeadScheduler
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.sim.calibration import AppSimProfile, ResourceParams
from repro.sim.events import Event, SimEnv, all_of
from repro.sim.flows import FlowNetwork
from repro.sim.topology import Topology, TransferSimModel
from repro.sim.variability import VariabilityModel, VariabilityParams
from repro.storage.autotune import AimdAutotuner, AutotuneParams
from repro.storage.cache import ChunkCache

__all__ = [
    "SimClusterConfig",
    "FailureSpec",
    "StragglerSpec",
    "SimRunResult",
    "simulate_run",
]


@dataclass(frozen=True)
class SimClusterConfig:
    """One simulated cluster."""

    name: str
    location: str          # "local" or "cloud"
    n_cores: int
    core_speed: float = 1.0
    retrieval_threads: int = 8


@dataclass(frozen=True)
class FailureSpec:
    """Kill ``n_workers`` cores of ``cluster`` at simulated time ``at_s``.

    A worker whose in-flight job has not completed by ``at_s`` loses
    that job; the head reassigns it (possibly to the other cluster) and
    the dead core never requests work again.

    Recovery relies on surviving workers still in their request loop; a
    failure landing after every other worker has already drained the
    pool and exited cannot be recovered (mirroring a real run, where the
    job would need a new scheduling round) and the simulation raises.

    Jobs a core completed *before* dying keep contributing to the final
    result: this models the checkpointed reduction object of the
    authors' fault-tolerance follow-up work, where the small robj is
    periodically persisted so only the in-flight chunk is lost.
    """

    cluster: str
    n_workers: int
    at_s: float

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")


@dataclass(frozen=True)
class StragglerSpec:
    """Slow ``n_workers`` cores of ``cluster`` down to ``slowdown`` speed.

    Models the persistent stragglers of heterogeneous/virtualized
    environments (Zaharia et al.'s motivation for LATE): the affected
    cores run at ``slowdown`` times their normal speed for the whole
    run.  Combine with ``speculation=True`` to let idle workers back up
    the stragglers' in-flight jobs.
    """

    cluster: str
    n_workers: int
    slowdown: float

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if not 0 < self.slowdown < 1:
            raise ValueError("slowdown must be in (0, 1)")


class _SpeculationContext:
    """Shared bookkeeping for speculative (backup) execution.

    Tracks in-flight jobs; once the head pool is empty, idle workers
    pick the in-flight job that started earliest (the likeliest
    straggler victim), run a backup copy, and whichever copy finishes
    first completes the job -- the other is discarded as wasted work.
    """

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.in_flight: dict[int, tuple[Job, float]] = {}
        self.backed_up: set[int] = set()
        self.completed: set[int] = set()
        self.wasted_executions = 0

    def start(self, job: Job, now: float) -> None:
        self.in_flight.setdefault(job.job_id, (job, now))

    def try_complete(self, job: Job) -> bool:
        """First finisher wins; returns False for the redundant copy."""
        if job.job_id in self.completed:
            self.wasted_executions += 1
            return False
        self.completed.add(job.job_id)
        self.in_flight.pop(job.job_id, None)
        return True

    def pick_backup(self) -> Job | None:
        """Oldest in-flight job not yet backed up (None if nothing left)."""
        if not self.enabled:
            return None
        candidates = [
            (started, job)
            for job_id, (job, started) in self.in_flight.items()
            if job_id not in self.backed_up
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda t: t[0])
        job = candidates[0][1]
        self.backed_up.add(job.job_id)
        return job


@dataclass
class SimRunResult:
    """Statistics of one simulated run (simulated seconds)."""

    stats: RunStats
    end_time_s: float
    #: Redundant speculative executions whose primary won the race.
    wasted_executions: int = 0
    #: Per-cluster chunk caches (when caching was enabled); pass them
    #: back into the next ``simulate_run`` call to model iteration 2+ of
    #: an iterative workload against a warmed cache.
    caches: dict[str, ChunkCache] | None = None

    @property
    def total_s(self) -> float:
        return self.end_time_s


class _SimMaster:
    """Cluster-local pool refilling from the shared head scheduler."""

    def __init__(
        self,
        env: SimEnv,
        scheduler: HeadScheduler,
        location: str,
        batch_size: int,
        refill_rtt_s: float,
    ) -> None:
        self.env = env
        self.scheduler = scheduler
        self.location = location
        self.batch_size = batch_size
        self.refill_rtt_s = refill_rtt_s
        self.pool: deque[Job] = deque()
        self.done = False
        self._inflight: Event | None = None
        #: All masters of the run (set by simulate_run), so a failure's
        #: reassignment can reopen every cluster's request loop.
        self.peers: list["_SimMaster"] = [self]

    def get_job(self):
        """Process-style generator returning the next job or ``None``."""
        while True:
            if self.pool:
                return self.pool.popleft()
            if self.done:
                return None
            if self._inflight is not None:
                # Another worker is already asking the head; wait for it.
                yield self._inflight
                continue
            self._inflight = self.env.event()
            if self.refill_rtt_s > 0:
                yield self.refill_rtt_s
            jobs = self.scheduler.request_jobs(self.location, self.batch_size)
            if jobs:
                self.pool.extend(jobs)
            else:
                self.done = True
            ev, self._inflight = self._inflight, None
            ev.succeed()

    def complete(self, job: Job, wstats=None, work_s: float = 0.0) -> None:
        self.scheduler.complete(job)
        if wstats is not None and job.job_id in getattr(
            self.scheduler, "requeued_ids", ()
        ):
            wstats.jobs_recovered += 1
            wstats.recovery_s += work_s

    def reopen(self) -> None:
        """A reassigned job re-entered the head pool: ask again."""
        self.done = False


def _fragment_gen(env, net, path, frag_nbytes: float, stall_s: float):
    """One fragment leg: seeded stall, link latency, then the flow."""
    if stall_s > 0:
        yield stall_s
    if path.latency_s > 0:
        yield path.latency_s
    yield net.transfer(path.links, frag_nbytes, path.per_flow_cap)


def _k_of_n(env: SimEnv, events: list[Event], k: int) -> Event:
    """Event triggering at the ``k``-th completion; value = winner indices.

    The order statistic behind fastest-k-of-n retrieval: losers keep
    draining their links (their processes are not cancelled), exactly as
    the live fetcher absorbs late fragments after the stripe completes.
    """
    gate = env.event()
    order: list[int] = []

    def arm(idx: int) -> None:
        def cb(_value) -> None:
            order.append(idx)
            if len(order) == k and not gate.triggered:
                gate.succeed(tuple(order))

        events[idx].add_callback(cb)

    for i in range(len(events)):
        arm(i)
    return gate


def _fetch_gen(
    env: SimEnv,
    net: FlowNetwork,
    topo: Topology,
    cluster: SimClusterConfig,
    job: Job,
    cache: ChunkCache | None,
    wstats: WorkerStats,
    info: dict,
    tracer=None,
    worker_name: str = "",
    transfer: TransferSimModel | None = None,
    tuners: dict | None = None,
    stripe: tuple[int, int] | None = None,
    store_stalls: dict | None = None,
):
    """Fetch one job's bytes (cache first, then links); fills ``info``.

    ``info["fetch_s"]`` is the simulated duration, ``info["cache_hit"]``
    whether the cluster's chunk cache served it (in which case no link
    is touched at all -- the bytes are already resident at the site).

    ``transfer`` models the codec of a pre-compressed dataset: only the
    *encoded* size crosses the links (and is charged to the cache, which
    stores encoded bytes exactly like the real
    :class:`~repro.storage.transfer.ParallelFetcher`), and the frame
    decode costs CPU time after the transfer -- on cache hits too, since
    the cache holds frames.  ``info["decode_s"]`` separates that cost.

    ``tuners`` (mapping ``(cluster.name, data_location)`` to an
    :class:`~repro.storage.autotune.AimdAutotuner`) replaces the fixed
    ``retrieval_threads`` fan-out with the adaptive controller; each
    completed transfer's (wire bytes, parts, duration) is fed back.

    ``stripe=(k, m)`` models erasure-coded fastest-k-of-n retrieval: the
    wire frame becomes ``k`` fragment flows of ``ceil(wire/k)`` bytes
    racing over the links, and the fetch completes at the *k*-th
    fragment completion (an order statistic, so one stalled leg no
    longer gates the chunk).  ``store_stalls`` (location ->
    :class:`~repro.storage.faults.FaultSpec`) injects the same seeded
    per-request stalls the live chaos stores use: a stalled data leg
    immediately gets a parity backup (modelling the EWMA hedge firing on
    it), losers keep draining their links, and the wasted/parity
    accounting matches the live fetcher's counters.
    """
    t0 = env.now
    chunk = job.chunk
    wire_nbytes = (
        transfer.wire_nbytes(job.nbytes) if transfer is not None else job.nbytes
    )
    decode_s = transfer.decode_s(job.nbytes) if transfer is not None else 0.0
    hit = cache is not None and cache.get(
        job.location, chunk.key, chunk.offset, chunk.nbytes
    ) is not None
    if hit:
        wstats.cache_hits += 1
    else:
        tuner = (
            tuners.get((cluster.name, job.location))
            if tuners is not None
            else None
        )
        parts = (
            tuner.parts_for(wire_nbytes)
            if tuner is not None
            else cluster.retrieval_threads
        )
        spec = store_stalls.get(job.location) if store_stalls else None
        if stripe is not None:
            k, m = stripe
            frag_nbytes = -(-wire_nbytes // k)
            frag_path = topo.fetch_path(
                cluster.location, job.location, max(1, parts // k)
            )
            stalls = [
                (spec.stall_duration_s(chunk.key, chunk.offset + j, 1) or 0.0)
                if spec is not None
                else 0.0
                for j in range(k + m)
            ]
            # Launch the k data fragments; a stalled data leg gets its
            # parity backup at launch (the seeded stall is exactly what
            # trips the live fetcher's EWMA hedge threshold).
            launched = list(range(k))
            parity_next = k
            for j in range(k):
                if stalls[j] > 0 and parity_next < k + m:
                    launched.append(parity_next)
                    parity_next += 1
            frag_events = [
                env.process(
                    _fragment_gen(env, net, frag_path, frag_nbytes, stalls[j])
                )
                for j in launched
            ]
            winners = yield _k_of_n(env, frag_events, k)
            wstats.n_fragments += k
            wstats.n_parity_decodes += int(
                any(launched[i] >= k for i in winners)
            )
            wstats.fragments_wasted_bytes += (len(launched) - k) * frag_nbytes
            wire_nbytes = k * frag_nbytes
        else:
            if spec is not None:
                stall = spec.stall_duration_s(chunk.key, chunk.offset, 1)
                if stall:
                    yield stall
            path = topo.fetch_path(cluster.location, job.location, parts)
            if path.latency_s > 0:
                yield path.latency_s
            yield net.transfer(path.links, wire_nbytes, path.per_flow_cap)
        if tuner is not None:
            tuner.record(wire_nbytes, parts, env.now - t0)
        if cache is not None:
            # The simulator never materializes bytes: charge the cache
            # at the chunk's *stored* (encoded) size with a placeholder
            # value, so a byte budget holds as many chunks as the real
            # encoded cache would.
            cache.put(
                job.location, chunk.key, chunk.offset, chunk.nbytes,
                b"", charge_nbytes=wire_nbytes,
            )
        wstats.cache_misses += 1
        wstats.bytes_wire += wire_nbytes
        if tracer is not None:
            tracer.record(worker_name, "fetch", t0, env.now, job.job_id,
                          job.location, job.location != cluster.location)
    if decode_s > 0:
        yield decode_s
    wstats.bytes_logical += job.nbytes
    wstats.decode_s += decode_s
    info["fetch_s"] = env.now - t0
    info["decode_s"] = decode_s
    info["cache_hit"] = hit


def _worker_proc(
    env: SimEnv,
    net: FlowNetwork,
    topo: Topology,
    master: _SimMaster,
    cluster: SimClusterConfig,
    profile: AppSimProfile,
    wstats: WorkerStats,
    speed_factor: float,
    varmodel: VariabilityModel,
    fail_at_s: float = math.inf,
    spec_ctx: _SpeculationContext | None = None,
    tracer=None,
    worker_name: str = "",
    cache: ChunkCache | None = None,
    transfer: TransferSimModel | None = None,
    tuners: dict | None = None,
    stripe: tuple[int, int] | None = None,
    store_stalls: dict | None = None,
):
    """One simulated core: pull, fetch, process, repeat.

    A core with a finite ``fail_at_s`` dies at that instant: the job it
    was working on is handed back to the head for reassignment and the
    core stops requesting work.  With speculation enabled, a core that
    finds the pool empty backs up the oldest in-flight job instead of
    idling.
    """
    spec_ctx = spec_ctx or _SpeculationContext(enabled=False)

    def execute(job: Job, is_backup: bool):
        # -- retrieval ------------------------------------------------------
        info: dict = {}
        yield from _fetch_gen(env, net, topo, cluster, job, cache, wstats,
                              info, tracer, worker_name, transfer, tuners,
                              stripe, store_stalls)
        # Decode time is tracked separately (wstats.decode_s), matching
        # the live engines' retrieval/decode split.
        wstats.retrieval_s += info["fetch_s"] - info["decode_s"]
        stolen = job.location != cluster.location
        # -- processing -----------------------------------------------------
        t0 = env.now
        base = job.n_units * profile.compute_s_per_unit
        base /= cluster.core_speed * speed_factor
        base /= varmodel.effective_speed(base)
        if spec_ctx.enabled:
            # Process in quanta so a copy that lost the race is killed
            # promptly instead of grinding to the end (LATE semantics).
            n_slices = 8
            for _ in range(n_slices):
                yield base / n_slices
                if job.job_id in spec_ctx.completed:
                    spec_ctx.wasted_executions += 1
                    wstats.processing_s += env.now - t0
                    return env.now <= fail_at_s
        else:
            yield base
        if env.now > fail_at_s:
            # Died mid-job.  Unless a backup copy exists (or already
            # finished), hand the job back for reassignment; masters
            # that already saw an empty pool must start asking again.
            if not is_backup and job.job_id not in spec_ctx.completed:
                if job.job_id in spec_ctx.backed_up:
                    pass  # the running backup will complete it
                else:
                    spec_ctx.in_flight.pop(job.job_id, None)
                    master.scheduler.reassign(job)
                    for m in master.peers:
                        m.reopen()
            return False
        wstats.processing_s += env.now - t0
        if tracer is not None:
            tracer.record(worker_name, "compute", t0, env.now, job.job_id,
                          job.location, stolen)
        if spec_ctx.try_complete(job):
            wstats.jobs_processed += 1
            if stolen:
                wstats.jobs_stolen += 1
            master.complete(job, wstats, env.now - t0 + info["fetch_s"])
        return True

    while env.now < fail_at_s:
        job = yield from master.get_job()
        if job is None:
            backup = spec_ctx.pick_backup()
            if backup is None:
                break
            alive = yield from execute(backup, True)
            if not alive:
                wstats.finished_at = fail_at_s
                wstats.failed = True
                return
            continue
        spec_ctx.start(job, env.now)
        alive = yield from execute(job, False)
        if not alive:
            wstats.finished_at = fail_at_s
            wstats.failed = True
            return
    wstats.failed = env.now >= fail_at_s
    wstats.finished_at = min(env.now, fail_at_s) if wstats.failed else env.now


def _pipelined_worker_proc(
    env: SimEnv,
    net: FlowNetwork,
    topo: Topology,
    master: _SimMaster,
    cluster: SimClusterConfig,
    profile: AppSimProfile,
    wstats: WorkerStats,
    speed_factor: float,
    varmodel: VariabilityModel,
    cache: ChunkCache | None = None,
    tracer=None,
    worker_name: str = "",
    fail_at_s: float = math.inf,
    transfer: TransferSimModel | None = None,
    tuners: dict | None = None,
    stripe: tuple[int, int] | None = None,
    store_stalls: dict | None = None,
):
    """One simulated core with double-buffered prefetching.

    Mirrors the threaded engine's pipelined worker loop exactly: the
    core reserves job *N+1* from its master before processing job *N*
    and runs its fetch as a concurrent simulated process, so the fetch
    occupies the storage/WAN links while the core occupies its CPU.
    ``retrieval_s`` records only the residual stall; ``overlap_s`` the
    fetch time hidden under computation (their sum is the serial
    engine's retrieval bar).

    A finite ``fail_at_s`` kills the core at that instant, matching the
    serial worker's failure semantics: every job it holds uncompleted
    (the one being computed *and* the reserved, prefetching next job)
    returns to the head for reassignment; completed jobs stay folded
    into the preserved reduction object.
    """

    def die(jobs):
        requeued = False
        for j in jobs:
            if j is not None:
                master.scheduler.reassign(j)
                requeued = True
        if requeued:
            for m in master.peers:
                m.reopen()
        wstats.failed = True
        wstats.finished_at = fail_at_s

    def compute(job: Job):
        """Returns True if the job completed, False if the core died."""
        t0 = env.now
        base = job.n_units * profile.compute_s_per_unit
        base /= cluster.core_speed * speed_factor
        base /= varmodel.effective_speed(base)
        yield base
        if env.now > fail_at_s:
            return False
        wstats.processing_s += env.now - t0
        if tracer is not None:
            tracer.record(worker_name, "compute", t0, env.now, job.job_id,
                          job.location, job.location != cluster.location)
        wstats.jobs_processed += 1
        if job.location != cluster.location:
            wstats.jobs_stolen += 1
        master.complete(job, wstats, env.now - t0)
        return True

    job = yield from master.get_job()
    if job is None:
        wstats.finished_at = env.now
        return
    # The first fetch is unavoidably serial.
    info: dict = {}
    yield from _fetch_gen(env, net, topo, cluster, job, cache, wstats,
                          info, tracer, worker_name, transfer, tuners,
                          stripe, store_stalls)
    if env.now > fail_at_s:
        die([job])
        return
    wstats.retrieval_s += info["fetch_s"] - info["decode_s"]
    while True:
        next_job = yield from master.get_job()
        prefetch_done: Event | None = None
        next_info: dict = {}
        if next_job is not None:
            # The orphaned fetch process keeps draining its links if the
            # core dies mid-compute; it never touches the scheduler, so
            # reassigning next_job below stays safe.
            prefetch_done = env.process(
                _fetch_gen(env, net, topo, cluster, next_job, cache, wstats,
                           next_info, tracer, worker_name, transfer, tuners,
                           stripe, store_stalls)
            )
        completed = yield from compute(job)
        if not completed:
            die([job, next_job])
            return
        if next_job is None:
            break
        if prefetch_done.triggered:
            wstats.prefetch_hits += 1
            stall = 0.0
        else:
            wstats.prefetch_misses += 1
            t_wait = env.now
            yield prefetch_done
            stall = env.now - t_wait
        if env.now > fail_at_s:
            die([next_job])
            return
        wstats.retrieval_s += stall
        wstats.overlap_s += max(0.0, next_info["fetch_s"] - stall)
        job = next_job
    wstats.finished_at = env.now


def _cluster_proc(
    env: SimEnv,
    net: FlowNetwork,
    topo: Topology,
    cluster: SimClusterConfig,
    worker_events: list[Event],
    cstats: ClusterStats,
    robj_nbytes: int,
    params: ResourceParams,
    master: _SimMaster,
):
    """Cluster coordinator: barrier, combine, ship the reduction object.

    Intra-cluster combination merges the workers' reduction-object
    copies in a binary tree (``ceil(log2(n))`` sequential merge steps),
    so large objects (pagerank) charge a combination cost that grows
    with the core count -- one of the two effects capping pagerank's
    scalability in the paper (the other is the fixed WAN exchange).
    """
    yield all_of(env, worker_events)
    cstats.finished_at = env.now
    if all(w.failed for w in cstats.workers) and master.pool:
        # Every core died with jobs still prefetched in the master's
        # pool: hand them back to the head so another cluster recovers.
        while master.pool:
            master.scheduler.reassign(master.pool.pop())
        for m in master.peers:
            m.reopen()
    if cluster.n_cores > 1 and robj_nbytes > 0:
        depth = math.ceil(math.log2(cluster.n_cores))
        yield depth * robj_nbytes * params.merge_s_per_byte
    path = topo.robj_path(cluster.location)
    t0 = env.now
    if path.latency_s > 0:
        yield path.latency_s
    if path.links:
        yield net.transfer(path.links, robj_nbytes, path.per_flow_cap)
    cstats.robj_transfer_s = env.now - t0
    cstats.robj_nbytes = robj_nbytes


def simulate_run(
    index: DataIndex,
    clusters: list[SimClusterConfig],
    profile: AppSimProfile,
    params: ResourceParams = ResourceParams(),
    *,
    seed: int = 0,
    scheduler_factory=HeadScheduler,
    failures: list[FailureSpec] | None = None,
    stragglers: list[StragglerSpec] | None = None,
    speculation: bool = False,
    topology=None,
    site_sigmas: dict[str, float] | None = None,
    tracer=None,
    prefetch: bool = False,
    cache_nbytes: int = 0,
    caches: dict[str, ChunkCache] | None = None,
    transfer: TransferSimModel | None = None,
    adaptive_fetch: bool = False,
    autotune_params: AutotuneParams | None = None,
    pushdown=None,
    stripe: tuple[int, int] | None = None,
    store_stalls: dict | None = None,
) -> SimRunResult:
    """Simulate one complete cloud-bursting execution.

    The default two-site topology puts the head node at the local
    cluster when one exists, matching the paper's deployment; an
    all-cloud configuration hosts it in the cloud (so env-cloud pays no
    WAN for its global reduction).  Pass ``topology`` (any object with
    the :class:`~repro.sim.topology.Topology` interface, e.g. a
    :class:`~repro.sim.multisite.MultiSiteTopology`) for other layouts,
    and ``site_sigmas`` to override per-site variability.

    ``prefetch=True`` pipelines every core (double-buffered fetch of job
    N+1 under the compute of job N); ``cache_nbytes`` gives each cluster
    a byte-budgeted chunk cache, or pass ``caches`` (e.g. the previous
    iteration's :attr:`SimRunResult.caches`) to start warmed.  Prefetch
    composes with ``failures`` (a dying pipelined core returns both its
    current and its reserved-next job to the head, matching the live
    engine's crash containment) and with ``stragglers``; it cannot be
    combined with ``speculation``, because the pipelined worker has no
    backup-copy protocol -- a reserved-next job is owned by exactly one
    core, so LATE-style redundant execution does not apply to it.

    ``transfer`` (a :class:`~repro.sim.topology.TransferSimModel`)
    models a pre-compressed dataset: only encoded bytes cross the links
    and each chunk charges a decode cost on its worker.
    ``adaptive_fetch=True`` swaps the fixed per-cluster
    ``retrieval_threads`` for one AIMD autotuner per
    (cluster, data location) path -- the same controller the live
    engines use -- whose converged state lands in each cluster's
    ``stats.autotune``.

    ``pushdown`` models metadata-first retrieval: pass the app's
    :class:`~repro.core.api.GeneralizedReductionSpec` (or any object
    with ``relevant``/``priority`` over
    :class:`~repro.data.chunks.ChunkStats`) and the simulator applies
    the identical :func:`~repro.runtime.pushdown.plan_jobs` planning
    the live engines use before job-pool creation, so simulated and
    real runs agree on which chunks are pruned and on the wire bytes
    saved (``stats.bytes_pruned`` / ``pushdown_rows()``).

    ``stripe=(k, m)`` models erasure-coded chunk striping with
    fastest-k-of-n fragment retrieval (the counterpart of the live
    engines' ``EngineOptions(stripe=...)``): each chunk fetch becomes
    ``k`` racing fragment flows and completes at the *k*-th finish, so
    a seeded stall on one leg (``store_stalls``, mapping location ->
    :class:`~repro.storage.faults.FaultSpec`) is masked by a parity
    backup instead of gating the chunk.  The same counters the live
    fetcher keeps (``n_fragments``, ``n_parity_decodes``,
    ``fragments_wasted_bytes``) land in the worker stats so ablation
    rows line up across simulated and real runs.
    """
    if not clusters:
        raise ValueError("need at least one cluster")
    if stripe is not None:
        stripe = tuple(int(v) for v in stripe)  # type: ignore[assignment]
        if len(stripe) != 2 or stripe[0] < 1 or stripe[1] < 0 or sum(stripe) < 2:
            raise ValueError(
                f"stripe must be (k >= 1, m >= 0) with k + m >= 2, got {stripe}"
            )
    if prefetch and speculation:
        raise ValueError(
            "prefetch cannot be combined with speculation: the pipelined "
            "worker has no backup-copy protocol (failures are supported)"
        )
    run_caches: dict[str, ChunkCache] | None = None
    if caches is not None:
        run_caches = caches
        if cache_nbytes > 0:
            for c in clusters:
                run_caches.setdefault(c.name, ChunkCache(cache_nbytes))
    elif cache_nbytes > 0:
        run_caches = {c.name: ChunkCache(cache_nbytes) for c in clusters}
    env = SimEnv()
    net = FlowNetwork(env)
    if topology is not None:
        topo = topology
    else:
        head_location = (
            Topology.LOCAL
            if any(c.location == Topology.LOCAL for c in clusters)
            else Topology.CLOUD
        )
        topo = Topology(params, head_location)
    pushdown_plan = plan_jobs(
        index, pushdown, "prune" if pushdown is not None else None
    )
    scheduler = scheduler_factory(pushdown_plan.jobs)

    tuners: dict[tuple[str, str], AimdAutotuner] | None = None
    if adaptive_fetch:
        tuners = {
            (c.name, loc): AimdAutotuner(
                autotune_params, name=f"{c.name}->{loc}"
            )
            for c in clusters
            for loc in index.locations
        }

    # Map each failure spec to per-worker kill times (first n cores).
    fail_times: dict[str, list[float]] = {}
    for spec in failures or []:
        if spec.cluster not in {c.name for c in clusters}:
            raise ValueError(f"failure targets unknown cluster {spec.cluster!r}")
        fail_times.setdefault(spec.cluster, []).extend([spec.at_s] * spec.n_workers)

    # Map straggler specs to per-worker slowdown factors (last n cores,
    # so failures and stragglers target disjoint cores by default).
    slow_factors: dict[str, list[float]] = {}
    for sspec in stragglers or []:
        if sspec.cluster not in {c.name for c in clusters}:
            raise ValueError(f"straggler targets unknown cluster {sspec.cluster!r}")
        slow_factors.setdefault(sspec.cluster, []).extend(
            [sspec.slowdown] * sspec.n_workers
        )
    spec_ctx = _SpeculationContext(enabled=speculation)

    stats = RunStats()
    pushdown_plan.apply_to(stats)
    cluster_events: list[Event] = []
    masters: list[_SimMaster] = []
    for ci, cluster in enumerate(clusters):
        if site_sigmas is not None and cluster.location in site_sigmas:
            sigma = site_sigmas[cluster.location]
        elif cluster.location == Topology.LOCAL:
            sigma = params.local_speed_sigma
        else:
            sigma = params.cloud_speed_sigma
        varmodel = VariabilityModel(VariabilityParams(sigma=sigma), seed=seed * 1009 + ci)
        master = _SimMaster(
            env, scheduler, cluster.location, params.batch_size,
            topo.refill_rtt(cluster.location),
        )
        masters.append(master)
        cstats = ClusterStats(cluster.name, cluster.location)
        stats.clusters[cluster.name] = cstats
        kill_times = fail_times.get(cluster.name, [])
        if len(kill_times) > cluster.n_cores:
            raise ValueError(
                f"cannot fail {len(kill_times)} workers of {cluster.name!r} "
                f"({cluster.n_cores} cores)"
            )
        slows = slow_factors.get(cluster.name, [])
        if len(slows) > cluster.n_cores:
            raise ValueError(
                f"cannot slow {len(slows)} workers of {cluster.name!r} "
                f"({cluster.n_cores} cores)"
            )
        cache = run_caches.get(cluster.name) if run_caches is not None else None
        worker_events = []
        for wid in range(cluster.n_cores):
            wstats = WorkerStats()
            cstats.workers.append(wstats)
            speed = varmodel.core_speed_factor()
            slow_idx = wid - (cluster.n_cores - len(slows))
            if slow_idx >= 0:
                speed *= slows[slow_idx]
            fail_at = kill_times[wid] if wid < len(kill_times) else math.inf
            if prefetch:
                proc = _pipelined_worker_proc(
                    env, net, topo, master, cluster, profile,
                    wstats, speed, varmodel, cache,
                    tracer, f"{cluster.name}/{wid}", fail_at,
                    transfer, tuners, stripe, store_stalls,
                )
            else:
                proc = _worker_proc(
                    env, net, topo, master, cluster, profile,
                    wstats, speed, varmodel, fail_at, spec_ctx,
                    tracer, f"{cluster.name}/{wid}", cache,
                    transfer, tuners, stripe, store_stalls,
                )
            worker_events.append(env.process(proc))
        cluster_events.append(
            env.process(
                _cluster_proc(
                    env, net, topo, cluster, worker_events, cstats,
                    profile.robj_nbytes, params, master,
                )
            )
        )

    for m in masters:
        m.peers = masters

    # Head: wait for every cluster's object, then merge them.
    def _head_proc():
        yield all_of(env, cluster_events)
        merge = params.merge_fixed_s
        merge += len(clusters) * profile.robj_nbytes * params.merge_s_per_byte
        yield merge

    env.process(_head_proc())
    env.run()

    if not scheduler.all_done:
        raise RuntimeError(
            "simulation ended with unprocessed jobs (did every worker fail?)"
        )

    end = env.now
    stats.total_s = end
    stats.n_requeued_jobs = getattr(scheduler, "n_reassigned", 0)
    processing_end = max(c.finished_at for c in stats.clusters.values())
    stats.processing_end_s = processing_end
    stats.global_reduction_s = end - processing_end
    for cstats in stats.clusters.values():
        cstats.idle_s = max(0.0, processing_end - cstats.finished_at)
        for w in cstats.workers:
            w.sync_s = max(0.0, end - w.finished_at)
    if tuners is not None:
        for (cname, loc), tuner in tuners.items():
            if tuner.n_samples:
                stats.clusters[cname].autotune[loc] = tuner.snapshot()
    return SimRunResult(
        stats=stats, end_time_s=end,
        wasted_executions=spec_ctx.wasted_executions, caches=run_caches,
    )
