"""EC2 performance-variability model.

"In our experience running experiments, the virtualized environment of
EC2 can occasionally cause variability in performance."  We model two
effects:

* a **static per-core speed factor**, lognormally distributed around 1,
  capturing heterogeneous placement (noisy neighbours, differing
  underlying hardware) -- the cloud draws with a larger sigma than the
  dedicated local cluster;
* optional **transient slowdown episodes**: during an episode a core
  runs at a reduced speed.  Episodes are sampled per core as alternating
  ok/slow intervals, and queried as an *effective speed multiplier* over
  a processing interval.

The paper notes its pooling-based load balancing absorbs these
fluctuations; the variability ablation benchmark shows exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VariabilityParams", "VariabilityModel"]


@dataclass(frozen=True)
class VariabilityParams:
    """Distribution parameters for one site's cores."""

    sigma: float = 0.0            # lognormal sigma of the static speed factor
    episode_rate: float = 0.0     # slowdown episodes per simulated second
    episode_duration_s: float = 30.0
    episode_slowdown: float = 0.5  # speed multiplier while inside an episode


class VariabilityModel:
    """Deterministic (seeded) source of per-core speed factors."""

    def __init__(self, params: VariabilityParams, seed: int = 0) -> None:
        if params.sigma < 0 or params.episode_rate < 0:
            raise ValueError("sigma and episode_rate must be non-negative")
        if not 0 < params.episode_slowdown <= 1:
            raise ValueError("episode_slowdown must be in (0, 1]")
        self.params = params
        self._rng = np.random.default_rng(seed)

    def core_speed_factor(self) -> float:
        """Static speed multiplier for one core (mean approximately 1)."""
        s = self.params.sigma
        if s == 0:
            return 1.0
        # Mean-one lognormal: exp(N(-s^2/2, s^2)).
        return float(np.exp(self._rng.normal(-0.5 * s * s, s)))

    def effective_speed(self, duration_s: float) -> float:
        """Mean speed multiplier over a processing interval.

        Approximates episode overlap by the expected fraction of the
        interval spent slowed down (memoryless episodes).
        """
        p = self.params
        if p.episode_rate == 0 or duration_s <= 0:
            return 1.0
        busy_frac = min(1.0, p.episode_rate * p.episode_duration_s)
        # Sample whether this interval hits an episode at all; longer
        # intervals smooth toward the expectation.
        expected = 1.0 - busy_frac * (1.0 - p.episode_slowdown)
        jitter = float(self._rng.uniform(0.9, 1.1))
        return float(np.clip(expected * jitter, p.episode_slowdown, 1.0))
