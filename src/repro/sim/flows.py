"""Fluid flow network: bandwidth sharing with max-min fairness.

Every data movement in the simulator -- a chunk read from the local
storage node, a ranged GET from S3, a reduction-object upload over the
WAN -- is a *flow* traversing one or more capacitated links.  Active
flows share link capacity by **progressive filling (max-min fairness)**,
the standard fluid model of TCP-like sharing: the flow rate is the
largest allocation such that no link is oversubscribed and no flow can
gain rate without another losing more.

Rates are recomputed whenever the set of active flows changes, and each
recomputation first advances every flow's progress at its previous rate,
so completion times are exact under the piecewise-constant-rate model.

Per-flow ``max_rate`` caps model S3's per-connection throughput ceiling;
a slave fetching with ``r`` retrieval threads simply opens a flow with
an ``r`` times larger cap.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.sim.events import Event, SimEnv

__all__ = ["Link", "Flow", "FlowNetwork"]

_EPS_BYTES = 1e-6


def _done_eps(flow: "Flow") -> float:
    """Completion threshold: absolute floor plus a relative term.

    Large transfers accumulate rounding in ``remaining -= rate * dt``
    proportional to their size; treating anything below ~1e-9 of the
    original volume as finished keeps completion times exact to within
    double precision without ever stranding a flow.
    """
    return max(_EPS_BYTES, 1e-9 * flow.nbytes)


class Link:
    """A capacitated network or storage resource (bytes/second)."""

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"link {name!r} capacity must be positive")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:
        return f"Link({self.name!r}, {self.capacity:g} B/s)"


class Flow:
    """One in-flight transfer."""

    __slots__ = ("links", "remaining", "max_rate", "rate", "event", "nbytes", "started_at")

    def __init__(self, links: tuple[Link, ...], nbytes: float, max_rate: float,
                 event: Event, started_at: float) -> None:
        self.links = links
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.max_rate = max_rate
        self.rate = 0.0
        self.event = event
        self.started_at = started_at


class FlowNetwork:
    """Manages active flows and their fair-share rates."""

    def __init__(self, env: SimEnv) -> None:
        self.env = env
        self.flows: list[Flow] = []
        self._last_update = 0.0
        self._wake_seq = 0

    def transfer(
        self,
        links: Sequence[Link],
        nbytes: float,
        max_rate: float = math.inf,
    ) -> Event:
        """Start a flow of ``nbytes`` over ``links``; returns its done event.

        Either ``max_rate`` or at least one finite-capacity link must
        bound the flow (an unbounded flow would complete instantly,
        which is almost always a modelling error).
        """
        event = self.env.event()
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            event.succeed()
            return event
        if math.isinf(max_rate) and not links:
            raise ValueError("flow must be bounded by links or max_rate")
        if max_rate <= 0:
            raise ValueError("max_rate must be positive")
        flow = Flow(tuple(links), nbytes, max_rate, event, self.env.now)
        self._advance_progress()
        self.flows.append(flow)
        self._reallocate_and_schedule()
        return event

    # -- internals -----------------------------------------------------------

    def _advance_progress(self) -> None:
        """Apply progress at current rates since the last update."""
        dt = self.env.now - self._last_update
        if dt > 0:
            for f in self.flows:
                f.remaining -= f.rate * dt
        self._last_update = self.env.now

    def _allocate_rates(self) -> None:
        """Progressive-filling max-min fair allocation."""
        unfrozen = set(self.flows)
        residual: dict[Link, float] = {}
        counts: dict[Link, int] = {}
        for f in self.flows:
            for link in f.links:
                residual.setdefault(link, link.capacity)
                counts[link] = counts.get(link, 0) + 1
        while unfrozen:
            # Fair share currently offered by each loaded link.
            limit = math.inf
            for link, cnt in counts.items():
                if cnt > 0:
                    limit = min(limit, residual[link] / cnt)
            # Flows capped below the link-driven limit freeze first.
            capped = [f for f in unfrozen if f.max_rate <= limit + 1e-15]
            if capped:
                for f in capped:
                    f.rate = f.max_rate
                    self._freeze(f, unfrozen, residual, counts)
                continue
            if math.isinf(limit):
                # Only possible if all remaining flows have no links; they
                # were required to carry a finite max_rate, so this is a bug.
                raise RuntimeError("unbounded flows in allocation")
            # Freeze every flow crossing a bottleneck link at the limit.
            bottlenecks = {
                link
                for link, cnt in counts.items()
                if cnt > 0 and residual[link] / cnt <= limit + 1e-15
            }
            froze_any = False
            for f in list(unfrozen):
                if any(link in bottlenecks for link in f.links):
                    f.rate = limit
                    self._freeze(f, unfrozen, residual, counts)
                    froze_any = True
            if not froze_any:  # numerical safety net
                for f in list(unfrozen):
                    f.rate = limit
                    self._freeze(f, unfrozen, residual, counts)

    @staticmethod
    def _freeze(flow: Flow, unfrozen: set, residual: dict, counts: dict) -> None:
        unfrozen.discard(flow)
        for link in flow.links:
            residual[link] = max(0.0, residual[link] - flow.rate)
            counts[link] -= 1

    def _reallocate_and_schedule(self) -> None:
        """Complete finished flows, recompute rates, schedule next wake-up."""
        finished = [f for f in self.flows if f.remaining <= _done_eps(f)]
        if finished:
            self.flows = [f for f in self.flows if f.remaining > _done_eps(f)]
            for f in finished:
                f.event.succeed()
        if self.flows:
            self._allocate_rates()
            next_done = min(f.remaining / f.rate for f in self.flows)
            # Guarantee the clock actually advances: below ~1 ns the
            # addition ``now + next_done`` can round to ``now`` and stall.
            next_done = max(next_done, 1e-9)
            self._wake_seq += 1
            seq = self._wake_seq

            def wake() -> None:
                if seq != self._wake_seq:
                    return  # superseded by a later reallocation
                self._advance_progress()
                self._reallocate_and_schedule()

            self.env.call_in(next_done, wake)
        else:
            self._wake_seq += 1  # cancel any pending wake-up
