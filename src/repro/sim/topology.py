"""Simulated network/storage topology.

Two sites -- the local cluster and the cloud -- with:

* a local storage node (finite disk/NIC bandwidth) serving the cluster;
* the S3 service (aggregate bandwidth + per-connection caps) serving the
  cloud internally at full speed;
* a WAN between the sites, crossed by local workers stealing S3-resident
  jobs, by cloud workers stealing locally-stored jobs, and by
  reduction-object uploads from remote masters to the head node.

``fetch_path`` returns the link set, request latency, and per-flow rate
cap for a worker at one site reading data at another, so the simulator's
worker loop stays topology-agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.calibration import ResourceParams
from repro.sim.flows import Link

__all__ = ["FetchPath", "TransferSimModel", "Topology"]


@dataclass(frozen=True)
class FetchPath:
    """How one transfer must be routed."""

    links: tuple[Link, ...]
    latency_s: float
    per_flow_cap: float  # bytes/s ceiling for this single transfer


@dataclass(frozen=True)
class TransferSimModel:
    """Models the transfer layer's codec in the simulator.

    The DES never touches bytes, so compression is two scalars: what
    fraction of a chunk's logical size actually crosses the links
    (``compress_ratio`` = wire/logical), and the per-logical-byte CPU
    cost of decoding the frame on the worker (``decode_s_per_byte``).
    Defaults for each codec come from measuring the real codecs on the
    organizer's binary record files (:func:`for_codec`).
    """

    codec: str = "identity"
    compress_ratio: float = 1.0
    decode_s_per_byte: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.compress_ratio <= 1.0:
            raise ValueError("compress_ratio must be in (0, 1]")
        if self.decode_s_per_byte < 0:
            raise ValueError("decode_s_per_byte must be non-negative")

    def wire_nbytes(self, logical_nbytes: int) -> int:
        """Encoded size travelling the links for a chunk of this size."""
        if logical_nbytes <= 0:
            return 0
        return max(1, math.ceil(logical_nbytes * self.compress_ratio))

    def decode_s(self, logical_nbytes: int) -> float:
        """CPU seconds the worker spends decoding the chunk's frame."""
        return logical_nbytes * self.decode_s_per_byte

    @classmethod
    def for_codec(cls, codec: str) -> "TransferSimModel":
        """Calibrated defaults per codec (numeric record data).

        Ratios/decode rates are round numbers from the real codecs on
        the repro's binary unit files: zlib deflates to roughly half,
        shuffle+deflate (byte-transposed fixed-stride records) well
        under half, lz4 trades ratio for a much cheaper decode.
        """
        defaults = {
            "identity": cls("identity", 1.0, 0.0),
            "zlib": cls("zlib", 0.55, 1 / (400e6)),     # inflate ~400 MB/s
            "lz4": cls("lz4", 0.70, 1 / (2e9)),         # ~2 GB/s decode
            "shuffle": cls("shuffle", 0.40, 1 / (300e6)),  # unshuffle + inflate
        }
        try:
            return defaults[codec]
        except KeyError:
            raise ValueError(
                f"unknown codec {codec!r}; expected one of {sorted(defaults)}"
            ) from None


class Topology:
    """Link objects and routing rules for the two-site environment."""

    LOCAL = "local"
    CLOUD = "cloud"

    def __init__(self, params: ResourceParams, head_location: str) -> None:
        if head_location not in (self.LOCAL, self.CLOUD):
            raise ValueError(f"unknown head location {head_location!r}")
        self.params = params
        self.head_location = head_location
        self.local_disk = Link("local-disk", params.local_disk_bw)
        self.s3 = Link("s3-service", params.s3_aggregate_bw)
        self.wan = Link("wan", params.wan_bw)

    def fetch_path(self, worker_site: str, data_site: str, retrieval_threads: int) -> FetchPath:
        """Route a chunk fetch by a worker at ``worker_site``.

        Per-flow caps model per-connection ceilings multiplied by the
        worker's retrieval-thread count (the paper's multi-threaded
        retrieval optimization).
        """
        if retrieval_threads <= 0:
            raise ValueError("retrieval_threads must be positive")
        p = self.params
        if data_site == self.LOCAL and worker_site == self.LOCAL:
            return FetchPath((self.local_disk,), 0.0, p.local_per_worker_bw)
        if data_site == self.CLOUD and worker_site == self.CLOUD:
            return FetchPath(
                (self.s3,),
                p.s3_request_latency_s,
                p.s3_per_connection_bw * retrieval_threads,
            )
        if data_site == self.CLOUD and worker_site == self.LOCAL:
            # Ranged GETs from S3 across the WAN (job stealing by the cluster).
            return FetchPath(
                (self.s3, self.wan),
                p.s3_request_latency_s + p.wan_latency_s,
                p.wan_per_connection_bw * retrieval_threads,
            )
        if data_site == self.LOCAL and worker_site == self.CLOUD:
            # Cloud instances reading the cluster's storage node.
            return FetchPath(
                (self.local_disk, self.wan),
                p.wan_latency_s,
                p.wan_per_connection_bw * retrieval_threads,
            )
        raise ValueError(f"no route from {worker_site!r} to {data_site!r}")

    def robj_path(self, cluster_site: str) -> FetchPath:
        """Route a reduction-object upload from a master to the head."""
        if cluster_site == self.head_location:
            # Intra-cluster: effectively free next to WAN costs.
            return FetchPath((), 0.0, math.inf)
        return FetchPath((self.wan,), self.params.wan_latency_s, math.inf)

    def refill_rtt(self, cluster_site: str) -> float:
        """Master <-> head control round-trip for a job-batch request."""
        if cluster_site == self.head_location:
            return self.params.local_refill_rtt_s
        return self.params.cloud_refill_rtt_s
