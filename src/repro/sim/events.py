"""Discrete-event simulation kernel.

A minimal, deterministic process-based DES (in the style of SimPy):
processes are Python generators that yield either a **delay in seconds**
(a timeout) or an :class:`Event` to wait on.  The kernel is what lets us
run the paper's multi-cluster experiments -- hundreds of cores, WAN
links, S3 -- faithfully on a single machine, with simulated seconds
completely decoupled from wall-clock seconds.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), so runs
are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

__all__ = ["Event", "SimEnv", "all_of"]


class Event:
    """One-shot occurrence processes can wait on."""

    __slots__ = ("env", "_callbacks", "triggered", "value")

    def __init__(self, env: "SimEnv") -> None:
        self.env = env
        self._callbacks: list[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event; waiting processes resume at the current time."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.env.call_in(0.0, lambda cb=cb: cb(self.value))
        return self

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        if self.triggered:
            self.env.call_in(0.0, lambda: cb(self.value))
        else:
            self._callbacks.append(cb)


class SimEnv:
    """Event queue and virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def call_at(self, t: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute simulated time ``t``."""
        if t < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past ({t} < {self.now})")
        self._seq += 1
        heapq.heappush(self._heap, (max(t, self.now), self._seq, fn))

    def call_in(self, dt: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``dt`` simulated seconds from now."""
        if dt < 0:
            raise ValueError("delay must be non-negative")
        self.call_at(self.now + dt, fn)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator) -> Event:
        """Run a process generator; returns its completion event.

        The generator may yield a float/int (sleep that many simulated
        seconds) or an :class:`Event` (resume when it triggers, receiving
        its value).  ``return x`` inside the generator becomes the value
        of the completion event.
        """
        done = self.event()

        def advance(send_value: Any = None) -> None:
            try:
                item = gen.send(send_value)
            except StopIteration as stop:
                done.succeed(stop.value)
                return
            if isinstance(item, (int, float)):
                if item < 0:
                    raise ValueError("process yielded a negative delay")
                self.call_in(float(item), advance)
            elif isinstance(item, Event):
                item.add_callback(advance)
            else:
                raise TypeError(
                    f"process yielded {type(item).__name__}; expected float or Event"
                )

        advance()
        return done

    def run(self, until: float | None = None) -> None:
        """Execute events until the queue drains (or simulated ``until``)."""
        while self._heap:
            t, _seq, fn = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = t
            fn()


def all_of(env: SimEnv, events: Iterable[Event]) -> Event:
    """Event that triggers once every input event has triggered.

    Its value is the list of input values in input order.
    """
    events = list(events)
    done = env.event()
    if not events:
        env.call_in(0.0, lambda: done.succeed([]))
        return done
    results: list[Any] = [None] * len(events)
    pending = len(events)

    def make_cb(i: int) -> Callable[[Any], None]:
        def cb(value: Any) -> None:
            nonlocal pending
            results[i] = value
            pending -= 1
            if pending == 0:
                done.succeed(results)

        return cb

    for i, ev in enumerate(events):
        ev.add_callback(make_cb(i))
    return done
