"""Cost-model calibration.

Absolute resource rates cannot be copied from the paper (its testbed is
gone); these constants are chosen so the *relationships* the paper
reports hold: knn is retrieval-dominated, kmeans computation-dominated,
pagerank balanced with a large reduction object; env-cloud retrieval
beats env-local (multi-threaded S3 GETs); remote retrieval grows with
the S3 data share; and hybrid slowdowns / scaling efficiencies land in
the paper's ranges.  EXPERIMENTS.md records paper-vs-measured values.

All bandwidths are bytes/second, latencies seconds, sizes bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "MB",
    "GB",
    "ResourceParams",
    "AppSimProfile",
    "APP_PROFILES",
    "PAPER_DATASET_NBYTES",
    "PAPER_N_FILES",
    "PAPER_N_JOBS",
]

MB = 1 << 20
GB = 1 << 30

#: The paper's dataset layout: 12 GB split into 32 files.  The OCR'd text
#: reads "96" jobs, but trailing digits are dropped throughout that copy
#: ("July 21" for July 2010, "In 27" for 2007); 960 jobs (12.8 MB chunks,
#: 30 per file) matches the companion MATE-EC2 paper's configuration and
#: gives the job granularity the reported load-balancing quality implies.
PAPER_DATASET_NBYTES = 12 * GB
PAPER_N_FILES = 32
PAPER_N_JOBS = 960


@dataclass(frozen=True)
class ResourceParams:
    """Rates and latencies of the simulated environment."""

    # Local cluster storage node (dedicated SATA array behind a NIC).
    local_disk_bw: float = 450 * MB
    #: Per-worker ceiling when reading the local storage node (compute-node
    #: NIC share: ~1 GbE per 8-core node).
    local_per_worker_bw: float = 12.5 * MB

    # Cloud object store (S3).
    s3_aggregate_bw: float = 480 * MB
    #: Single GET connection cap; multiplied by retrieval threads.
    s3_per_connection_bw: float = 1.8 * MB
    s3_request_latency_s: float = 0.06

    # Inter-site WAN (campus <-> AWS).
    wan_bw: float = 60 * MB
    wan_latency_s: float = 0.04
    #: Single cross-WAN connection cap (again multiplied by threads).
    wan_per_connection_bw: float = 1.2 * MB

    # Compute.
    local_core_speed: float = 1.0
    #: m1.large elastic compute units are slower than the local Xeons;
    #: the paper needed 22 cloud cores to match 16 local ones.
    cloud_core_speed: float = 16.0 / 22.0

    # Performance variability (lognormal sigma of per-core speed).
    local_speed_sigma: float = 0.02
    cloud_speed_sigma: float = 0.08

    # Control plane.
    local_refill_rtt_s: float = 0.001
    cloud_refill_rtt_s: float = 0.08
    batch_size: int = 4

    # Global reduction.
    merge_s_per_byte: float = 5.0e-9
    merge_fixed_s: float = 0.05

    def scaled(self, **overrides) -> "ResourceParams":
        """Copy with selected fields replaced (for ablations)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class AppSimProfile:
    """Per-application cost profile for the simulator.

    ``compute_s_per_unit`` is seconds of CPU per data unit on a
    reference (local) core; ``robj_nbytes`` the reduction-object size
    each cluster ships during global reduction.
    """

    name: str
    unit_nbytes: int
    compute_s_per_unit: float
    robj_nbytes: int
    #: Cloud core count that matches ``local_cores`` of local throughput
    #: in the paper's hybrid setups (kmeans used 22 vs 16).
    hybrid_cloud_cores: int = 16
    cloud_only_cores: int = 32

    @property
    def dataset_units(self) -> int:
        return PAPER_DATASET_NBYTES // self.unit_nbytes

    @property
    def units_per_job(self) -> int:
        return self.dataset_units // PAPER_N_JOBS


#: Calibrated profiles for the paper's three applications.
#:
#: knn: 64-byte points (8 x f64), low compute -> retrieval-dominated.
#: kmeans: same points, heavy compute -> computation-dominated.
#: pagerank: 16-byte edges, medium compute, 32 MB rank-vector robj.
APP_PROFILES: dict[str, AppSimProfile] = {
    "knn": AppSimProfile(
        name="knn",
        unit_nbytes=64,
        compute_s_per_unit=4.2e-7,
        robj_nbytes=64 * 10 + 80,  # k=10 neighbours, coords + scores
        hybrid_cloud_cores=16,
        cloud_only_cores=32,
    ),
    "kmeans": AppSimProfile(
        name="kmeans",
        unit_nbytes=64,
        compute_s_per_unit=4.0e-5,
        robj_nbytes=10 * (8 + 2) * 8,  # k=10 centroid sums + counts + sse
        hybrid_cloud_cores=22,
        cloud_only_cores=44,
    ),
    "pagerank": AppSimProfile(
        name="pagerank",
        unit_nbytes=16,
        compute_s_per_unit=1.25e-6,
        # 750M edges imply a ~30M-page web graph; the rank-vector robj is
        # then ~240 MB, the "very large reduction object" whose exchange
        # dominates pagerank's sync time and caps its scalability.
        robj_nbytes=240 * MB,
        hybrid_cloud_cores=16,
        cloud_only_cores=32,
    ),
}
