"""Arbitrary multi-site topologies.

The paper: "our solution will also be applicable if the data and/or
processing power is spread across two different cloud providers."  This
module generalizes the two-site model to any number of sites -- e.g. a
campus cluster plus AWS plus a second provider -- each with its own
storage service, per-connection ceilings, core speeds, and variability,
connected by per-pair WAN links.

The :class:`MultiSiteTopology` implements the same routing interface as
:class:`~repro.sim.topology.Topology`, so the unchanged worker/master/
head simulation code (and the unchanged scheduling policy) runs on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.data.index import DataIndex
from repro.runtime.scheduler import HeadScheduler
from repro.sim.calibration import AppSimProfile, MB, ResourceParams
from repro.sim.flows import Link
from repro.sim.simrun import SimClusterConfig, SimRunResult, simulate_run
from repro.sim.topology import FetchPath

__all__ = [
    "SiteSpec",
    "InterSiteLink",
    "MultiSiteTopology",
    "simulate_multisite",
    "default_three_site_topology",
]


@dataclass(frozen=True)
class SiteSpec:
    """One site: a storage service plus (optionally) compute."""

    name: str
    storage_bw: float                    # aggregate storage bandwidth (B/s)
    per_worker_bw: float = math.inf      # intra-site per-worker ceiling
    per_connection_bw: float = math.inf  # per-connection ceiling for remote readers
    request_latency_s: float = 0.0
    core_speed: float = 1.0
    speed_sigma: float = 0.05
    refill_rtt_s: float = 0.001

    def __post_init__(self) -> None:
        if self.storage_bw <= 0:
            raise ValueError(f"site {self.name!r} storage_bw must be positive")
        if self.core_speed <= 0:
            raise ValueError(f"site {self.name!r} core_speed must be positive")


@dataclass(frozen=True)
class InterSiteLink:
    """Symmetric WAN link between two sites."""

    a: str
    b: str
    bw: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("inter-site link must join two distinct sites")
        if self.bw <= 0:
            raise ValueError("link bandwidth must be positive")

    @property
    def pair(self) -> frozenset:
        return frozenset((self.a, self.b))


class MultiSiteTopology:
    """Routing over N sites (same interface as the two-site Topology)."""

    def __init__(
        self,
        sites: list[SiteSpec],
        links: list[InterSiteLink],
        head_location: str,
    ) -> None:
        if not sites:
            raise ValueError("need at least one site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ValueError("site names must be unique")
        self.sites = {s.name: s for s in sites}
        if head_location not in self.sites:
            raise ValueError(f"head location {head_location!r} is not a site")
        self.head_location = head_location
        self._storage: dict[str, Link] = {
            s.name: Link(f"{s.name}-storage", s.storage_bw) for s in sites
        }
        self._wan: dict[frozenset, Link] = {}
        self._wan_latency: dict[frozenset, float] = {}
        for link in links:
            if link.a not in self.sites or link.b not in self.sites:
                raise ValueError(f"link {link.a}-{link.b} references unknown site")
            if link.pair in self._wan:
                raise ValueError(f"duplicate link between {link.a} and {link.b}")
            self._wan[link.pair] = Link(f"wan-{link.a}-{link.b}", link.bw)
            self._wan_latency[link.pair] = link.latency_s

    def _wan_between(self, a: str, b: str) -> tuple[Link, float]:
        pair = frozenset((a, b))
        if pair not in self._wan:
            raise ValueError(f"no inter-site link between {a!r} and {b!r}")
        return self._wan[pair], self._wan_latency[pair]

    # -- Topology interface ---------------------------------------------------

    def fetch_path(self, worker_site: str, data_site: str, retrieval_threads: int) -> FetchPath:
        if retrieval_threads <= 0:
            raise ValueError("retrieval_threads must be positive")
        if worker_site not in self.sites or data_site not in self.sites:
            raise ValueError(f"unknown site in route {worker_site!r} -> {data_site!r}")
        data = self.sites[data_site]
        if worker_site == data_site:
            cap = data.per_worker_bw
            if math.isinf(cap):
                cap = data.per_connection_bw * retrieval_threads
            return FetchPath((self._storage[data_site],), data.request_latency_s, cap)
        wan, wan_latency = self._wan_between(worker_site, data_site)
        cap = data.per_connection_bw * retrieval_threads
        return FetchPath(
            (self._storage[data_site], wan),
            data.request_latency_s + wan_latency,
            cap,
        )

    def robj_path(self, cluster_site: str) -> FetchPath:
        if cluster_site == self.head_location:
            return FetchPath((), 0.0, math.inf)
        wan, latency = self._wan_between(cluster_site, self.head_location)
        return FetchPath((wan,), latency, math.inf)

    def refill_rtt(self, cluster_site: str) -> float:
        if cluster_site == self.head_location:
            return self.sites[cluster_site].refill_rtt_s
        _, latency = self._wan_between(cluster_site, self.head_location)
        return self.sites[cluster_site].refill_rtt_s + 2 * latency

    def site_sigmas(self) -> dict[str, float]:
        return {name: s.speed_sigma for name, s in self.sites.items()}


def simulate_multisite(
    index: DataIndex,
    topology: MultiSiteTopology,
    cores: dict[str, int],
    profile: AppSimProfile,
    params: ResourceParams | None = None,
    *,
    retrieval_threads: int = 8,
    seed: int = 0,
    scheduler_factory=HeadScheduler,
    transfer=None,
    adaptive_fetch: bool = False,
    autotune_params=None,
) -> SimRunResult:
    """Simulate a run over an arbitrary multi-site topology.

    ``cores`` maps site name -> core count (sites may hold data without
    compute, and vice versa).  The index's chunk locations must all be
    sites of the topology.  ``transfer``/``adaptive_fetch``/
    ``autotune_params`` model the WAN transfer layer exactly as in
    :func:`~repro.sim.simrun.simulate_run`.
    """
    params = params or ResourceParams()
    unknown = set(index.locations) - set(topology.sites)
    if unknown:
        raise ValueError(f"index references unknown sites: {sorted(unknown)}")
    clusters = []
    for site, n in cores.items():
        if site not in topology.sites:
            raise ValueError(f"cores assigned to unknown site {site!r}")
        if n > 0:
            clusters.append(
                SimClusterConfig(
                    name=site,
                    location=site,
                    n_cores=n,
                    core_speed=topology.sites[site].core_speed,
                    retrieval_threads=retrieval_threads,
                )
            )
    return simulate_run(
        index, clusters, profile, params,
        seed=seed,
        scheduler_factory=scheduler_factory,
        topology=topology,
        site_sigmas=topology.site_sigmas(),
        transfer=transfer,
        adaptive_fetch=adaptive_fetch,
        autotune_params=autotune_params,
    )


def default_three_site_topology(head: str = "campus") -> MultiSiteTopology:
    """A campus cluster plus two cloud providers (example configuration)."""
    sites = [
        SiteSpec("campus", storage_bw=450 * MB, per_worker_bw=12.5 * MB,
                 request_latency_s=0.0, core_speed=1.0, speed_sigma=0.02),
        SiteSpec("aws", storage_bw=480 * MB, per_connection_bw=1.8 * MB,
                 request_latency_s=0.06, core_speed=16 / 22, speed_sigma=0.08),
        SiteSpec("azure", storage_bw=360 * MB, per_connection_bw=1.5 * MB,
                 request_latency_s=0.08, core_speed=0.8, speed_sigma=0.10),
    ]
    links = [
        InterSiteLink("campus", "aws", bw=60 * MB, latency_s=0.04),
        InterSiteLink("campus", "azure", bw=45 * MB, latency_s=0.05),
        InterSiteLink("aws", "azure", bw=80 * MB, latency_s=0.03),
    ]
    return MultiSiteTopology(sites, links, head_location=head)
