"""Discrete-event simulator: kernel, flows, topology, calibrated runs."""

from repro.sim.calibration import (
    APP_PROFILES,
    GB,
    MB,
    PAPER_DATASET_NBYTES,
    PAPER_N_FILES,
    PAPER_N_JOBS,
    AppSimProfile,
    ResourceParams,
)
from repro.sim.elastic import ElasticPolicy, ElasticRunResult, simulate_elastic_run
from repro.sim.events import Event, SimEnv, all_of
from repro.sim.flows import Flow, FlowNetwork, Link
from repro.sim.multisite import (
    InterSiteLink,
    MultiSiteTopology,
    SiteSpec,
    default_three_site_topology,
    simulate_multisite,
)
from repro.sim.simrun import (
    FailureSpec,
    SimClusterConfig,
    SimRunResult,
    StragglerSpec,
    simulate_run,
)
from repro.sim.topology import FetchPath, Topology, TransferSimModel
from repro.sim.trace import Span, Tracer, render_gantt
from repro.sim.variability import VariabilityModel, VariabilityParams

__all__ = [
    "APP_PROFILES",
    "GB",
    "MB",
    "PAPER_DATASET_NBYTES",
    "PAPER_N_FILES",
    "PAPER_N_JOBS",
    "AppSimProfile",
    "ResourceParams",
    "ElasticPolicy",
    "ElasticRunResult",
    "simulate_elastic_run",
    "Event",
    "SimEnv",
    "all_of",
    "Flow",
    "FlowNetwork",
    "Link",
    "FailureSpec",
    "InterSiteLink",
    "MultiSiteTopology",
    "SiteSpec",
    "default_three_site_topology",
    "simulate_multisite",
    "SimClusterConfig",
    "SimRunResult",
    "StragglerSpec",
    "simulate_run",
    "FetchPath",
    "TransferSimModel",
    "Topology",
    "VariabilityModel",
    "VariabilityParams",
    "Span",
    "Tracer",
    "render_gantt",
]
