"""Execution tracing and ASCII Gantt rendering.

A :class:`Tracer` passed to :func:`repro.sim.simrun.simulate_run`
records one span per worker activity (fetch / compute), giving a
complete timeline of the run -- which worker fetched which chunk from
which site, when, and for how long.  ``render_gantt`` draws the
timeline as text (``.`` idle, ``=`` fetch, ``#`` compute, ``%`` stolen
fetch), which is how the examples visualize scheduling behaviour
without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Span", "Tracer", "render_gantt"]


@dataclass(frozen=True)
class Span:
    """One traced activity interval."""

    worker: str     # "cluster/worker-index"
    kind: str       # "fetch" or "compute"
    t0: float
    t1: float
    job_id: int
    data_location: str
    stolen: bool

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class Tracer:
    """Collects spans during a simulated run."""

    spans: list[Span] = field(default_factory=list)

    def record(self, worker: str, kind: str, t0: float, t1: float,
               job_id: int, data_location: str, stolen: bool) -> None:
        if t1 < t0:
            raise ValueError("span ends before it starts")
        if kind not in ("fetch", "compute"):
            raise ValueError(f"unknown span kind {kind!r}")
        self.spans.append(Span(worker, kind, t0, t1, job_id, data_location, stolen))

    @property
    def end_time(self) -> float:
        return max((s.t1 for s in self.spans), default=0.0)

    def workers(self) -> list[str]:
        seen: list[str] = []
        for s in self.spans:
            if s.worker not in seen:
                seen.append(s.worker)
        return seen

    def busy_fraction(self, worker: str) -> float:
        """Share of the run this worker spent fetching or computing."""
        end = self.end_time
        if end == 0:
            return 0.0
        busy = sum(s.duration for s in self.spans if s.worker == worker)
        return busy / end

    def utilization(self) -> float:
        """Mean busy fraction over all traced workers."""
        ws = self.workers()
        if not ws:
            return 0.0
        return sum(self.busy_fraction(w) for w in ws) / len(ws)


def render_gantt(
    tracer: Tracer,
    *,
    width: int = 80,
    workers: Iterable[str] | None = None,
) -> str:
    """Render the trace as an ASCII Gantt chart.

    One row per worker; each column is ``end_time / width`` seconds.
    ``#`` compute, ``=`` local-ish fetch, ``%`` stolen (cross-site)
    fetch, ``.`` idle/waiting.  Each column shows the activity that
    occupied the most time within it, so short spans are not
    over-represented at coarse resolutions.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    end = tracer.end_time
    rows = []
    names = list(workers) if workers is not None else tracer.workers()
    if end == 0 or not names:
        return "(empty trace)"
    col_s = end / width  # seconds per column
    glyphs = ("=", "#", "%")
    label_w = max(len(n) for n in names)
    for name in names:
        # Duration-weighted occupancy per column and activity.
        occupancy = [dict.fromkeys(glyphs, 0.0) for _ in range(width)]
        for s in tracer.spans:
            if s.worker != name:
                continue
            glyph = "#" if s.kind == "compute" else ("%" if s.stolen else "=")
            c0 = min(width - 1, int(s.t0 / col_s))
            c1 = min(width - 1, int(s.t1 / col_s))
            for c in range(c0, c1 + 1):
                lo = max(s.t0, c * col_s)
                hi = min(s.t1, (c + 1) * col_s)
                if hi > lo:
                    occupancy[c][glyph] += hi - lo
        cells = []
        for col in occupancy:
            busy = sum(col.values())
            if busy < col_s / 2:
                cells.append(".")
            else:
                cells.append(max(glyphs, key=lambda g: col[g]))
        rows.append(f"{name.ljust(label_w)} |{''.join(cells)}|")
    legend = f"{'':{label_w}}  0s{' ' * (width - len(f'{end:.0f}s') - 2)}{end:.0f}s"
    return "\n".join(rows + [legend, "  # compute   = fetch   % stolen fetch   . idle"])
