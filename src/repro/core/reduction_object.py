"""Reduction objects.

The reduction object is the central abstraction of the Generalized
Reduction API: a user-declared accumulator that each worker updates *in
place* while processing data elements, so no intermediate (key, value)
pairs ever materialize.  Copies of the object from different workers and
clusters are merged during global reduction, and the object's size in
bytes is exactly what must cross the inter-cluster link -- which is why
the paper tracks it so carefully (PageRank's ~30 MB object dominates its
sync time).

Invariant required of every implementation (and property-tested): the
final merged value must be independent of (a) the order elements were
processed in and (b) the shape of the merge tree.  ``merge`` must
therefore be commutative and associative over objects produced by
``local_reduction``.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

import numpy as np

__all__ = [
    "ReductionObject",
    "ArrayReductionObject",
    "DictReductionObject",
    "TopKReductionObject",
]


class ReductionObject(abc.ABC):
    """Base class for user-declared accumulators."""

    @abc.abstractmethod
    def merge(self, other: "ReductionObject") -> None:
        """Fold ``other`` into ``self`` (in place)."""

    @abc.abstractmethod
    def copy_empty(self) -> "ReductionObject":
        """A fresh identity-valued object of the same configuration."""

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Approximate serialized size; drives the communication model."""

    @abc.abstractmethod
    def value(self) -> Any:
        """The accumulated result in user-facing form."""


class ArrayReductionObject(ReductionObject):
    """Dense numpy accumulator merged with an elementwise ufunc.

    Suits k-means (centroid sums + counts) and PageRank (rank vector):
    the object is a fixed-shape array, local reduction scatter-adds into
    it, and merge is ``np.add``/``np.minimum``/... applied in place.
    """

    _IDENTITIES: dict[str, float] = {"add": 0.0, "minimum": np.inf, "maximum": -np.inf}

    def __init__(
        self,
        shape: tuple[int, ...],
        dtype: Any = np.float64,
        op: str = "add",
        data: np.ndarray | None = None,
    ) -> None:
        if op not in self._IDENTITIES:
            raise ValueError(f"unsupported op {op!r}; one of {sorted(self._IDENTITIES)}")
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.op = op
        if data is not None:
            if data.shape != self.shape:
                raise ValueError(f"data shape {data.shape} != declared {self.shape}")
            self.data = np.asarray(data, dtype=self.dtype)
        else:
            identity = self._IDENTITIES[op]
            if not np.isfinite(identity) and self.dtype.kind in "iu":
                raise ValueError(f"op {op!r} has no identity for integer dtype")
            self.data = np.full(self.shape, identity, dtype=self.dtype)

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, ArrayReductionObject) or other.op != self.op:
            raise TypeError("can only merge a matching ArrayReductionObject")
        getattr(np, self.op)(self.data, other.data, out=self.data)

    def copy_empty(self) -> "ArrayReductionObject":
        return ArrayReductionObject(self.shape, self.dtype, self.op)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def value(self) -> np.ndarray:
        return self.data


class DictReductionObject(ReductionObject):
    """Sparse key -> value accumulator with a per-key combiner.

    The generalized-reduction analogue of a combine-enabled wordcount:
    keys never leave the worker, only the combined dictionary does.
    """

    def __init__(self, combiner: Callable[[Any, Any], Any], value_nbytes: int = 16) -> None:
        self.combiner = combiner
        self.value_nbytes = value_nbytes
        self.data: dict[Any, Any] = {}

    def update(self, key: Any, value: Any) -> None:
        if key in self.data:
            self.data[key] = self.combiner(self.data[key], value)
        else:
            self.data[key] = value

    def update_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Vectorized bulk update: combine duplicate keys first, then fold."""
        keys = np.asarray(keys)
        values = np.asarray(values)
        uniq, inv = np.unique(keys, return_inverse=True)
        sums = np.bincount(inv, weights=values, minlength=len(uniq))
        for k, v in zip(uniq.tolist(), sums.tolist()):
            self.update(k, v)

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, DictReductionObject):
            raise TypeError("can only merge a DictReductionObject")
        for k, v in other.data.items():
            self.update(k, v)

    def copy_empty(self) -> "DictReductionObject":
        return DictReductionObject(self.combiner, self.value_nbytes)

    @property
    def nbytes(self) -> int:
        return len(self.data) * self.value_nbytes

    def value(self) -> dict:
        return dict(self.data)


class TopKReductionObject(ReductionObject):
    """Keeps the ``k`` items with the smallest (or largest) scores.

    Used by kNN: the object holds the k nearest candidates seen so far;
    merging two objects re-selects the best k of their union.  Payloads
    accompany scores (e.g. the point coordinates or its id).
    """

    def __init__(self, k: int, largest: bool = False, entry_nbytes: int = 16) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.largest = largest
        self.entry_nbytes = entry_nbytes
        self._scores: np.ndarray = np.empty(0, dtype=np.float64)
        self._payloads: list[Any] = []

    def update_batch(self, scores: np.ndarray, payloads: list[Any] | np.ndarray) -> None:
        """Offer a batch of candidates; retain the best k overall.

        Vectorized: one concatenate + one ``argpartition`` per batch, no
        per-element Python in the hot path.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1 or len(scores) != len(payloads):
            raise ValueError("scores must be 1-D and match payloads length")
        all_scores = np.concatenate([self._scores, scores])
        all_payloads = list(self._payloads) + list(payloads)
        if len(all_scores) > self.k:
            key = -all_scores if self.largest else all_scores
            idx = np.argpartition(key, self.k - 1)[: self.k]
        else:
            idx = np.arange(len(all_scores))
        self._scores = all_scores[idx]
        self._payloads = [all_payloads[i] for i in idx]

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, TopKReductionObject) or other.largest != self.largest:
            raise TypeError("can only merge a matching TopKReductionObject")
        if self.k != other.k:
            raise ValueError("cannot merge top-k objects with different k")
        self.update_batch(other._scores, other._payloads)

    def copy_empty(self) -> "TopKReductionObject":
        return TopKReductionObject(self.k, self.largest, self.entry_nbytes)

    @property
    def nbytes(self) -> int:
        return len(self._scores) * self.entry_nbytes

    def value(self) -> list[tuple[float, Any]]:
        """Sorted ``(score, payload)`` pairs, best first."""
        order = np.argsort(-self._scores if self.largest else self._scores, kind="stable")
        return [(float(self._scores[i]), self._payloads[i]) for i in order]
