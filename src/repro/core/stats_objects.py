"""Statistical reduction objects: histograms and running moments.

Two further accumulators in the spirit of the paper's "common
combination functions already implemented in the generalized reduction
system library": a fixed-bin histogram and a per-column moments sketch
(count / mean / M2 / min / max, merged with the parallel Welford-Chan
update).  Both satisfy the merge contract (commutative, associative,
order-independent) and are property-tested.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.reduction_object import ReductionObject

__all__ = ["HistogramReductionObject", "MomentsReductionObject"]


class HistogramReductionObject(ReductionObject):
    """Fixed-edge histogram with under/overflow bins.

    ``edges`` are the ``n_bins + 1`` monotonically increasing bin
    boundaries; values outside ``[edges[0], edges[-1])`` land in the
    dedicated underflow/overflow counters so no sample is ever dropped
    silently.
    """

    def __init__(self, edges: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or len(edges) < 2:
            raise ValueError("edges must be a 1-D array of at least two boundaries")
        if not np.all(np.diff(edges) > 0):
            raise ValueError("edges must be strictly increasing")
        self.edges = edges
        self.counts = np.zeros(len(edges) - 1, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    def update(self, values: np.ndarray) -> None:
        """Fold a batch of samples in (vectorized)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self.underflow += int((values < self.edges[0]).sum())
        self.overflow += int((values >= self.edges[-1]).sum())
        inside = values[(values >= self.edges[0]) & (values < self.edges[-1])]
        if inside.size:
            idx = np.searchsorted(self.edges, inside, side="right") - 1
            self.counts += np.bincount(idx, minlength=len(self.counts))

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, HistogramReductionObject):
            raise TypeError("can only merge a HistogramReductionObject")
        if not np.array_equal(other.edges, self.edges):
            raise ValueError("cannot merge histograms with different edges")
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow

    def copy_empty(self) -> "HistogramReductionObject":
        return HistogramReductionObject(self.edges)

    @property
    def total(self) -> int:
        return int(self.counts.sum()) + self.underflow + self.overflow

    @property
    def nbytes(self) -> int:
        return int(self.counts.nbytes + self.edges.nbytes + 16)

    def value(self) -> dict[str, Any]:
        return {
            "edges": self.edges.copy(),
            "counts": self.counts.copy(),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }


class MomentsReductionObject(ReductionObject):
    """Per-column count / mean / M2 / min / max, mergeable exactly.

    Uses the Chan-Golub-LeVeque pairwise update so merging partial
    results from many workers is numerically stable: variance computed
    from the merged object equals (to rounding) the single-pass answer.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.count = 0.0
        self.mean = np.zeros(dim)
        self.m2 = np.zeros(dim)
        self.min = np.full(dim, np.inf)
        self.max = np.full(dim, -np.inf)

    def update(self, rows: np.ndarray) -> None:
        """Fold a batch of ``(n, dim)`` rows in (vectorized)."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) rows, got {rows.shape}")
        n = rows.shape[0]
        if n == 0:
            return
        batch_mean = rows.mean(axis=0)
        batch_m2 = ((rows - batch_mean) ** 2).sum(axis=0)
        self._combine(n, batch_mean, batch_m2)
        np.minimum(self.min, rows.min(axis=0), out=self.min)
        np.maximum(self.max, rows.max(axis=0), out=self.max)

    def _combine(self, n_b: float, mean_b: np.ndarray, m2_b: np.ndarray) -> None:
        n_a = self.count
        n = n_a + n_b
        delta = mean_b - self.mean
        self.mean += delta * (n_b / n)
        self.m2 += m2_b + delta**2 * (n_a * n_b / n)
        self.count = n

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, MomentsReductionObject) or other.dim != self.dim:
            raise TypeError("can only merge a matching MomentsReductionObject")
        if other.count > 0:
            self._combine(other.count, other.mean, other.m2)
        np.minimum(self.min, other.min, out=self.min)
        np.maximum(self.max, other.max, out=self.max)

    def copy_empty(self) -> "MomentsReductionObject":
        return MomentsReductionObject(self.dim)

    @property
    def variance(self) -> np.ndarray:
        """Population variance per column (NaN when empty)."""
        if self.count == 0:
            return np.full(self.dim, np.nan)
        return self.m2 / self.count

    @property
    def nbytes(self) -> int:
        return int(8 + self.mean.nbytes + self.m2.nbytes + self.min.nbytes + self.max.nbytes)

    def value(self) -> dict[str, Any]:
        return {
            "count": int(self.count),
            "mean": self.mean.copy(),
            "variance": self.variance,
            "std": np.sqrt(np.maximum(self.variance, 0.0)),
            "min": self.min.copy(),
            "max": self.max.copy(),
        }
