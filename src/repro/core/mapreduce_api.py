"""The classic MapReduce API (baseline for comparison).

The paper contrasts generalized reduction with MapReduce both without and
with the optional ``combine`` function (Figure 1).  This module defines
the spec the baseline engine in :mod:`repro.mapreduce` executes, so the
two programming models can be benchmarked on identical substrates.
"""

from __future__ import annotations

import abc
from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.data.formats import RecordFormat

__all__ = ["MapReduceSpec"]

KV = tuple[Hashable, Any]


class MapReduceSpec(abc.ABC):
    """User-facing map/combine/reduce specification."""

    #: Binary layout of the input data units.
    fmt: RecordFormat

    @abc.abstractmethod
    def map(self, unit_group: np.ndarray) -> Iterator[KV]:
        """Emit (key, value) pairs for a group of input units."""

    def combine(self, key: Hashable, values: Sequence[Any]) -> Any:
        """Optionally pre-reduce a mapper-local buffer of values.

        The default raises; the engine only calls this when the spec
        advertises ``has_combiner``.
        """
        raise NotImplementedError("spec does not define a combiner")

    @abc.abstractmethod
    def reduce(self, key: Hashable, values: Sequence[Any]) -> Any:
        """Merge all values of ``key`` into the final output value."""

    @property
    def has_combiner(self) -> bool:
        """Whether the engine should run the combine stage."""
        return type(self).combine is not MapReduceSpec.combine

    def value_nbytes(self, value: Any) -> int:
        """Approximate wire size of one value (for shuffle accounting)."""
        if isinstance(value, (int, float, np.integer, np.floating)):
            return 8
        if isinstance(value, np.ndarray):
            return int(value.nbytes)
        if isinstance(value, (tuple, list)):
            return sum(self.value_nbytes(v) for v in value)
        return 16

    def pair_nbytes(self, key: Hashable, value: Any) -> int:
        """Approximate wire size of one (key, value) pair."""
        return 8 + self.value_nbytes(value)

    def finalize(self, output: dict) -> Any:
        """Post-process the reduced key -> value dictionary."""
        return output
