"""The Generalized Reduction processing API.

An application implements three pieces (Section III-A of the paper):

* **Reduction Object** -- the accumulator, declared via
  :meth:`GeneralizedReductionSpec.create_reduction_object`;
* **Local Reduction** -- ``proc(e)``: process a group of data units and
  fold them into the object immediately.  The result must be independent
  of the order in which units are processed (the runtime decides order);
* **Global Reduction** -- merge the per-worker/per-cluster objects into
  one, by default via pairwise :meth:`ReductionObject.merge`.

Compared to MapReduce-with-combine this fuses map, combine, and reduce
per element, avoiding intermediate (key, value) buffers, sorting,
grouping, and shuffling -- critical under scarce inter-cluster bandwidth.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro.core.reduction_object import ReductionObject
from repro.data.formats import RecordFormat

__all__ = ["GeneralizedReductionSpec", "run_local_pass"]


class GeneralizedReductionSpec(abc.ABC):
    """User-facing specification of a generalized-reduction computation."""

    #: Binary layout of the data units this application consumes.
    fmt: RecordFormat

    @abc.abstractmethod
    def create_reduction_object(self) -> ReductionObject:
        """Declare a fresh (identity-valued) reduction object."""

    @abc.abstractmethod
    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        """Process one group of data units, updating ``robj`` in place.

        Implementations must be vectorized over the group and
        order-independent across groups.
        """

    def global_reduction(self, robjs: Sequence[ReductionObject]) -> ReductionObject:
        """Merge reduction objects from all workers into one.

        The default pairwise-merge suits any commutative/associative
        ``merge``; applications may override (e.g. to renormalize).
        """
        if not robjs:
            return self.create_reduction_object()
        result = robjs[0]
        for other in robjs[1:]:
            result.merge(other)
        return result

    def finalize(self, robj: ReductionObject):
        """Turn the merged object into the user-facing result."""
        return robj.value()

    # -- cost hints for the performance model -------------------------------
    #: Seconds of CPU per data unit on the reference core (calibrated).
    compute_s_per_unit: float = 1e-6

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} fmt={getattr(self, 'fmt', None)!r}>"


def run_local_pass(
    spec: GeneralizedReductionSpec,
    unit_groups: Iterable[np.ndarray],
    robj: ReductionObject | None = None,
) -> ReductionObject:
    """Sequentially apply local reduction over an iterable of groups.

    This is the single-worker reference executor; the threaded runtime
    and the simulator both reduce to many concurrent invocations of this
    loop followed by a global reduction.
    """
    if robj is None:
        robj = spec.create_reduction_object()
    for group in unit_groups:
        spec.local_reduction(robj, group)
    return robj
