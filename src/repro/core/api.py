"""The Generalized Reduction processing API.

An application implements three pieces (Section III-A of the paper):

* **Reduction Object** -- the accumulator, declared via
  :meth:`GeneralizedReductionSpec.create_reduction_object`;
* **Local Reduction** -- ``proc(e)``: process a group of data units and
  fold them into the object immediately.  The result must be independent
  of the order in which units are processed (the runtime decides order);
* **Global Reduction** -- merge the per-worker/per-cluster objects into
  one, by default via pairwise :meth:`ReductionObject.merge`.

Compared to MapReduce-with-combine this fuses map, combine, and reduce
per element, avoiding intermediate (key, value) buffers, sorting,
grouping, and shuffling -- critical under scarce inter-cluster bandwidth.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro.core.reduction_object import ReductionObject
from repro.data.chunks import ChunkStats
from repro.data.formats import RecordFormat

__all__ = [
    "GeneralizedReductionSpec",
    "has_pushdown_predicate",
    "has_pushdown_priority",
    "run_local_pass",
    "supports_batch_fold",
    "supports_pushdown",
    "tree_global_reduction",
    "uses_default_global_reduction",
]


class GeneralizedReductionSpec(abc.ABC):
    """User-facing specification of a generalized-reduction computation."""

    #: Binary layout of the data units this application consumes.
    fmt: RecordFormat

    @abc.abstractmethod
    def create_reduction_object(self) -> ReductionObject:
        """Declare a fresh (identity-valued) reduction object."""

    @abc.abstractmethod
    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        """Process one group of data units, updating ``robj`` in place.

        Implementations must be vectorized over the group and
        order-independent across groups.
        """

    def local_reduction_batch(
        self, robj: ReductionObject, units: np.ndarray
    ) -> None:
        """Fold a *whole chunk* of data units into ``robj`` in one call.

        Optional fast path: when an application overrides this, the
        runtimes fold each chunk with one call instead of iterating
        cache-sized unit groups -- one Python-level dispatch per chunk,
        with the kernel free to vectorize over the full unit array
        (which may be a read-only zero-copy view into a fetch buffer or
        shared-memory pages; implementations must not write to it).

        Must compute the same result as applying
        :meth:`local_reduction` group-by-group -- up to floating-point
        summation order, which batching may change.  The base
        implementation is a sentinel used by :func:`supports_batch_fold`
        detection; it delegates to one whole-chunk
        :meth:`local_reduction` call so direct invocation still works.
        """
        self.local_reduction(robj, units)

    def global_reduction(self, robjs: Sequence[ReductionObject]) -> ReductionObject:
        """Merge reduction objects from all workers into one.

        The default pairwise-merge suits any commutative/associative
        ``merge``; applications may override (e.g. to renormalize).

        The merge folds into a *fresh* identity object, never into a
        caller-owned one: per-worker objects survive the global
        reduction intact, which the stats and fault-recovery paths rely
        on (they inspect worker objects afterwards), and which lets
        process engines merge objects whose payloads alias read-only
        shared memory.
        """
        result = self.create_reduction_object()
        for other in robjs:
            result.merge(other)
        return result

    def finalize(self, robj: ReductionObject):
        """Turn the merged object into the user-facing result."""
        return robj.value()

    # -- pushdown contract (metadata-first retrieval) ------------------------

    def relevant(self, stats: ChunkStats) -> bool:
        """Pruning predicate over a chunk's index statistics.

        The head calls this before job-pool creation with each chunk's
        :class:`~repro.data.chunks.ChunkStats`; returning False prunes
        the chunk -- it is never fetched and never folded.

        **Soundness contract**: return False only when the statistics
        *prove* the chunk's fold contribution is the identity (it cannot
        change the reduction object).  When unsure, return True.  Stats
        bounds may be ``None`` (unknown); helpers like
        :meth:`ChunkStats.overlaps` already keep-on-unknown.  Chunks
        with no stats at all are always kept and never reach this hook.
        ``EngineOptions(pushdown="verify")`` checks the contract at run
        time by fetching pruned chunks anyway.
        """
        return True

    def priority(self, stats: ChunkStats) -> float:
        """Ordering hint for surviving chunks; higher runs earlier.

        Purely a performance hint -- it reorders jobs within the
        scheduler's per-file queues (composing with locality, contention
        and breaker ordering) and never changes the result.  Useful to
        front-load chunks that dominate the answer, e.g. by estimated
        selectivity from :meth:`ChunkStats.sample_fraction`.
        """
        return 0.0

    # -- cost hints for the performance model -------------------------------
    #: Seconds of CPU per data unit on the reference core (calibrated).
    compute_s_per_unit: float = 1e-6

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} fmt={getattr(self, 'fmt', None)!r}>"


def uses_default_global_reduction(spec: GeneralizedReductionSpec) -> bool:
    """True when ``spec`` inherits the default pairwise global reduction.

    The parallel tree merge below is only valid for the default
    commutative/associative pairwise merge; a spec that overrides
    :meth:`GeneralizedReductionSpec.global_reduction` (e.g. to
    renormalize) must be called through its own implementation.
    """
    return (
        type(spec).global_reduction is GeneralizedReductionSpec.global_reduction
    )


def supports_batch_fold(spec: GeneralizedReductionSpec) -> bool:
    """True when ``spec`` overrides :meth:`local_reduction_batch`.

    The runtimes use this to pick the one-call-per-chunk fold path;
    specs that only implement the per-group ``local_reduction`` keep
    the unit-group loop.
    """
    return (
        type(spec).local_reduction_batch
        is not GeneralizedReductionSpec.local_reduction_batch
    )


def has_pushdown_predicate(spec) -> bool:
    """True when ``spec`` overrides :meth:`GeneralizedReductionSpec.relevant`.

    Accepts duck-typed objects too (the simulator passes query objects
    that are not full specs): any ``relevant`` other than the base-class
    default counts.
    """
    fn = getattr(type(spec), "relevant", None)
    return fn is not None and fn is not GeneralizedReductionSpec.relevant


def has_pushdown_priority(spec) -> bool:
    """True when ``spec`` overrides :meth:`GeneralizedReductionSpec.priority`."""
    fn = getattr(type(spec), "priority", None)
    return fn is not None and fn is not GeneralizedReductionSpec.priority


def supports_pushdown(spec) -> bool:
    """True when ``spec`` declares any part of the pushdown contract."""
    return has_pushdown_predicate(spec) or has_pushdown_priority(spec)


def tree_global_reduction(
    spec: GeneralizedReductionSpec,
    robjs: Sequence[ReductionObject],
    max_workers: int = 4,
) -> ReductionObject:
    """Parallel tree-merge of reduction objects (default merge only).

    Where the sequential left-fold performs ``n-1`` dependent merges,
    the tree performs ``ceil(log2 n)`` rounds of independent pairwise
    merges, each into a fresh identity object.  Pair merges of one round
    run concurrently on a thread pool -- the heavy merges are numpy
    ufuncs that release the GIL, so wide reductions (many workers, large
    objects) finish in logarithmic critical-path time.  Inputs are never
    mutated, so objects whose payloads alias (possibly read-only) shared
    memory merge safely.

    Callers should check :func:`uses_default_global_reduction` first and
    defer to ``spec.global_reduction`` when it is overridden.
    """
    if len(robjs) <= 1:
        # Fold through a fresh identity even for 0/1 inputs so the
        # result never aliases a caller-owned (or shared-memory) object.
        result = spec.create_reduction_object()
        for other in robjs:
            result.merge(other)
        return result

    def merge_pair(a: ReductionObject, b: ReductionObject) -> ReductionObject:
        out = spec.create_reduction_object()
        out.merge(a)
        out.merge(b)
        return out

    from concurrent.futures import ThreadPoolExecutor

    level = list(robjs)
    with ThreadPoolExecutor(
        max_workers=max(1, max_workers), thread_name_prefix="tree-merge"
    ) as pool:
        while len(level) > 1:
            pairs = [
                (level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
            ]
            carry = [level[-1]] if len(level) % 2 else []
            level = list(pool.map(lambda p: merge_pair(*p), pairs)) + carry
    return level[0]


def run_local_pass(
    spec: GeneralizedReductionSpec,
    unit_groups: Iterable[np.ndarray],
    robj: ReductionObject | None = None,
) -> ReductionObject:
    """Sequentially apply local reduction over an iterable of groups.

    This is the single-worker reference executor; the threaded runtime
    and the simulator both reduce to many concurrent invocations of this
    loop followed by a global reduction.
    """
    if robj is None:
        robj = spec.create_reduction_object()
    for group in unit_groups:
        spec.local_reduction(robj, group)
    return robj
