"""Core processing APIs: generalized reduction and MapReduce specs."""

from repro.core.api import GeneralizedReductionSpec, run_local_pass
from repro.core.combiners import COMBINERS, get_combiner, register_combiner
from repro.core.mapreduce_api import MapReduceSpec
from repro.core.reduction_object import (
    ArrayReductionObject,
    DictReductionObject,
    ReductionObject,
    TopKReductionObject,
)
from repro.core.stats_objects import HistogramReductionObject, MomentsReductionObject
from repro.core.serialization import deserialize_robj, serialize_robj, serialized_nbytes

__all__ = [
    "GeneralizedReductionSpec",
    "run_local_pass",
    "COMBINERS",
    "get_combiner",
    "register_combiner",
    "MapReduceSpec",
    "ArrayReductionObject",
    "DictReductionObject",
    "ReductionObject",
    "TopKReductionObject",
    "HistogramReductionObject",
    "MomentsReductionObject",
    "deserialize_robj",
    "serialize_robj",
    "serialized_nbytes",
]
