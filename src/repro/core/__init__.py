"""Core processing APIs: generalized reduction and MapReduce specs."""

from repro.core.api import (
    GeneralizedReductionSpec,
    run_local_pass,
    supports_batch_fold,
    supports_pushdown,
    tree_global_reduction,
    uses_default_global_reduction,
)
from repro.core.combiners import COMBINERS, get_combiner, register_combiner
from repro.core.mapreduce_api import MapReduceSpec
from repro.core.reduction_object import (
    ArrayReductionObject,
    DictReductionObject,
    ReductionObject,
    TopKReductionObject,
)
from repro.core.stats_objects import HistogramReductionObject, MomentsReductionObject
from repro.core.serialization import (
    deserialize_robj,
    deserialize_robj_oob,
    serialize_robj,
    serialize_robj_oob,
    serialized_nbytes,
)

__all__ = [
    "GeneralizedReductionSpec",
    "run_local_pass",
    "supports_batch_fold",
    "supports_pushdown",
    "tree_global_reduction",
    "uses_default_global_reduction",
    "COMBINERS",
    "get_combiner",
    "register_combiner",
    "MapReduceSpec",
    "ArrayReductionObject",
    "DictReductionObject",
    "ReductionObject",
    "TopKReductionObject",
    "HistogramReductionObject",
    "MomentsReductionObject",
    "deserialize_robj",
    "deserialize_robj_oob",
    "serialize_robj",
    "serialize_robj_oob",
    "serialized_nbytes",
]
