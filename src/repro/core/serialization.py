"""Reduction-object serialization.

Inter-cluster global reduction physically moves reduction objects from
each master to the head node, so serialized size is a first-class
quantity (it is the whole reason PageRank's sync time balloons).  The
threaded runtime ships real pickled bytes; the simulator charges
``robj.nbytes`` against the WAN model.

Two transports are provided:

* :func:`serialize_robj` / :func:`deserialize_robj` -- one in-band
  pickle blob, exactly what a WAN link would carry between clusters;
* :func:`serialize_robj_oob` / :func:`deserialize_robj_oob` -- pickle
  protocol 5 with **out-of-band buffers**, for same-machine IPC.  The
  metadata pickle stays tiny while the numpy payloads of the object
  travel as raw buffers, so a process-based engine can place them in
  shared memory and reconstruct the object on the other side without
  copying them through a pipe (see
  :class:`~repro.runtime.process_engine.ProcessEngine`).
"""

from __future__ import annotations

import pickle

from repro.core.reduction_object import ReductionObject

__all__ = [
    "serialize_robj",
    "deserialize_robj",
    "serialized_nbytes",
    "serialize_robj_oob",
    "deserialize_robj_oob",
]

_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Out-of-band buffers require protocol 5 (the first to support them).
_OOB_PROTOCOL = 5


def serialize_robj(robj: ReductionObject) -> bytes:
    """Pickle a reduction object for transport."""
    return pickle.dumps(robj, protocol=_PROTOCOL)


def deserialize_robj(data: bytes) -> ReductionObject:
    """Inverse of :func:`serialize_robj`."""
    obj = pickle.loads(data)
    if not isinstance(obj, ReductionObject):
        raise TypeError(f"payload is {type(obj).__name__}, not a ReductionObject")
    return obj


def serialize_robj_oob(
    robj: ReductionObject,
) -> tuple[bytes, list[memoryview]]:
    """Pickle with protocol-5 out-of-band buffers for zero-copy IPC.

    Returns ``(meta, buffers)``: ``meta`` is the small in-band pickle and
    ``buffers`` are flat, contiguous byte views over the object's large
    payloads (numpy arrays), still backed by the object's own memory --
    nothing is copied here.  Ship the views however is cheapest (e.g.
    straight into a shared-memory segment) and rebuild with
    :func:`deserialize_robj_oob`.

    Objects without buffer-exporting payloads (e.g. a dict-backed
    counter) simply return an empty buffer list with everything in-band.
    """
    raw: list[pickle.PickleBuffer] = []
    meta = pickle.dumps(robj, protocol=_OOB_PROTOCOL, buffer_callback=raw.append)
    return meta, [pb.raw() for pb in raw]


def deserialize_robj_oob(
    meta: bytes, buffers: list[memoryview] | list[bytes]
) -> ReductionObject:
    """Inverse of :func:`serialize_robj_oob`.

    ``buffers`` must be the same number of buffers, in the same order, as
    produced by serialization.  When they are views over shared memory
    the reconstructed numpy payloads alias that memory (zero-copy) --
    keep the segment mapped until the object is merged or copied.
    """
    obj = pickle.loads(meta, buffers=buffers)
    if not isinstance(obj, ReductionObject):
        raise TypeError(f"payload is {type(obj).__name__}, not a ReductionObject")
    return obj


class _CountingWriter:
    """Length-only file object: counts bytes, stores nothing."""

    __slots__ = ("nbytes",)

    def __init__(self) -> None:
        self.nbytes = 0

    def write(self, data) -> int:
        try:
            n = len(data)
        except TypeError:
            # Large payloads arrive as PickleBuffer objects (no __len__).
            n = memoryview(data).nbytes
        self.nbytes += n
        return n


def serialized_nbytes(robj: ReductionObject) -> int:
    """Actual wire size of the object (may exceed ``robj.nbytes``).

    Streams the pickle through a counting writer, so measuring the sync
    cost of a large object never materializes a second copy of it.
    """
    writer = _CountingWriter()
    pickle.Pickler(writer, protocol=_PROTOCOL).dump(robj)
    return writer.nbytes
