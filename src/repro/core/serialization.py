"""Reduction-object serialization.

Inter-cluster global reduction physically moves reduction objects from
each master to the head node, so serialized size is a first-class
quantity (it is the whole reason PageRank's sync time balloons).  The
threaded runtime ships real pickled bytes; the simulator charges
``robj.nbytes`` against the WAN model.
"""

from __future__ import annotations

import pickle

from repro.core.reduction_object import ReductionObject

__all__ = ["serialize_robj", "deserialize_robj", "serialized_nbytes"]

_PROTOCOL = pickle.HIGHEST_PROTOCOL


def serialize_robj(robj: ReductionObject) -> bytes:
    """Pickle a reduction object for transport."""
    return pickle.dumps(robj, protocol=_PROTOCOL)


def deserialize_robj(data: bytes) -> ReductionObject:
    """Inverse of :func:`serialize_robj`."""
    obj = pickle.loads(data)
    if not isinstance(obj, ReductionObject):
        raise TypeError(f"payload is {type(obj).__name__}, not a ReductionObject")
    return obj


def serialized_nbytes(robj: ReductionObject) -> int:
    """Actual wire size of the object (may exceed ``robj.nbytes``)."""
    return len(serialize_robj(robj))
