"""Library of common global-combination functions.

"A user can choose from one of the several common combination functions
already implemented in the generalized reduction system library (such as
aggregation, concatenation, etc.), or they can provide one of their
own."  Combiners here operate on pairs of plain values and are used by
:class:`~repro.core.reduction_object.DictReductionObject` and by custom
global reductions.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["get_combiner", "register_combiner", "COMBINERS"]


def _sum(a, b):
    return a + b


def _min(a, b):
    return a if a <= b else b


def _max(a, b):
    return a if a >= b else b


def _concat(a, b):
    return list(a) + list(b)


def _mean(a, b):
    """Combine ``(total, count)`` pairs; finalize as ``total / count``."""
    return (a[0] + b[0], a[1] + b[1])


def _count(a, b):
    return a + b


COMBINERS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": _sum,
    "min": _min,
    "max": _max,
    "concat": _concat,
    "mean": _mean,
    "count": _count,
}


def register_combiner(name: str, fn: Callable[[Any, Any], Any]) -> None:
    """Add a user-provided combiner to the registry.

    Re-registering an existing name raises so library combiners cannot be
    silently shadowed.
    """
    if name in COMBINERS:
        raise ValueError(f"combiner {name!r} already registered")
    COMBINERS[name] = fn


def get_combiner(name: str) -> Callable[[Any, Any], Any]:
    """Look up a combiner by name."""
    try:
        return COMBINERS[name]
    except KeyError:
        raise KeyError(
            f"unknown combiner {name!r}; available: {sorted(COMBINERS)}"
        ) from None
