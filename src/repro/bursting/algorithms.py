"""Iterative algorithms packaged over a BurstingSession.

The examples drive k-means and PageRank by hand; these are the
library-level equivalents a downstream user calls directly: given a
session holding the distributed dataset, run the iteration to
convergence and return the result plus per-iteration history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.kmeans import KMeansSpec
from repro.apps.pagerank import PageRankSpec, out_degrees
from repro.bursting.session import BurstingSession

__all__ = [
    "IterationRecord",
    "KMeansRun",
    "PageRankRun",
    "kmeans_distributed",
    "pagerank_distributed",
]


@dataclass(frozen=True)
class IterationRecord:
    """Telemetry for one pass of an iterative computation."""

    iteration: int
    delta: float          # convergence metric of the pass
    wall_s: float         # engine wall time of the pass
    jobs_stolen: int


@dataclass
class KMeansRun:
    """Converged k-means result."""

    centroids: np.ndarray
    counts: np.ndarray
    sse: float
    converged: bool
    history: list[IterationRecord] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.history)


@dataclass
class PageRankRun:
    """Converged PageRank result."""

    ranks: np.ndarray
    converged: bool
    history: list[IterationRecord] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.history)

    def top(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` highest-ranked pages as ``(page, rank)`` pairs."""
        order = np.argsort(-self.ranks)[:k]
        return [(int(i), float(self.ranks[i])) for i in order]


def kmeans_distributed(
    session: BurstingSession,
    init_centroids: np.ndarray,
    *,
    max_iters: int = 50,
    tol: float = 1e-7,
) -> KMeansRun:
    """Lloyd's algorithm to convergence over the session's dataset.

    Convergence: the relative SSE improvement drops below ``tol``.
    """
    if max_iters <= 0 or tol < 0:
        raise ValueError("max_iters > 0 and tol >= 0 required")
    centroids = np.asarray(init_centroids, dtype=np.float64)
    prev_sse = np.inf
    history: list[IterationRecord] = []
    result = None
    converged = False
    for it in range(1, max_iters + 1):
        rr = session.run(KMeansSpec(centroids))
        result = rr.result
        delta = (prev_sse - result.sse) / max(prev_sse, 1e-300)
        history.append(
            IterationRecord(it, float(delta), rr.stats.total_s, rr.stats.jobs_stolen)
        )
        centroids = result.centroids
        if np.isfinite(prev_sse) and delta <= tol:
            converged = True
            break
        prev_sse = result.sse
    assert result is not None
    return KMeansRun(
        centroids=result.centroids,
        counts=result.counts,
        sse=result.sse,
        converged=converged,
        history=history,
    )


def pagerank_distributed(
    session: BurstingSession,
    n_pages: int,
    *,
    damping: float = 0.85,
    max_iters: int = 100,
    tol: float = 1e-10,
) -> PageRankRun:
    """Damped power iteration to a fixed point over the session's edges.

    Computes out-degrees with one extra pass over the distributed data
    (itself a generalized reduction), then iterates until the L1 change
    drops below ``tol``.
    """
    if n_pages <= 0 or max_iters <= 0 or tol < 0:
        raise ValueError("n_pages > 0, max_iters > 0, tol >= 0 required")
    outdeg = _distributed_out_degrees(session, n_pages)
    ranks = np.full(n_pages, 1.0 / n_pages)
    history: list[IterationRecord] = []
    converged = False
    for it in range(1, max_iters + 1):
        rr = session.run(PageRankSpec(ranks, outdeg, damping))
        new_ranks = rr.result
        delta = float(np.abs(new_ranks - ranks).sum())
        history.append(IterationRecord(it, delta, rr.stats.total_s, rr.stats.jobs_stolen))
        ranks = new_ranks
        if delta < tol:
            converged = True
            break
    return PageRankRun(ranks=ranks, converged=converged, history=history)


def _distributed_out_degrees(session: BurstingSession, n_pages: int) -> np.ndarray:
    """Out-degree vector via one generalized-reduction pass."""
    from repro.core.api import GeneralizedReductionSpec
    from repro.core.reduction_object import ArrayReductionObject

    class OutDegreeSpec(GeneralizedReductionSpec):
        def __init__(self, fmt):
            self.fmt = fmt

        def create_reduction_object(self):
            return ArrayReductionObject((n_pages,), np.float64, "add")

        def local_reduction(self, robj, unit_group):
            robj.data += np.bincount(unit_group[:, 0], minlength=n_pages)

    return session.run(OutDegreeSpec(session.index.fmt)).result
