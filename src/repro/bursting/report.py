"""Report generation: the paper's figures and tables as data + text.

Each function turns sweep results into the rows of one paper artifact:

* :func:`fig3_rows` -- per-environment, per-cluster stacked breakdown
  (processing / data retrieval / sync), Figure 3;
* :func:`table1_rows` -- jobs processed per cluster with stolen counts,
  Table I;
* :func:`table2_rows` -- global-reduction time, idle time, extra local
  retrieval, and total slowdown vs env-local, Table II;
* :func:`fig4_rows` -- scalability breakdowns with per-doubling
  efficiency, Figure 4;
* :func:`pipeline_rows` -- prefetch/cache decomposition (residual stall,
  overlapped fetch time, hit counters) per environment and cluster;
* :func:`fault_rows` -- fault-tolerance decomposition (fetch retries,
  surfaced errors, failed workers, recovered jobs) per environment and
  cluster;
* :func:`format_table` -- aligned plain-text rendering of any row list.
"""

from __future__ import annotations

from typing import Mapping

from repro.sim.simrun import SimRunResult

__all__ = [
    "fig3_rows",
    "table1_rows",
    "table2_rows",
    "fig4_rows",
    "pipeline_rows",
    "fault_rows",
    "average_slowdown_pct",
    "format_table",
    "rows_to_csv",
]


def fig3_rows(results: Mapping[str, SimRunResult]) -> list[dict]:
    """Stacked-bar components per environment and cluster (Figure 3)."""
    rows: list[dict] = []
    for env_name, res in results.items():
        for cname, c in res.stats.clusters.items():
            rows.append(
                {
                    "env": env_name,
                    "cluster": cname,
                    "cores": c.n_workers,
                    "processing_s": round(c.processing_s, 2),
                    "retrieval_s": round(c.retrieval_s, 2),
                    "sync_s": round(c.sync_s, 2),
                    "total_s": round(c.total_s, 2),
                }
            )
    return rows


def table1_rows(results: Mapping[str, SimRunResult]) -> list[dict]:
    """Job assignment per environment (Table I).

    ``local_jobs``/``cloud_jobs`` are jobs *processed by* each cluster;
    ``*_stolen`` the subset whose data lived at the other site.
    """
    rows: list[dict] = []
    for env_name, res in results.items():
        clusters = res.stats.clusters
        rows.append(
            {
                "env": env_name,
                "local_jobs": clusters["local"].jobs_processed if "local" in clusters else 0,
                "local_stolen": clusters["local"].jobs_stolen if "local" in clusters else 0,
                "cloud_jobs": clusters["cloud"].jobs_processed if "cloud" in clusters else 0,
                "cloud_stolen": clusters["cloud"].jobs_stolen if "cloud" in clusters else 0,
            }
        )
    return rows


def table2_rows(
    results: Mapping[str, SimRunResult],
    baseline: str = "env-local",
) -> list[dict]:
    """Overheads and slowdowns of the hybrid configurations (Table II)."""
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} missing from results")
    base = results[baseline]
    base_total = base.total_s
    base_local_retrieval = (
        base.stats.clusters["local"].retrieval_s if "local" in base.stats.clusters else 0.0
    )
    rows: list[dict] = []
    for env_name, res in results.items():
        if env_name == baseline or env_name == "env-cloud":
            continue
        local_ret = (
            res.stats.clusters["local"].retrieval_s
            if "local" in res.stats.clusters
            else 0.0
        )
        slowdown = res.total_s - base_total
        rows.append(
            {
                "env": env_name,
                "global_reduction_s": round(res.stats.global_reduction_s, 2),
                "idle_s": round(
                    max(c.idle_s for c in res.stats.clusters.values()), 2
                ),
                "local_retrieval_delta_s": round(local_ret - base_local_retrieval, 2),
                "total_slowdown_s": round(slowdown, 2),
                "slowdown_pct": round(100.0 * slowdown / base_total, 2),
            }
        )
    return rows


def average_slowdown_pct(
    per_app_results: Mapping[str, Mapping[str, SimRunResult]],
    baseline: str = "env-local",
) -> float:
    """Mean slowdown over all hybrid cells of all apps (paper: 15.55%)."""
    cells: list[float] = []
    for results in per_app_results.values():
        for row in table2_rows(results, baseline):
            cells.append(row["slowdown_pct"])
    if not cells:
        raise ValueError("no hybrid cells found")
    return sum(cells) / len(cells)


def fig4_rows(results: Mapping[str, SimRunResult]) -> list[dict]:
    """Scalability breakdown with per-doubling efficiency (Figure 4).

    Efficiency of a configuration with twice the cores is
    ``T_prev / (2 * T_curr)`` -- 100% means perfect halving.
    """
    rows: list[dict] = []
    prev_total: float | None = None
    for env_name, res in results.items():
        total = res.total_s
        efficiency = None
        if prev_total is not None and total > 0:
            efficiency = round(100.0 * prev_total / (2.0 * total), 1)
        sync = max(c.sync_s for c in res.stats.clusters.values())
        sync_pct = round(100.0 * sync / total, 2) if total else 0.0
        row = {
            "config": env_name,
            "total_s": round(total, 2),
            "sync_pct": sync_pct,
            "efficiency_pct": efficiency,
        }
        for cname, c in res.stats.clusters.items():
            row[f"{cname}_processing_s"] = round(c.processing_s, 2)
            row[f"{cname}_retrieval_s"] = round(c.retrieval_s, 2)
            row[f"{cname}_sync_s"] = round(c.sync_s, 2)
        rows.append(row)
        prev_total = total
    return rows


def pipeline_rows(results: Mapping[str, SimRunResult]) -> list[dict]:
    """Prefetch/cache decomposition per environment and cluster.

    ``retrieval_s`` is the residual stall of the pipelined workers and
    ``overlap_s`` the fetch time hidden under computation; their sum is
    the serial engine's retrieval bar, so the two columns show exactly
    how much of the retrieval cost the pipeline removed from the
    critical path.
    """
    rows: list[dict] = []
    for env_name, res in results.items():
        for row in res.stats.pipeline_rows():
            rows.append({"env": env_name, **row})
    return rows


def fault_rows(results: Mapping[str, SimRunResult]) -> list[dict]:
    """Fault-tolerance decomposition per environment and cluster.

    Fetch retries/errors, failed workers, requeued-job re-executions,
    and the compute overhead those re-executions cost -- the columns of
    a chaos experiment's report (all zeros for a fault-free run).
    """
    rows: list[dict] = []
    for env_name, res in results.items():
        for row in res.stats.fault_rows():
            rows.append({"env": env_name, **row})
    return rows


def rows_to_csv(rows: list[dict], path: str) -> None:
    """Write a row list (as produced by the builders above) to CSV.

    Columns are the union of keys across rows, ordered by first
    appearance; missing cells are left empty.
    """
    import csv

    headers: list[str] = []
    for r in rows:
        for k in r:
            if k not in headers:
                headers.append(k)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=headers, restval="")
        writer.writeheader()
        writer.writerows(rows)


def format_table(rows: list[dict], title: str | None = None) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    headers = list(rows[0])
    cols = {h: [str(r.get(h, "")) for r in rows] for h in headers}
    widths = {h: max(len(h), *(len(v) for v in cols[h])) for h in headers}
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[h]) for h in headers))
    lines.append("  ".join("-" * widths[h] for h in headers))
    for r in rows:
        lines.append("  ".join(str(r.get(h, "")).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
