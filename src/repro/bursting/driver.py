"""High-level drivers: the public entry points for bursting experiments.

``simulate_environment`` runs one paper configuration through the
discrete-event simulator at the paper's true dataset scale (12 GB, 32
files, 96 jobs -- the simulator only costs O(jobs), not O(bytes));
``run_paper_sweep`` runs all five Figure-3 configurations;
``run_scalability_sweep`` the four Figure-4 core counts.

``run_threaded_bursting`` executes a *real* (scaled-down) dataset through
the threaded middleware across a local store and a simulated S3 store,
returning actual results plus measured stats -- the functional
counterpart used by examples and integration tests.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bursting.config import (
    EnvironmentConfig,
    paper_environments,
    scalability_environments,
)
from repro.core.api import GeneralizedReductionSpec
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.formats import RecordFormat
from repro.data.index import DataIndex, build_index
from repro.data.redundancy import validate_redundancy
from repro.runtime import make_engine
from repro.runtime.engine import ClusterConfig, RunResult
from repro.sim.calibration import (
    APP_PROFILES,
    PAPER_N_FILES,
    PAPER_N_JOBS,
    AppSimProfile,
    ResourceParams,
)
from repro.sim.simrun import SimRunResult, simulate_run
from repro.sim.topology import TransferSimModel
from repro.storage.base import StorageBackend

__all__ = [
    "paper_index",
    "simulate_environment",
    "run_paper_sweep",
    "run_scalability_sweep",
    "run_threaded_bursting",
]


def paper_index(profile: AppSimProfile, env: EnvironmentConfig) -> DataIndex:
    """Metadata-only index at the paper's dataset scale, placed per ``env``.

    The simulator never touches bytes, so the index carries sizes and
    placement only: 32 files, 96 chunks of ~128 MB.
    """
    fmt = RecordFormat(f"{profile.name}-sim", np.uint8, (profile.unit_nbytes,))
    units_per_file = profile.dataset_units // PAPER_N_FILES
    chunks_per_file = PAPER_N_JOBS // PAPER_N_FILES
    # Ceil so each file splits into exactly ``chunks_per_file`` chunks.
    chunk_units = -(-units_per_file // chunks_per_file)
    index = build_index(
        fmt,
        [units_per_file] * PAPER_N_FILES,
        chunk_units=chunk_units,
        location="local",
        meta={"app": profile.name, "scale": "paper"},
    )
    fractions = env.data_fractions
    if list(fractions) == ["local"]:
        return index
    return index.with_placement(fractions)


def simulate_environment(
    app: str,
    env: EnvironmentConfig,
    params: ResourceParams | None = None,
    *,
    seed: int = 0,
    scheduler_factory=None,
    prefetch: bool = False,
    cache_nbytes: int = 0,
    caches=None,
    failures=None,
    codec: str | None = None,
    transfer=None,
    adaptive_fetch: bool = False,
    autotune_params=None,
    pushdown=None,
) -> SimRunResult:
    """Simulate one application under one environment configuration.

    ``prefetch``/``cache_nbytes``/``caches`` model the engines' data
    pipeline (see :func:`repro.sim.simrun.simulate_run`); pass the
    previous result's ``.caches`` as ``caches`` to model iteration 2+
    of an iterative workload against warmed per-cluster caches.
    ``failures`` (a list of :class:`~repro.sim.simrun.FailureSpec`)
    kills workers mid-run; the head reassigns their in-flight jobs.
    ``codec`` selects the calibrated transfer model for that codec
    (:meth:`~repro.sim.topology.TransferSimModel.for_codec`), or pass an
    explicit ``transfer`` model; ``adaptive_fetch`` swaps fixed
    retrieval threads for per-path AIMD autotuning.  ``pushdown`` (a
    spec or query object with ``relevant``/``priority`` hooks) models
    metadata-first pruning -- note :func:`paper_index` carries no chunk
    stats, so this only has an effect on indexes from
    :func:`~repro.data.dataset.write_dataset`.
    """
    profile = APP_PROFILES[app]
    params = params or ResourceParams()
    index = paper_index(profile, env)
    if transfer is None and codec is not None:
        transfer = TransferSimModel.for_codec(codec)
    kwargs: dict[str, Any] = {"seed": seed}
    if scheduler_factory is not None:
        kwargs["scheduler_factory"] = scheduler_factory
    return simulate_run(
        index, env.clusters(params), profile, params,
        prefetch=prefetch, cache_nbytes=cache_nbytes, caches=caches,
        failures=failures, transfer=transfer, adaptive_fetch=adaptive_fetch,
        autotune_params=autotune_params, pushdown=pushdown, **kwargs,
    )


def run_paper_sweep(
    app: str,
    params: ResourceParams | None = None,
    *,
    seed: int = 0,
) -> dict[str, SimRunResult]:
    """All five Figure-3 environments for one application."""
    profile = APP_PROFILES[app]
    return {
        env.name: simulate_environment(app, env, params, seed=seed)
        for env in paper_environments(profile)
    }


def run_scalability_sweep(
    app: str,
    params: ResourceParams | None = None,
    *,
    seed: int = 0,
) -> dict[str, SimRunResult]:
    """The four Figure-4 core-doubling configurations (all data in S3)."""
    return {
        env.name: simulate_environment(app, env, params, seed=seed)
        for env in scalability_environments()
    }


def run_threaded_bursting(
    spec: GeneralizedReductionSpec,
    units: np.ndarray,
    stores: dict[str, StorageBackend],
    *,
    engine: str = "threaded",
    local_fraction: float = 0.5,
    local_workers: int = 2,
    cloud_workers: int = 2,
    n_files: int = 8,
    chunk_units: int | None = None,
    batch_size: int = 2,
    retrieval_threads: int = 2,
    prefetch: bool | None = None,
    chunk_cache=None,
    retry=None,
    crash_plan: dict[str, int] | None = None,
    codec: str | None = None,
    adaptive_fetch: bool = False,
    min_part_nbytes: int | None = None,
    autotune_params=None,
    replicas: int = 0,
    stripe: tuple[int, int] | None = None,
    hedge=None,
    breaker=None,
    pushdown: str | bool | None = None,
) -> RunResult:
    """Run a real dataset through the middleware, split across sites.

    ``stores`` must contain ``"local"`` and ``"cloud"`` backends.  The
    dataset is written to the local store, distributed according to
    ``local_fraction``, and processed by workers at both sites with the
    full scheduling/stealing protocol.  ``engine`` selects the executor:
    ``"threaded"`` (default), ``"process"`` (one OS process per slave,
    shared-memory data handoff), or ``"actor"`` (message-passing over
    explicit channels); every engine accepts every option, as they all
    run the same shared slave runtime.  ``prefetch`` double-buffers the
    workers; ``chunk_cache`` (a :class:`~repro.storage.cache.ChunkCache`)
    serves repeat fetches from memory.  ``retry`` (a
    :class:`~repro.storage.retry.RetryPolicy`) and ``crash_plan``
    (worker name -> jobs before an injected crash) exercise the fault
    tolerance layer; see :class:`~repro.runtime.engine.ThreadedEngine`.
    ``codec`` writes the dataset pre-compressed so fetches move encoded
    bytes; ``adaptive_fetch`` swaps the fixed ``retrieval_threads``
    fan-out for per-path AIMD autotuning
    (:mod:`repro.storage.autotune`).

    ``replicas`` copies every chunk to that many additional stores
    after placement, so the fetch path can fail over (and, with
    ``hedge``, race) replica sources; ``hedge`` (a
    :class:`~repro.storage.health.HedgePolicy`) launches a backup fetch
    against a replica when the primary exceeds its adaptive latency
    threshold; ``breaker`` (a
    :class:`~repro.storage.health.BreakerPolicy`) tracks per-store
    health and routes around stores whose circuit is open.

    ``stripe=(k, m)`` erasure-codes every chunk after placement
    (:func:`~repro.data.dataset.stripe_dataset`): the wire frame is
    split into ``k`` data + ``m`` parity fragments spread round-robin
    over *all* the stores (extra spare stores widen the spread), the
    originals are deleted (storage overhead ``(k+m)/k``), and the fetch
    path races the fragments fastest-k-of-n -- hedging parity fragments
    under the same ``hedge`` policy and masking up to ``m`` lost
    fragments per chunk.  Mutually exclusive with ``replicas``.

    ``pushdown`` enables metadata-first retrieval: ``"prune"`` drops
    chunks the spec's ``relevant(chunk_stats)`` predicate rules out
    before any fetch, ``"verify"`` additionally fetches the pruned
    chunks once and asserts their fold contribution is the identity
    (soundness audit).  The dataset writer records per-chunk statistics
    by default, so any spec declaring the hooks benefits immediately.
    """
    if "local" not in stores or "cloud" not in stores:
        raise ValueError('stores must provide "local" and "cloud" backends')
    if chunk_units is None:
        chunk_units = max(1, len(units) // (n_files * 3))
    index = write_dataset(
        units, spec.fmt, stores["local"], n_files=n_files, chunk_units=chunk_units,
        codec=codec,
    )
    fractions: dict[str, float] = {}
    if local_fraction > 0:
        fractions["local"] = local_fraction
    if local_fraction < 1:
        fractions["cloud"] = 1.0 - local_fraction
    index = distribute_dataset(index, stores, fractions, stores["local"])
    stripe = validate_redundancy(
        replicas=replicas, stripe=stripe, n_stores=len(stores)
    )
    if replicas > 0:
        from repro.data.dataset import replicate_dataset

        index = replicate_dataset(index, stores, n_replicas=replicas)
    if stripe is not None:
        from repro.data.dataset import stripe_dataset

        k, m = stripe
        index = stripe_dataset(index, stores, k=k, m=m)
    clusters = []
    if local_workers > 0:
        clusters.append(
            ClusterConfig("local", "local", local_workers, retrieval_threads)
        )
    if cloud_workers > 0:
        clusters.append(
            ClusterConfig("cloud", "cloud", cloud_workers, retrieval_threads)
        )
    kwargs: dict[str, Any] = {
        "batch_size": batch_size,
        "adaptive_fetch": adaptive_fetch,
        "autotune_params": autotune_params,
        "chunk_cache": chunk_cache,
        "retry": retry,
        "crash_plan": crash_plan,
        "hedge": hedge,
        "breaker": breaker,
        "stripe": stripe,
        "pushdown": pushdown,
    }
    if prefetch is not None:
        # None keeps each engine's own default (the process engine
        # double-buffers its feeders out of the box).
        kwargs["prefetch"] = prefetch
    if min_part_nbytes is not None:
        kwargs["min_part_nbytes"] = min_part_nbytes
    # Dataset preparation is done; fault injectors constructed dormant
    # (``armed=False``) model a store failing after placement -- arm
    # them now so the chaos hits the run's retrieval path only.
    for store in stores.values():
        arm = getattr(store, "arm", None)
        if callable(arm):
            arm()
    return make_engine(engine, clusters, stores, **kwargs).run(spec, index)
