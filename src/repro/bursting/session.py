"""BurstingSession: a long-lived handle on a distributed dataset.

Iterative applications (k-means, PageRank) run many passes over the
*same* geographically split data.  A session writes and distributes the
dataset once, then executes any number of specs -- each pass reuses the
placed files and cluster configuration, which is exactly how the paper's
middleware amortizes data organization across runs.

Example::

    session = BurstingSession.from_units(points, points_format(8), stores,
                                         local_fraction=1/3)
    for _ in range(20):
        result = session.run(KMeansSpec(centroids))
        centroids = result.result.centroids
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from repro.core.api import GeneralizedReductionSpec
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.formats import RecordFormat
from repro.data.index import DataIndex
from repro.runtime import make_engine
from repro.runtime.core import EngineOptions
from repro.runtime.engine import ClusterConfig, RunResult
from repro.storage.autotune import AutotuneParams
from repro.storage.base import StorageBackend
from repro.storage.cache import ChunkCache
from repro.storage.retry import RetryPolicy
from repro.storage.transfer import DEFAULT_MIN_PART_NBYTES

__all__ = ["BurstingSession"]

_MB = 1 << 20


class BurstingSession:
    """Holds a distributed dataset plus an engine, for repeated passes.

    ``prefetch=True`` double-buffers every worker (fetch of job N+1
    overlapped with processing of job N); ``cache_mb`` adds a session-
    wide byte-budgeted :class:`ChunkCache`, so an iterative workload
    fetches each remote chunk once and every later pass hits the cache
    (see :attr:`cache` / :meth:`cache_stats`).

    ``retry`` (a :class:`~repro.storage.retry.RetryPolicy`) makes the
    fetch path survive transient store errors, and ``crash_plan``
    (worker name -> jobs processed before dying, e.g.
    ``{"cloud-w0": 2}``) injects worker crashes that the engine
    contains and recovers from -- see
    :class:`~repro.runtime.engine.ThreadedEngine`.

    ``adaptive_fetch=True`` replaces the fixed ``retrieval_threads``
    fan-out with one AIMD autotuner per (cluster, data location) path
    (see :mod:`repro.storage.autotune`); ``min_part_nbytes`` floors the
    sub-range size so small chunks travel as a single GET.

    ``engine`` selects the execution engine: ``"threaded"`` (default,
    worker threads), ``"process"`` (one OS process per slave with
    shared-memory data handoff -- see
    :class:`~repro.runtime.process_engine.ProcessEngine`), or
    ``"actor"`` (message-passing over explicit channels).  Every engine
    accepts every option -- they all run the same
    :class:`~repro.runtime.core.SlaveRuntime` worker loop.

    ``pushdown`` (``"prune"`` or ``"verify"``) turns on metadata-first
    retrieval for every pass: specs declaring ``relevant``/``priority``
    hooks skip chunks the index statistics rule out.  Iterative
    workloads whose filter narrows each pass (e.g. top-k candidate
    windows) prune more chunks every iteration with no re-organization.
    """

    def __init__(
        self,
        index: DataIndex,
        stores: dict[str, StorageBackend],
        *,
        engine: str = "threaded",
        local_workers: int = 2,
        cloud_workers: int = 2,
        batch_size: int = 2,
        retrieval_threads: int = 2,
        scheduler_factory=None,
        prefetch: bool = False,
        cache_mb: float | None = None,
        retry: RetryPolicy | None = None,
        crash_plan: dict[str, int] | None = None,
        adaptive_fetch: bool = False,
        min_part_nbytes: int = DEFAULT_MIN_PART_NBYTES,
        autotune_params: AutotuneParams | None = None,
        pushdown: str | bool | None = None,
    ) -> None:
        missing = set(index.locations) - set(stores)
        if missing:
            raise ValueError(f"index references unknown stores: {sorted(missing)}")
        self.index = index
        self.stores = stores
        self.cache = ChunkCache(int(cache_mb * _MB)) if cache_mb else None
        clusters = []
        if local_workers > 0:
            clusters.append(
                ClusterConfig("local", "local", local_workers, retrieval_threads)
            )
        if cloud_workers > 0:
            clusters.append(
                ClusterConfig("cloud", "cloud", cloud_workers, retrieval_threads)
            )
        if not clusters:
            raise ValueError("session needs at least one worker")
        kwargs: dict[str, Any] = {
            "batch_size": batch_size,
            "adaptive_fetch": adaptive_fetch,
            "min_part_nbytes": min_part_nbytes,
            "autotune_params": autotune_params,
            "prefetch": prefetch,
            "chunk_cache": self.cache,
            "retry": retry,
            "crash_plan": crash_plan,
            "pushdown": pushdown,
        }
        if scheduler_factory is not None:
            kwargs["scheduler_factory"] = scheduler_factory
        self.engine_name = engine
        self._clusters = clusters
        self._options = EngineOptions(**kwargs)
        self.engine = make_engine(engine, clusters, stores, options=self._options)
        self.passes_run = 0

    @classmethod
    def from_units(
        cls,
        units: np.ndarray,
        fmt: RecordFormat,
        stores: dict[str, StorageBackend],
        *,
        local_fraction: float = 0.5,
        n_files: int = 8,
        chunk_units: int | None = None,
        codec: str | None = None,
        **engine_kwargs: Any,
    ) -> "BurstingSession":
        """Write, chunk, and distribute a dataset, then open a session.

        ``codec`` makes the organizer write the files pre-compressed
        (see :func:`repro.data.dataset.write_dataset`); every fetch then
        moves encoded bytes and decodes after reassembly.
        """
        if "local" not in stores or "cloud" not in stores:
            raise ValueError('stores must provide "local" and "cloud" backends')
        if chunk_units is None:
            chunk_units = max(1, len(units) // (n_files * 3))
        index = write_dataset(
            units, fmt, stores["local"], n_files=n_files, chunk_units=chunk_units,
            codec=codec,
        )
        fractions: dict[str, float] = {}
        if local_fraction > 0:
            fractions["local"] = local_fraction
        if local_fraction < 1:
            fractions["cloud"] = 1.0 - local_fraction
        index = distribute_dataset(index, stores, fractions, stores["local"])
        return cls(index, stores, **engine_kwargs)

    def run(self, spec: GeneralizedReductionSpec) -> RunResult:
        """Execute one pass of ``spec`` over the session's dataset.

        The session is now a thin compatibility wrapper over the
        multi-tenant :class:`~repro.service.BurstingService`: each pass
        spins up a one-shot single-tenant service over the session's
        *live* store map, submits one job, blocks on its result, and
        shuts the service down -- so per-pass semantics (crash plans,
        store swaps between passes, the shared chunk cache) are exactly
        the historical one-shot engine run.
        """
        from repro.service import BurstingService

        service = BurstingService(
            self._clusters,
            self.stores,
            engine=self.engine_name,
            options=self._options,
        )
        try:
            result = service.submit(spec, self.index).result()
        finally:
            service.shutdown()
        self.passes_run += 1
        return result

    def cache_stats(self) -> dict | None:
        """Snapshot of the session chunk cache (None when disabled)."""
        return self.cache.snapshot() if self.cache is not None else None

    def iterate(
        self,
        make_spec: Callable[[Any], GeneralizedReductionSpec],
        state: Any,
        *,
        max_iters: int = 100,
        converged: Callable[[Any, Any], bool] | None = None,
    ) -> Iterator[tuple[int, RunResult, Any]]:
        """Drive an iterative computation to convergence.

        ``make_spec(state)`` builds the pass's spec; each pass's
        ``result.result`` becomes the next state.  Yields
        ``(iteration, run_result, new_state)`` after every pass and
        stops when ``converged(old_state, new_state)`` returns True (or
        after ``max_iters``).
        """
        if max_iters <= 0:
            raise ValueError("max_iters must be positive")
        for it in range(1, max_iters + 1):
            rr = self.run(make_spec(state))
            new_state = rr.result
            yield it, rr, new_state
            if converged is not None and converged(state, new_state):
                return
            state = new_state
