"""Cloud-bursting drivers, environment configs, and report generation."""

from repro.bursting.algorithms import (
    IterationRecord,
    KMeansRun,
    PageRankRun,
    kmeans_distributed,
    pagerank_distributed,
)
from repro.bursting.session import BurstingSession

from repro.bursting.config import (
    EnvironmentConfig,
    paper_environments,
    scalability_environments,
)
from repro.bursting.driver import (
    paper_index,
    run_paper_sweep,
    run_scalability_sweep,
    run_threaded_bursting,
    simulate_environment,
)
from repro.bursting.report import (
    average_slowdown_pct,
    fault_rows,
    fig3_rows,
    fig4_rows,
    format_table,
    pipeline_rows,
    table1_rows,
    table2_rows,
)

__all__ = [
    "IterationRecord",
    "KMeansRun",
    "PageRankRun",
    "kmeans_distributed",
    "pagerank_distributed",
    "BurstingSession",
    "EnvironmentConfig",
    "paper_environments",
    "scalability_environments",
    "paper_index",
    "run_paper_sweep",
    "run_scalability_sweep",
    "run_threaded_bursting",
    "simulate_environment",
    "average_slowdown_pct",
    "fault_rows",
    "fig3_rows",
    "fig4_rows",
    "format_table",
    "pipeline_rows",
    "table1_rows",
    "table2_rows",
]
