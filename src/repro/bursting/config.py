"""Environment configurations from the paper's evaluation (Section IV).

Five configurations share the same aggregate computing power: two
centralized baselines (env-local, env-cloud) and three hybrids with a
50-50 split of cores and increasing skew in the data distribution
(env-50/50, env-33/67, env-17/83).  kmeans uses more cloud cores (44
all-cloud, 22 hybrid) because m1.large cores are slower than the local
Xeons and the paper equalized throughput, not core counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.calibration import AppSimProfile, ResourceParams
from repro.sim.simrun import SimClusterConfig

__all__ = ["EnvironmentConfig", "paper_environments", "scalability_environments"]


@dataclass(frozen=True)
class EnvironmentConfig:
    """One evaluation environment."""

    name: str
    local_data_fraction: float  # share of dataset bytes stored locally
    local_cores: int
    cloud_cores: int

    @property
    def data_fractions(self) -> dict[str, float]:
        f = self.local_data_fraction
        fractions: dict[str, float] = {}
        if f > 0:
            fractions["local"] = f
        if f < 1:
            fractions["cloud"] = 1.0 - f
        return fractions

    def clusters(
        self, params: ResourceParams, retrieval_threads: int = 8
    ) -> list[SimClusterConfig]:
        out: list[SimClusterConfig] = []
        if self.local_cores > 0:
            out.append(
                SimClusterConfig(
                    name="local",
                    location="local",
                    n_cores=self.local_cores,
                    core_speed=params.local_core_speed,
                    retrieval_threads=retrieval_threads,
                )
            )
        if self.cloud_cores > 0:
            out.append(
                SimClusterConfig(
                    name="cloud",
                    location="cloud",
                    n_cores=self.cloud_cores,
                    core_speed=params.cloud_core_speed,
                    retrieval_threads=retrieval_threads,
                )
            )
        if not out:
            raise ValueError(f"environment {self.name!r} has no cores")
        return out


def paper_environments(profile: AppSimProfile) -> list[EnvironmentConfig]:
    """The five Figure-3 configurations for one application."""
    hybrid_cloud = profile.hybrid_cloud_cores
    return [
        EnvironmentConfig("env-local", 1.0, 32, 0),
        EnvironmentConfig("env-cloud", 0.0, 0, profile.cloud_only_cores),
        EnvironmentConfig("env-50/50", 0.50, 16, hybrid_cloud),
        EnvironmentConfig("env-33/67", 1.0 / 3.0, 16, hybrid_cloud),
        EnvironmentConfig("env-17/83", 1.0 / 6.0, 16, hybrid_cloud),
    ]


def scalability_environments() -> list[EnvironmentConfig]:
    """Figure-4 configurations: all data in S3, (m, m) cores doubling."""
    return [
        EnvironmentConfig(f"({m},{m})", 0.0, m, m) for m in (4, 8, 16, 32)
    ]
