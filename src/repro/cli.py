"""Command-line interface.

Exposes the reproduction's main entry points without writing Python::

    python -m repro sweep --app knn            # Figure-3 environments
    python -m repro scalability --app kmeans   # Figure-4 core doublings
    python -m repro simulate --app pagerank --local-cores 16 \\
        --cloud-cores 16 --local-fraction 0.33  # one configuration
    python -m repro provision --app knn --local-cores 16 \\
        --local-fraction 0.17 --deadline 60     # cost-aware sizing
    python -m repro evaluate                    # every paper artifact
    python -m repro demo                        # threaded wordcount demo
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import (
    run_paper_sweep,
    run_scalability_sweep,
    simulate_environment,
)
from repro.bursting.report import (
    average_slowdown_pct,
    fig3_rows,
    fig4_rows,
    format_table,
    table1_rows,
    table2_rows,
)
from repro.cost.provisioning import (
    cheapest_meeting_deadline,
    fastest_within_budget,
    pareto_frontier,
    tradeoff_curve,
)
from repro.sim.calibration import APP_PROFILES
from repro.storage.codecs import CODEC_NAMES

__all__ = ["main", "build_parser"]

PAPER_APPS = tuple(APP_PROFILES)
CODEC_CHOICES = tuple(CODEC_NAMES)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data-intensive computing with cloud bursting (SC 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sweep", help="run the Figure-3 environment sweep for one app")
    p.add_argument("--app", choices=PAPER_APPS, required=True)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("scalability", help="run the Figure-4 core-doubling sweep")
    p.add_argument("--app", choices=PAPER_APPS, required=True)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("simulate", help="simulate one custom configuration")
    p.add_argument("--app", choices=PAPER_APPS, required=True)
    p.add_argument("--local-cores", type=int, default=16)
    p.add_argument("--cloud-cores", type=int, default=16)
    p.add_argument("--local-fraction", type=float, default=0.5,
                   help="fraction of dataset bytes stored locally (0..1)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prefetch", action="store_true",
                   help="pipeline each core: fetch job N+1 under compute of job N")
    p.add_argument("--cache-mb", type=float, default=0.0,
                   help="per-cluster chunk-cache budget in MB (0 = no cache)")
    p.add_argument("--iterations", type=int, default=1,
                   help="iterative passes; 2+ reuse the chunk caches across passes")
    p.add_argument("--fail", action="append", default=[], metavar="CLUSTER:N@T",
                   help="kill N workers of CLUSTER at simulated time T seconds "
                        "(repeatable); their in-flight jobs are reassigned")
    p.add_argument("--codec", choices=CODEC_CHOICES, default=None,
                   help="model a pre-compressed dataset: only encoded bytes "
                        "cross the links, each chunk pays its decode cost")
    p.add_argument("--adaptive-fetch", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="AIMD-autotune the retrieval fan-out per "
                        "(cluster, data location) path instead of a fixed "
                        "thread count")

    p = sub.add_parser("provision", help="time/cost-aware cloud-core sizing")
    p.add_argument("--app", choices=PAPER_APPS, required=True)
    p.add_argument("--local-cores", type=int, default=16)
    p.add_argument("--local-fraction", type=float, default=1 / 6)
    p.add_argument("--deadline", type=float, default=None, help="seconds")
    p.add_argument("--budget", type=float, default=None, help="US dollars")
    p.add_argument("--options", type=int, nargs="+", default=[0, 4, 8, 16, 32, 64],
                   help="candidate cloud core counts")

    p = sub.add_parser("place", help="data-placement advisor for one app")
    p.add_argument("--app", choices=PAPER_APPS, required=True)
    p.add_argument("--local-cores", type=int, default=16)
    p.add_argument("--cloud-cores", type=int, default=16)
    p.add_argument("--objective", choices=("time", "cost"), default="time")

    p = sub.add_parser("trace", help="ASCII Gantt timeline of one configuration")
    p.add_argument("--app", choices=PAPER_APPS, required=True)
    p.add_argument("--local-cores", type=int, default=8)
    p.add_argument("--cloud-cores", type=int, default=8)
    p.add_argument("--local-fraction", type=float, default=1 / 6)
    p.add_argument("--width", type=int, default=96)
    p.add_argument("--seed", type=int, default=0)

    sub.add_parser("evaluate", help="regenerate every paper table and figure")

    p = sub.add_parser("demo", help="run the wordcount quickstart")
    p.add_argument("--tokens", type=int, default=100_000)
    p.add_argument("--vocab", type=int, default=2_000)
    p.add_argument("--engine", choices=("threaded", "process", "actor"),
                   default="threaded",
                   help="execution engine: worker threads (default), one OS "
                        "process per slave with shared-memory data handoff, "
                        "or message-passing actors; all engines accept all "
                        "options below")
    p.add_argument("--prefetch", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="double-buffer every worker: fetch job N+1 while "
                        "processing job N (process engine defaults to on)")
    p.add_argument("--cache-mb", type=float, default=0.0,
                   help="chunk-cache budget in MB shared by all fetchers "
                        "(0 = no cache)")
    p.add_argument("--inject-fault", metavar="SPEC", default=None,
                   help="wrap the cloud store in a deterministic fault injector, "
                        'e.g. "transient:p=0.3,seed=7", "permanent:key=f3", '
                        '"latency:p=0.1,s=0.05", "stall:p=0.2,s=0.05" '
                        "(clauses joined by +)")
    p.add_argument("--replicas", type=int, default=0, metavar="N",
                   help="copy every chunk to N additional stores after "
                        "placement; the fetch path fails over to a replica "
                        "when a source store is down (0 = no replication)")
    p.add_argument("--stripe", metavar="K:M", default=None,
                   help="erasure-code every chunk after placement into K data "
                        "+ M parity fragments spread round-robin over all "
                        "stores (storage overhead (K+M)/K); the fetch path "
                        "races fragments fastest-K-of-N and masks up to M "
                        "lost fragments per chunk (mutually exclusive with "
                        "--replicas)")
    p.add_argument("--spares", type=int, default=0, metavar="N",
                   help="add N extra in-memory spare stores before placement "
                        "so --replicas/--stripe spread over more sites")
    p.add_argument("--hedge", metavar="SPEC", nargs="?", const="", default=None,
                   help="race a replica when a fetch exceeds the store's "
                        "adaptive latency threshold; optional SPEC like "
                        '"mult=3,min=0.05,max=1" (bare --hedge = defaults)')
    p.add_argument("--breaker", metavar="SPEC", nargs="?", const="", default=None,
                   help="per-store circuit breaker: skip stores that keep "
                        "failing until their cooldown elapses; optional SPEC "
                        'like "fails=3,recovery=1.0,probes=1,close=1,'
                        'error=0.5" (bare --breaker = defaults)')
    p.add_argument("--retry", metavar="SPEC", default=None,
                   help="retry policy for the fetch path, "
                        'e.g. "max=5,base=0.01,deadline=30"')
    p.add_argument("--crash-worker", action="append", default=[],
                   metavar="NAME:N",
                   help="crash worker NAME (e.g. cloud-w0) after it has "
                        "processed N jobs (repeatable); the engine contains "
                        "the crash and re-executes its in-flight job")
    p.add_argument("--codec", choices=CODEC_CHOICES, default=None,
                   help="write the dataset pre-compressed; fetches move "
                        "encoded bytes and decode after reassembly (lz4 "
                        "falls back to zlib if the package is missing)")
    p.add_argument("--adaptive-fetch", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="AIMD-autotune the retrieval fan-out per "
                        "(cluster, data location) path instead of fixed "
                        "retrieval threads")
    p.add_argument("--min-part-kb", type=float, default=None,
                   help="floor on parallel sub-range size in KiB; smaller "
                        "fetches coalesce into fewer GETs (default 4)")
    p.add_argument("--filter", metavar="LO:HI", default=None,
                   help="count only token ids in the inclusive range LO:HI "
                        "(runs the range-filtered wordcount variant; the "
                        "demo sorts the tokens so chunk min/max statistics "
                        "make pruning effective)")
    p.add_argument("--pushdown", metavar="MODE", nargs="?", const="prune",
                   default=None, choices=("prune", "verify"),
                   help="metadata-first retrieval: prune chunks the index "
                        "statistics prove irrelevant before any fetch "
                        '(bare --pushdown = "prune"; "verify" also fetches '
                        "pruned chunks once and asserts they contribute "
                        "nothing)")

    p = sub.add_parser(
        "service",
        help="multi-tenant bursting service: concurrent jobs on one fleet",
    )
    ssub = p.add_subparsers(dest="service_command", required=True)
    pr = ssub.add_parser(
        "run",
        help="serve N concurrent jobs (mixed wordcount + kmeans, two "
             "tenants) over one shared slave fleet and verify every result",
    )
    pr.add_argument("--jobs", type=int, default=4,
                    help="concurrent jobs to submit (alternating apps and "
                         "tenants)")
    pr.add_argument("--engine", choices=("threaded", "process", "actor"),
                    default="threaded",
                    help="threaded interleaves jobs chunk-by-chunk on one "
                         "fleet; process/actor execute each admitted job "
                         "whole (admission-level sharing)")
    pr.add_argument("--tokens", type=int, default=60_000,
                    help="wordcount dataset size")
    pr.add_argument("--points", type=int, default=12_000,
                    help="kmeans dataset size")
    pr.add_argument("--vocab", type=int, default=1_000)
    pr.add_argument("--tenants", default="analytics:2,ingest:1",
                    metavar="NAME:WEIGHT,...",
                    help="tenant fair-share weights; submissions round-robin "
                         "over these tenants")
    pr.add_argument("--max-inflight", type=int, default=None,
                    help="per-tenant cap on concurrently running jobs "
                         "(excess submissions queue FIFO)")
    pr.add_argument("--crash-worker", action="append", default=[],
                    metavar="NAME:N",
                    help="crash fleet worker NAME after N jobs (repeatable); "
                         "the service contains the crash per job")
    pr.add_argument("--cache-mb", type=float, default=0.0,
                    help="shared chunk-cache budget in MB (0 = no cache)")
    pr.add_argument("--status-json", default=None, metavar="PATH",
                    help="write the final per-job service rows to PATH "
                         "(readable later with 'repro service status')")
    ps = ssub.add_parser(
        "submit",
        help="one-shot: submit a single job to a fresh service and wait",
    )
    ps.add_argument("--app", choices=("wordcount", "kmeans"),
                    default="wordcount")
    ps.add_argument("--tenant", default="default")
    ps.add_argument("--engine", choices=("threaded", "process", "actor"),
                    default="threaded")
    ps.add_argument("--tokens", type=int, default=60_000)
    ps.add_argument("--points", type=int, default=12_000)
    ps.add_argument("--vocab", type=int, default=1_000)
    ps.add_argument("--status-json", default=None, metavar="PATH")
    pt = ssub.add_parser(
        "status",
        help="print the service rows recorded by a previous run "
             "--status-json",
    )
    pt.add_argument("path", help="JSON file written by run/submit "
                                 "--status-json")
    return parser


def _cmd_sweep(args) -> int:
    results = run_paper_sweep(args.app, seed=args.seed)
    print(format_table(fig3_rows(results), f"Figure 3 -- {args.app} breakdown"))
    print()
    print(format_table(table1_rows(results), f"Table I -- job assignment ({args.app})"))
    print()
    print(format_table(table2_rows(results), f"Table II -- slowdowns ({args.app})"))
    return 0


def _cmd_scalability(args) -> int:
    results = run_scalability_sweep(args.app, seed=args.seed)
    print(format_table(fig4_rows(results), f"Figure 4 -- {args.app} scalability"))
    return 0


def _parse_failures(specs: list[str]):
    """Parse repeated ``CLUSTER:N@T`` flags into FailureSpec objects."""
    from repro.sim.simrun import FailureSpec

    failures = []
    for text in specs:
        try:
            cluster, _, rest = text.partition(":")
            n_text, _, t_text = rest.partition("@")
            failures.append(FailureSpec(cluster, int(n_text), float(t_text)))
        except ValueError as exc:
            raise ValueError(
                f"bad --fail spec {text!r} (expected CLUSTER:N@T, "
                f"e.g. cloud:2@40): {exc}"
            ) from None
    return failures


def _cmd_simulate(args) -> int:
    if not 0.0 <= args.local_fraction <= 1.0:
        print("error: --local-fraction must be in [0, 1]", file=sys.stderr)
        return 2
    if args.local_cores <= 0 and args.cloud_cores <= 0:
        print("error: need at least one core somewhere", file=sys.stderr)
        return 2
    if args.iterations <= 0:
        print("error: --iterations must be positive", file=sys.stderr)
        return 2
    if args.cache_mb < 0:
        print("error: --cache-mb must be non-negative", file=sys.stderr)
        return 2
    try:
        failures = _parse_failures(args.fail)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    env = EnvironmentConfig(
        "custom", args.local_fraction, args.local_cores, args.cloud_cores
    )
    cache_nbytes = int(args.cache_mb * (1 << 20))
    caches = None
    res = None
    for it in range(1, args.iterations + 1):
        res = simulate_environment(
            args.app, env, seed=args.seed, prefetch=args.prefetch,
            cache_nbytes=cache_nbytes, caches=caches,
            failures=failures or None,
            codec=args.codec, adaptive_fetch=args.adaptive_fetch,
        )
        caches = res.caches
        if args.iterations > 1:
            hit = res.stats.cache_hit_rate
            print(f"iteration {it}: {res.total_s:.2f}s"
                  f"   cache hit rate: {hit:.0%}")
    print(format_table(
        res.stats.breakdown_rows(),
        f"{args.app}: {args.local_cores} local + {args.cloud_cores} cloud cores, "
        f"{args.local_fraction:.0%} of data local",
    ))
    if args.prefetch or cache_nbytes:
        print()
        print(format_table(res.stats.pipeline_rows(), "pipeline decomposition"))
    if args.codec or args.adaptive_fetch:
        print()
        print(format_table(res.stats.transfer_rows(), "transfer layer"))
    if failures:
        print()
        print(format_table(res.stats.fault_rows(), "fault recovery"))
        print(f"workers failed: {res.stats.n_failed_workers}   "
              f"jobs requeued: {res.stats.n_requeued_jobs}")
    print(f"total: {res.total_s:.2f}s   "
          f"global reduction: {res.stats.global_reduction_s:.2f}s   "
          f"jobs stolen: {res.stats.jobs_stolen}")
    return 0


def _cmd_provision(args) -> int:
    points = tradeoff_curve(
        args.app,
        local_cores=args.local_cores,
        local_data_fraction=args.local_fraction,
        cloud_core_options=args.options,
    )
    print(format_table([p.to_dict() for p in points], "time/cost trade-off"))
    frontier = pareto_frontier(points)
    print("\nPareto frontier:",
          ", ".join(f"{p.cloud_cores}c/{p.time_s:.0f}s/${p.cost_usd:.2f}" for p in frontier))
    if args.deadline is not None:
        pick = cheapest_meeting_deadline(points, args.deadline)
        if pick is None:
            print(f"deadline {args.deadline:.0f}s: infeasible with these options")
            return 1
        print(f"deadline {args.deadline:.0f}s -> {pick.cloud_cores} cloud cores "
              f"({pick.time_s:.1f}s, ${pick.cost_usd:.3f})")
    if args.budget is not None:
        pick = fastest_within_budget(points, args.budget)
        if pick is None:
            print(f"budget ${args.budget:.2f}: infeasible with these options")
            return 1
        print(f"budget ${args.budget:.2f} -> {pick.cloud_cores} cloud cores "
              f"({pick.time_s:.1f}s, ${pick.cost_usd:.3f})")
    return 0


def _cmd_place(args) -> int:
    from repro.cost.placement import best_placement, placement_curve

    points = placement_curve(
        args.app, local_cores=args.local_cores, cloud_cores=args.cloud_cores
    )
    print(format_table([p.to_dict() for p in points], "placement sweep"))
    best = best_placement(points, objective=args.objective)
    print(f"\nbest ({args.objective}): {best.local_fraction:.0%} of data local "
          f"-> {best.time_s:.1f}s, ${best.cost.total_usd:.3f}")
    return 0


def _cmd_trace(args) -> int:
    from repro.bursting.driver import paper_index
    from repro.sim.calibration import ResourceParams
    from repro.sim.simrun import simulate_run
    from repro.sim.trace import Tracer, render_gantt

    env = EnvironmentConfig(
        "trace", args.local_fraction, args.local_cores, args.cloud_cores
    )
    profile = APP_PROFILES[args.app]
    params = ResourceParams()
    tracer = Tracer()
    res = simulate_run(
        paper_index(profile, env), env.clusters(params), profile, params,
        seed=args.seed, tracer=tracer,
    )
    print(f"{args.app}: {res.total_s:.1f}s, {res.stats.jobs_stolen} stolen, "
          f"utilization {tracer.utilization():.0%}\n")
    print(render_gantt(tracer, width=args.width))
    return 0


def _cmd_evaluate(_args) -> int:
    sweeps = {}
    for app in PAPER_APPS:
        sweeps[app] = run_paper_sweep(app)
        print(format_table(fig3_rows(sweeps[app]), f"Figure 3 -- {app}"))
        print()
        print(format_table(table1_rows(sweeps[app]), f"Table I -- {app}"))
        print()
        print(format_table(table2_rows(sweeps[app]), f"Table II -- {app}"))
        print()
    for app in PAPER_APPS:
        print(format_table(fig4_rows(run_scalability_sweep(app)), f"Figure 4 -- {app}"))
        print()
    print(f"Average hybrid slowdown: {average_slowdown_pct(sweeps):.2f}% (paper: 15.55%)")
    return 0


def _cmd_demo(args) -> int:
    import numpy as np

    from repro.apps.filtered import FilteredWordCountSpec, filtered_wordcount_exact
    from repro.apps.wordcount import WordCountSpec, wordcount_exact
    from repro.bursting.driver import run_threaded_bursting
    from repro.data.generator import generate_tokens
    from repro.storage.faults import FaultInjectingStore, FaultSpec
    from repro.storage.health import BreakerPolicy, HedgePolicy
    from repro.storage.local import MemoryStore
    from repro.storage.retry import RetryPolicy
    from repro.storage.s3 import SimulatedS3Store

    try:
        fault_spec = (
            FaultSpec.parse(args.inject_fault) if args.inject_fault else None
        )
        retry = RetryPolicy.parse(args.retry) if args.retry else None
        hedge = HedgePolicy.parse(args.hedge) if args.hedge is not None else None
        breaker = (
            BreakerPolicy.parse(args.breaker) if args.breaker is not None else None
        )
        if args.replicas < 0:
            raise ValueError("--replicas must be non-negative")
        if args.spares < 0:
            raise ValueError("--spares must be non-negative")
        stripe: tuple[int, int] | None = None
        if args.stripe is not None:
            k_text, sep, m_text = args.stripe.partition(":")
            if not sep:
                raise ValueError(
                    f"bad --stripe spec {args.stripe!r} (expected K:M, e.g. 4:2)"
                )
            stripe = (int(k_text), int(m_text))
        crash_plan: dict[str, int] = {}
        for text in args.crash_worker:
            name, _, n_text = text.rpartition(":")
            if not name:
                raise ValueError(
                    f"bad --crash-worker spec {text!r} (expected NAME:N, "
                    f"e.g. cloud-w0:2)"
                )
            crash_plan[name] = int(n_text)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.min_part_kb is not None and args.min_part_kb < 0:
        print("error: --min-part-kb must be non-negative", file=sys.stderr)
        return 2
    if args.cache_mb < 0:
        print("error: --cache-mb must be non-negative", file=sys.stderr)
        return 2
    token_range: tuple[int, int] | None = None
    if args.filter is not None:
        try:
            lo_text, _, hi_text = args.filter.partition(":")
            token_range = (int(lo_text), int(hi_text))
            if token_range[0] > token_range[1]:
                raise ValueError("LO must not exceed HI")
        except ValueError as exc:
            print(f"error: bad --filter spec {args.filter!r} "
                  f"(expected LO:HI, e.g. 100:199): {exc}", file=sys.stderr)
            return 2
    tokens = generate_tokens(args.tokens, args.vocab, seed=7)
    if token_range is not None:
        # Clustered data is what makes min/max pruning bite: sorted
        # tokens give each chunk a narrow value range.
        tokens = np.sort(tokens)
    cloud: Any = SimulatedS3Store()
    if fault_spec is not None:
        # Dormant until the driver arms it: faults model a store that
        # degrades after placement, so prep (incl. replication) is clean.
        cloud = FaultInjectingStore(cloud, fault_spec, armed=False)
    stores = {"local": MemoryStore("local"), "cloud": cloud}
    for i in range(args.spares):
        # Spare sites widen the fragment/replica spread; they hold no
        # primary placement, so workers only fetch from them.
        stores[f"spare{i}"] = MemoryStore(f"spare{i}")
    extra: dict[str, Any] = {}
    if args.prefetch is not None:
        # Unset means each engine keeps its own default (the process
        # engine's feeders double-buffer out of the box).
        extra["prefetch"] = args.prefetch
    if args.cache_mb:
        from repro.storage.cache import ChunkCache

        extra["chunk_cache"] = ChunkCache(int(args.cache_mb * (1 << 20)))
    if token_range is not None:
        spec: Any = FilteredWordCountSpec(*token_range)
        expected = filtered_wordcount_exact(tokens, *token_range)
        what = f"wordcount[{token_range[0]}:{token_range[1]}]"
    else:
        spec = WordCountSpec()
        expected = wordcount_exact(tokens)
        what = "wordcount"
    try:
        rr = run_threaded_bursting(
            spec, tokens, stores, engine=args.engine,
            local_fraction=0.5, retry=retry, crash_plan=crash_plan or None,
            codec=args.codec, adaptive_fetch=args.adaptive_fetch,
            min_part_nbytes=(
                int(args.min_part_kb * 1024)
                if args.min_part_kb is not None
                else None
            ),
            replicas=args.replicas, stripe=stripe, hedge=hedge, breaker=breaker,
            pushdown=args.pushdown,
            **extra,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ok = rr.result == expected
    print(f"{what} over {args.tokens} tokens across 2 sites "
          f"({args.engine} engine): "
          f"{'OK' if ok else 'MISMATCH'}; "
          f"{rr.stats.jobs_processed} jobs ({rr.stats.jobs_stolen} stolen), "
          f"{rr.stats.total_s:.3f}s wall")
    if args.pushdown is not None:
        from repro.bursting.report import format_table

        print(format_table(rr.stats.pushdown_rows(), "metadata-first retrieval"))
    if args.engine == "process":
        from repro.bursting.report import format_table

        print(format_table(rr.stats.ipc_rows(), "cross-process data movement"))
    if args.codec or args.adaptive_fetch:
        from repro.bursting.report import format_table

        print(format_table(rr.stats.transfer_rows(), "transfer layer"))
    if fault_spec is not None or retry is not None or crash_plan:
        parts = [
            f"retries: {rr.stats.n_retries}",
            f"giveups: {rr.stats.n_errors}",
            f"requeued jobs: {rr.stats.n_requeued_jobs}",
            f"failed workers: {rr.stats.n_failed_workers}",
        ]
        if fault_spec is not None:
            inj = cloud.injection_counts()
            parts.append(
                "injected: "
                + "/".join(f"{k}={v}" for k, v in sorted(inj.items()))
            )
        print("fault tolerance: " + "   ".join(parts))
    if args.replicas or stripe is not None or hedge is not None or breaker is not None:
        parts = [
            f"failovers: {rr.stats.n_failovers}",
            f"hedges: {rr.stats.n_hedges}",
            f"hedge wins: {rr.stats.hedge_wins}",
            f"breaker skips: {rr.stats.n_breaker_skips}",
            f"breaker transitions: {rr.stats.n_breaker_transitions}",
        ]
        if stripe is not None:
            parts += [
                f"fragments: {rr.stats.n_fragments}",
                f"parity decodes: {rr.stats.n_parity_decodes}",
                f"wasted frag bytes: {rr.stats.fragments_wasted_bytes}",
            ]
        p95 = rr.stats.fetch_p95_s
        if p95:
            parts.append(f"fetch p95: {p95 * 1e3:.1f}ms")
        print("retrieval robustness: " + "   ".join(parts))
        for loc, snap in rr.stats.breakers.items():
            if snap["n_opened"]:
                print(f"  breaker[{loc}]: {snap['state']}  "
                      f"opened={snap['n_opened']} half_opened={snap['n_half_opened']} "
                      f"closed={snap['n_closed']} rejected={snap['n_rejected']}")
    return 0 if ok else 1


def _service_env(args):
    """Shared dataset/cluster construction for the service subcommands."""
    from repro.apps.kmeans import KMeansSpec, lloyd_step
    from repro.apps.wordcount import WordCountSpec, wordcount_exact
    from repro.data.dataset import distribute_dataset, write_dataset
    from repro.data.generator import generate_points, generate_tokens
    from repro.runtime import ClusterConfig
    from repro.storage.local import MemoryStore
    from repro.storage.s3 import S3Profile, SimulatedS3Store

    stores = {
        "local": MemoryStore("local"),
        "cloud": SimulatedS3Store(profile=S3Profile.unthrottled()),
    }
    clusters = [
        ClusterConfig("local", "local", 2, 2),
        ClusterConfig("cloud", "cloud", 2, 2),
    ]
    toks = generate_tokens(args.tokens, args.vocab, seed=7)
    wspec = WordCountSpec()
    windex = write_dataset(
        toks, wspec.fmt, stores["local"], n_files=4,
        chunk_units=max(1, args.tokens // 12), key_prefix="wc",
    )
    windex = distribute_dataset(
        windex, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
    )
    pts = generate_points(args.points, 4, n_clusters=3, spread=0.1, seed=8)
    cents = pts[:3].copy()
    kspec = KMeansSpec(cents)
    kindex = write_dataset(
        pts, kspec.fmt, stores["local"], n_files=4,
        chunk_units=max(1, args.points // 12), key_prefix="km",
    )
    kindex = distribute_dataset(
        kindex, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
    )
    apps = {
        "wordcount": (wspec, windex, wordcount_exact(toks)),
        "kmeans": (kspec, kindex, lloyd_step(pts, cents)),
    }
    return stores, clusters, apps


def _verify_service_result(name, rr, expected) -> bool:
    import numpy as np

    if name == "wordcount":
        return rr.result == expected
    return bool(
        np.allclose(rr.result.centroids, expected.centroids)
        and np.array_equal(rr.result.counts, expected.counts)
    )


def _write_status_json(path, rows) -> None:
    import json

    with open(path, "w") as f:
        json.dump(rows, f, indent=2)


def _cmd_service(args) -> int:
    from repro.bursting.report import format_table

    if args.service_command == "status":
        import json

        with open(args.path) as f:
            rows = json.load(f)
        print(format_table(rows, "bursting service -- jobs"))
        return 0

    from repro.service import BurstingService, TenantConfig

    if args.service_command == "submit":
        stores, clusters, apps = _service_env(args)
        spec, index, expected = apps[args.app]
        service = BurstingService(clusters, stores, engine=args.engine,
                                  batch_size=2)
        try:
            handle = service.submit(spec, index, tenant=args.tenant)
            rr = handle.result()
        finally:
            service.shutdown()
        ok = _verify_service_result(args.app, rr, expected)
        print(f"{handle.run_id} ({args.app}, tenant {args.tenant}): "
              f"{'OK' if ok else 'MISMATCH'}; "
              f"{rr.stats.jobs_processed} jobs, {rr.stats.total_s:.3f}s wall")
        if args.status_json:
            _write_status_json(args.status_json, service.service_rows())
        return 0 if ok else 1

    # service run: N concurrent jobs, mixed apps, round-robin tenants.
    try:
        tenants: dict[str, TenantConfig] = {}
        for part in args.tenants.split(","):
            name, sep, w_text = part.strip().partition(":")
            if not name or not sep:
                raise ValueError(
                    f"bad --tenants entry {part!r} (expected NAME:WEIGHT)"
                )
            tenants[name] = TenantConfig(
                weight=float(w_text), max_inflight=args.max_inflight
            )
        crash_plan: dict[str, int] = {}
        for text in args.crash_worker:
            name, _, n_text = text.rpartition(":")
            if not name:
                raise ValueError(
                    f"bad --crash-worker spec {text!r} (expected NAME:N)"
                )
            crash_plan[name] = int(n_text)
        if args.jobs < 1:
            raise ValueError("--jobs must be >= 1")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    stores, clusters, apps = _service_env(args)
    extra: dict[str, Any] = {}
    if crash_plan:
        extra["crash_plan"] = crash_plan
        extra["min_part_nbytes"] = 0
    if args.cache_mb:
        from repro.storage.cache import ChunkCache

        extra["chunk_cache"] = ChunkCache(int(args.cache_mb * (1 << 20)))
    service = BurstingService(
        clusters, stores, engine=args.engine, tenants=tenants,
        batch_size=2, **extra,
    )
    tenant_names = list(tenants)
    app_names = list(apps)
    handles = []
    try:
        for i in range(args.jobs):
            app = app_names[i % len(app_names)]
            tenant = tenant_names[i % len(tenant_names)]
            spec, index, _ = apps[app]
            handles.append((app, service.submit(spec, index, tenant=tenant)))
        n_ok = 0
        for app, handle in handles:
            rr = handle.result()
            ok = _verify_service_result(app, rr, apps[app][2])
            n_ok += ok
            print(f"{handle.run_id} ({app}, tenant {handle.tenant}): "
                  f"{'OK' if ok else 'MISMATCH'}; "
                  f"{rr.stats.jobs_processed} jobs "
                  f"({rr.stats.jobs_stolen} stolen, "
                  f"{rr.stats.n_failed_workers} workers failed, "
                  f"{rr.stats.jobs_recovered} recovered), "
                  f"{rr.stats.total_s:.3f}s wall")
        rows = service.service_rows()
        report = service.tenant_report()
    finally:
        service.shutdown()
    print(format_table(rows, "bursting service -- jobs"))
    print("tenants: " + "   ".join(
        f"{name}: weight={t['weight']} served={t['served_chunks']}"
        for name, t in sorted(report.items())
    ))
    if args.status_json:
        _write_status_json(args.status_json, rows)
    all_ok = n_ok == len(handles)
    print(f"service: {n_ok}/{len(handles)} jobs OK "
          f"({'OK' if all_ok else 'MISMATCH'})")
    return 0 if all_ok else 1


_COMMANDS = {
    "sweep": _cmd_sweep,
    "scalability": _cmd_scalability,
    "simulate": _cmd_simulate,
    "provision": _cmd_provision,
    "place": _cmd_place,
    "trace": _cmd_trace,
    "evaluate": _cmd_evaluate,
    "demo": _cmd_demo,
    "service": _cmd_service,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
