"""Record formats: how data units are laid out in bytes.

The paper's data organizer works on three granularities -- files, chunks,
and *data units*, where a data unit is "the smallest processable data
element in the system".  A :class:`RecordFormat` defines the binary layout
of one data unit.  All our formats are fixed-size records backed by a
numpy dtype so that a whole group of units can be decoded with one
zero-copy ``np.frombuffer`` call and processed with vectorized kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["RecordFormat", "points_format", "edges_format", "tokens_format"]


@dataclass(frozen=True)
class RecordFormat:
    """Fixed-size binary record layout for data units.

    Parameters
    ----------
    name:
        Human-readable identifier, stored in the index file.
    dtype:
        Scalar numpy dtype of each field of the record.
    record_shape:
        Trailing shape of a single record.  ``()`` means one scalar per
        unit; ``(d,)`` means each unit is a ``d``-vector (e.g. a point in
        d-dimensional space); ``(2,)`` an edge, etc.
    """

    name: str
    dtype: Any
    record_shape: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        object.__setattr__(self, "record_shape", tuple(int(s) for s in self.record_shape))
        if any(s <= 0 for s in self.record_shape):
            raise ValueError(f"record_shape must be positive, got {self.record_shape}")

    @property
    def values_per_unit(self) -> int:
        """Number of scalar values composing one data unit."""
        return int(math.prod(self.record_shape)) if self.record_shape else 1

    @property
    def unit_nbytes(self) -> int:
        """Size in bytes of one encoded data unit."""
        return self.values_per_unit * self.dtype.itemsize

    def n_units(self, nbytes: int) -> int:
        """Number of whole units contained in ``nbytes`` bytes."""
        if nbytes % self.unit_nbytes:
            raise ValueError(
                f"{nbytes} bytes is not a whole number of {self.unit_nbytes}-byte units"
            )
        return nbytes // self.unit_nbytes

    def encode(self, units: np.ndarray) -> bytes:
        """Serialize an ``(n, *record_shape)`` array of units to bytes."""
        arr = np.ascontiguousarray(units, dtype=self.dtype)
        expected = (arr.shape[0],) + self.record_shape
        if arr.shape != expected:
            raise ValueError(f"expected unit array of shape (n, {self.record_shape}), got {arr.shape}")
        return arr.tobytes()

    def decode(self, buf: bytes | bytearray | memoryview) -> np.ndarray:
        """Deserialize bytes into an ``(n, *record_shape)`` array.

        The returned array is **always** a read-only zero-copy view over
        ``buf`` (``OWNDATA`` is False and writes raise), whatever the
        input buffer -- ``bytes``, a ``bytearray``, or a writable
        ``memoryview`` over shared-memory pages.  Read-only-ness is part
        of the hot-path contract: fold kernels receive views into
        fetch/shm buffers that other workers may alias, so an accidental
        in-place mutation must fail loudly rather than corrupt data.

        A buffer whose size is not a whole number of records is rejected
        with a clear error (a truncated or corrupt frame must never
        silently drop its tail).
        """
        view = memoryview(buf)
        if view.ndim != 1 or view.format != "B":
            view = view.cast("B")
        nbytes = view.nbytes
        if nbytes % self.unit_nbytes:
            raise ValueError(
                f"buffer of {nbytes} bytes is not a whole number of "
                f"{self.unit_nbytes}-byte {self.name!r} records "
                f"({nbytes % self.unit_nbytes} trailing bytes -- truncated "
                f"or corrupt chunk?)"
            )
        arr = np.frombuffer(view, dtype=self.dtype)
        arr.flags.writeable = False
        return arr.reshape((nbytes // self.unit_nbytes,) + self.record_shape)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "dtype": self.dtype.str,
            "record_shape": list(self.record_shape),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RecordFormat":
        return cls(d["name"], np.dtype(d["dtype"]), tuple(d["record_shape"]))


def points_format(dim: int, dtype: Any = np.float64) -> RecordFormat:
    """Format for d-dimensional points (kNN, k-means workloads)."""
    return RecordFormat("points", dtype, (dim,))


def edges_format(dtype: Any = np.int64) -> RecordFormat:
    """Format for directed graph edges ``(src, dst)`` (PageRank workload)."""
    return RecordFormat("edges", dtype, (2,))


def tokens_format(dtype: Any = np.int64) -> RecordFormat:
    """Format for token-id streams (wordcount workload)."""
    return RecordFormat("tokens", dtype, ())
