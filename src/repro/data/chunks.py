"""Chunk planning.

The data set is divided into files; the data inside the files is split
into logical chunks sized for the compute units' available memory.  One
*job* in the middleware corresponds to one chunk, so the chunk plan fixes
the job pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ChunkSource",
    "ChunkFragment",
    "ChunkStats",
    "ChunkInfo",
    "compute_chunk_stats",
    "plan_file_chunks",
]

#: Default number of representative data units sampled into ChunkStats.
SAMPLE_UNITS = 8


def _enc_num(v: int | float | None) -> int | float | str | None:
    """JSON-safe encoding of a stat value (non-finite floats as strings)."""
    if isinstance(v, float) and not math.isfinite(v):
        return repr(v)  # 'inf' / '-inf' / 'nan'
    return v


def _dec_num(v: int | float | str | None) -> int | float | None:
    if isinstance(v, str):
        return float(v)
    return v


def _num_eq(a, b) -> bool:
    """Value equality that treats NaN as equal to NaN (for round-trips)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    return a == b


@dataclass(frozen=True, eq=False)
class ChunkStats:
    """Per-field statistics over a chunk's *decoded* data units.

    Computed by the organizer (:func:`write_dataset`) in its existing
    single pass over the data and stored in the index, so the head can
    prune or reorder chunks without fetching a byte (metadata-first
    retrieval).  A "field" is one scalar slot of the record: records of
    shape ``(d,)`` have ``d`` fields; scalar records have one.

    NaN safety: ``counts`` holds the number of *non-NaN* values per
    field, and ``mins``/``maxs`` ignore NaN entries (``None`` when a
    field has no non-NaN values at all, e.g. an empty chunk).  ``sums``
    are exact for integer fields even past the int64 range.  ``sample``
    holds up to :data:`SAMPLE_UNITS` evenly spaced data units, as tuples
    of field values, for selectivity estimation.

    Predicates built on these stats must treat ``None`` bounds as
    "unknown" and keep the chunk -- pruning is only sound on proof.
    """

    n_units: int
    counts: tuple[int, ...]
    mins: tuple[int | float | None, ...]
    maxs: tuple[int | float | None, ...]
    sums: tuple[int | float, ...]
    sample: tuple[tuple[int | float, ...], ...] = ()

    def __eq__(self, other: object) -> bool:
        # NaN-aware field equality so serialization round-trips compare
        # equal even when a float sum is NaN (e.g. +inf and -inf data).
        if not isinstance(other, ChunkStats):
            return NotImplemented
        return (
            self.n_units == other.n_units
            and self.counts == other.counts
            and len(self.mins) == len(other.mins)
            and all(_num_eq(a, b) for a, b in zip(self.mins, other.mins))
            and all(_num_eq(a, b) for a, b in zip(self.maxs, other.maxs))
            and all(_num_eq(a, b) for a, b in zip(self.sums, other.sums))
            and len(self.sample) == len(other.sample)
            and all(
                len(r1) == len(r2)
                and all(_num_eq(a, b) for a, b in zip(r1, r2))
                for r1, r2 in zip(self.sample, other.sample)
            )
        )

    @property
    def n_fields(self) -> int:
        return len(self.counts)

    def overlaps(self, field: int, lo: float, hi: float) -> bool:
        """True when the chunk MAY contain a ``field`` value in [lo, hi].

        Returns True on unknown bounds (``None``), so a ``relevant()``
        predicate built on it can never mis-prune.
        """
        mn, mx = self.mins[field], self.maxs[field]
        if mn is None or mx is None:
            return True
        # NaN bounds cannot arise (mins/maxs are NaN-free by
        # construction) but a defensive check keeps pruning sound even
        # against hand-built stats.
        if isinstance(mn, float) and math.isnan(mn):
            return True
        if isinstance(mx, float) and math.isnan(mx):
            return True
        return not (mx < lo or mn > hi)

    def mean(self, field: int) -> float | None:
        """Mean of the field's non-NaN values (None for an empty field)."""
        if self.counts[field] == 0:
            return None
        return float(self.sums[field]) / self.counts[field]

    def sample_fraction(self, pred) -> float:
        """Fraction of sampled units satisfying ``pred(unit_fields)``.

        A cheap selectivity estimate for ``priority()`` hints; returns
        0.0 when the chunk carries no sample.
        """
        if not self.sample:
            return 0.0
        return sum(1 for row in self.sample if pred(row)) / len(self.sample)

    def to_dict(self) -> dict:
        return {
            "n_units": self.n_units,
            "counts": list(self.counts),
            "mins": [_enc_num(v) for v in self.mins],
            "maxs": [_enc_num(v) for v in self.maxs],
            "sums": [_enc_num(v) for v in self.sums],
            "sample": [[_enc_num(v) for v in row] for row in self.sample],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChunkStats":
        return cls(
            n_units=d["n_units"],
            counts=tuple(d["counts"]),
            mins=tuple(_dec_num(v) for v in d["mins"]),
            maxs=tuple(_dec_num(v) for v in d["maxs"]),
            sums=tuple(_dec_num(v) for v in d["sums"]),
            sample=tuple(
                tuple(_dec_num(v) for v in row) for row in d.get("sample", ())
            ),
        )


def _exact_int_sum(col: np.ndarray) -> int:
    """Exact big-int sum of an integer column (Python ints don't wrap)."""
    return sum(int(v) for v in col.tolist())


def compute_chunk_stats(
    units: np.ndarray, *, sample_units: int = SAMPLE_UNITS
) -> ChunkStats:
    """Single-pass per-field statistics over one chunk's data units.

    ``units`` is the decoded unit array, shape ``(n, *record_shape)``.
    Integer sums are overflow-safe: the fast int64 accumulation is
    cross-checked against a float64 accumulation and falls back to an
    exact Python-int sum when they diverge (a genuine wrap shifts the
    value by 2**64, far outside float64 rounding error).
    """
    arr = np.asarray(units)
    n = int(arr.shape[0]) if arr.ndim else 0
    n_fields = int(np.prod(arr.shape[1:])) if arr.ndim > 1 else 1
    flat = arr.reshape(n, n_fields)
    is_float = np.issubdtype(flat.dtype, np.floating)

    counts: list[int] = []
    mins: list[int | float | None] = []
    maxs: list[int | float | None] = []
    sums: list[int | float] = []
    for f in range(n_fields):
        col = flat[:, f]
        if is_float:
            nan_mask = np.isnan(col)
            cnt = int(n - nan_mask.sum())
            counts.append(cnt)
            if cnt == 0:
                mins.append(None)
                maxs.append(None)
                sums.append(0.0)
            else:
                with np.errstate(invalid="ignore"):
                    mins.append(float(np.nanmin(col)))
                    maxs.append(float(np.nanmax(col)))
                    sums.append(float(np.nansum(col)))
        else:
            counts.append(n)
            if n == 0:
                mins.append(None)
                maxs.append(None)
                sums.append(0)
            else:
                mins.append(int(col.min()))
                maxs.append(int(col.max()))
                fast = int(col.sum(dtype=np.int64))
                check = float(col.sum(dtype=np.float64))
                if abs(float(fast) - check) > max(1.0, abs(check)) * 1e-6:
                    fast = _exact_int_sum(col)
                sums.append(fast)

    sample: tuple[tuple[int | float, ...], ...] = ()
    if n > 0 and sample_units > 0:
        idx = np.unique(
            np.linspace(0, n - 1, num=min(sample_units, n)).astype(np.int64)
        )
        cast = float if is_float else int
        sample = tuple(
            tuple(cast(v) for v in flat[i]) for i in idx.tolist()
        )

    return ChunkStats(
        n_units=n,
        counts=tuple(counts),
        mins=tuple(mins),
        maxs=tuple(maxs),
        sums=tuple(sums),
        sample=sample,
    )


@dataclass(frozen=True)
class ChunkSource:
    """One place a chunk's bytes can be fetched from.

    A chunk always has its *primary* source (the location/key recorded
    directly on :class:`ChunkInfo`); replicated datasets add further
    sources so the fetch path can fail over or hedge.  ``enc_offset`` /
    ``enc_nbytes`` of ``None`` mean "same encoded range as the primary"
    -- replication byte-copies whole files, so ranges normally match.
    """

    location: str
    key: str
    enc_offset: int | None = None
    enc_nbytes: int | None = None

    def to_dict(self) -> dict:
        d: dict = {"location": self.location, "key": self.key}
        if self.enc_offset is not None:
            d["enc_offset"] = self.enc_offset
        if self.enc_nbytes is not None:
            d["enc_nbytes"] = self.enc_nbytes
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ChunkSource":
        return cls(
            location=d["location"],
            key=d["key"],
            enc_offset=d.get("enc_offset"),
            enc_nbytes=d.get("enc_nbytes"),
        )


@dataclass(frozen=True)
class ChunkFragment:
    """One erasure-coded fragment of a chunk's wire frame.

    Striped datasets (:func:`repro.data.dataset.stripe_dataset`) split
    each chunk's encoded frame into ``k`` data + ``m`` parity fragments,
    each stored as its own object.  ``frag_index < k`` is a verbatim
    frame slice; ``frag_index >= k`` is parity.  Any ``k`` fragments
    reconstruct the frame.
    """

    frag_index: int
    location: str
    key: str
    nbytes: int

    def to_dict(self) -> dict:
        return {
            "frag_index": self.frag_index,
            "location": self.location,
            "key": self.key,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChunkFragment":
        return cls(
            frag_index=d["frag_index"],
            location=d["location"],
            key=d["key"],
            nbytes=d["nbytes"],
        )


@dataclass(frozen=True)
class ChunkInfo:
    """Metadata for one logical chunk, as recorded in the index file.

    Mirrors the paper's index entries: physical location (data file),
    starting offset, size, and number of data units inside the chunk.
    """

    chunk_id: int
    file_id: int
    key: str            # storage key of the containing file
    offset: int         # byte offset within the file
    nbytes: int         # chunk size in bytes
    n_units: int        # number of data units in the chunk
    location: str       # name of the storage site currently holding it
    crc32: int | None = None  # checksum of the chunk's bytes, if computed
    # Set when the organizer wrote the file pre-compressed: the chunk's
    # encoded frame lives at [enc_offset, enc_offset + enc_nbytes) of the
    # stored object, while offset/nbytes keep describing the *logical*
    # byte range.  The fetch path retrieves the encoded range and
    # decodes; crc32 always covers the logical bytes.
    codec: str | None = None
    enc_offset: int | None = None
    enc_nbytes: int | None = None
    # Additional places the same bytes live (replicated datasets).  The
    # primary source above is always tried first when healthy; these are
    # ordered failover/hedge targets.
    replicas: tuple[ChunkSource, ...] = ()
    # Erasure striping: when non-empty, the chunk's wire frame no longer
    # lives at key/offset -- it is split into k data + m parity
    # fragments (``stripe == (k, m)``), each its own stored object, and
    # any k of them reconstruct the frame.  location remains the
    # scheduler-locality home.
    fragments: tuple[ChunkFragment, ...] = ()
    stripe: tuple[int, int] | None = None
    # Per-field statistics over the chunk's *decoded* values, computed
    # by the organizer.  Drives predicate pushdown at the head; None on
    # indexes written before stats existed (such chunks are never
    # pruned).  Stats describe logical values, so they are independent
    # of codec and replica placement.
    stats: ChunkStats | None = None

    @property
    def wire_offset(self) -> int:
        """Byte offset actually fetched from the store."""
        return self.offset if self.codec is None else self.enc_offset

    @property
    def wire_nbytes(self) -> int:
        """Byte count actually fetched from the store."""
        return self.nbytes if self.codec is None else self.enc_nbytes

    @property
    def sources(self) -> tuple[ChunkSource, ...]:
        """All places this chunk can be fetched from, primary first."""
        primary = ChunkSource(
            location=self.location,
            key=self.key,
            enc_offset=self.enc_offset,
            enc_nbytes=self.enc_nbytes,
        )
        return (primary,) + self.replicas

    def to_dict(self) -> dict:
        return {
            "chunk_id": self.chunk_id,
            "file_id": self.file_id,
            "key": self.key,
            "offset": self.offset,
            "nbytes": self.nbytes,
            "n_units": self.n_units,
            "location": self.location,
            "crc32": self.crc32,
            "codec": self.codec,
            "enc_offset": self.enc_offset,
            "enc_nbytes": self.enc_nbytes,
            **(
                {"replicas": [r.to_dict() for r in self.replicas]}
                if self.replicas
                else {}
            ),
            **(
                {
                    "fragments": [f.to_dict() for f in self.fragments],
                    "stripe": list(self.stripe),
                }
                if self.fragments and self.stripe is not None
                else {}
            ),
            **({"stats": self.stats.to_dict()} if self.stats is not None else {}),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChunkInfo":
        return cls(
            **{
                **d,
                "crc32": d.get("crc32"),
                "codec": d.get("codec"),
                "enc_offset": d.get("enc_offset"),
                "enc_nbytes": d.get("enc_nbytes"),
                "replicas": tuple(
                    ChunkSource.from_dict(r) for r in d.get("replicas", ())
                ),
                "fragments": tuple(
                    ChunkFragment.from_dict(f) for f in d.get("fragments", ())
                ),
                "stripe": (
                    tuple(d["stripe"]) if d.get("stripe") is not None else None
                ),
                "stats": (
                    ChunkStats.from_dict(d["stats"])
                    if d.get("stats") is not None
                    else None
                ),
            }
        )


def plan_file_chunks(
    *,
    file_id: int,
    key: str,
    file_units: int,
    unit_nbytes: int,
    chunk_units: int,
    location: str,
    first_chunk_id: int = 0,
) -> list[ChunkInfo]:
    """Split one file of ``file_units`` units into chunks of ``chunk_units``.

    The last chunk of the file may hold fewer units.  Offsets are byte
    offsets into the file, so a chunk can be fetched with a single range
    read.
    """
    if chunk_units <= 0:
        raise ValueError("chunk_units must be positive")
    if file_units < 0:
        raise ValueError("file_units must be non-negative")
    chunks: list[ChunkInfo] = []
    cid = first_chunk_id
    for start_unit in range(0, file_units, chunk_units):
        n = min(chunk_units, file_units - start_unit)
        chunks.append(
            ChunkInfo(
                chunk_id=cid,
                file_id=file_id,
                key=key,
                offset=start_unit * unit_nbytes,
                nbytes=n * unit_nbytes,
                n_units=n,
                location=location,
            )
        )
        cid += 1
    return chunks
