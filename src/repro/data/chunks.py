"""Chunk planning.

The data set is divided into files; the data inside the files is split
into logical chunks sized for the compute units' available memory.  One
*job* in the middleware corresponds to one chunk, so the chunk plan fixes
the job pool.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChunkSource", "ChunkInfo", "plan_file_chunks"]


@dataclass(frozen=True)
class ChunkSource:
    """One place a chunk's bytes can be fetched from.

    A chunk always has its *primary* source (the location/key recorded
    directly on :class:`ChunkInfo`); replicated datasets add further
    sources so the fetch path can fail over or hedge.  ``enc_offset`` /
    ``enc_nbytes`` of ``None`` mean "same encoded range as the primary"
    -- replication byte-copies whole files, so ranges normally match.
    """

    location: str
    key: str
    enc_offset: int | None = None
    enc_nbytes: int | None = None

    def to_dict(self) -> dict:
        d: dict = {"location": self.location, "key": self.key}
        if self.enc_offset is not None:
            d["enc_offset"] = self.enc_offset
        if self.enc_nbytes is not None:
            d["enc_nbytes"] = self.enc_nbytes
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ChunkSource":
        return cls(
            location=d["location"],
            key=d["key"],
            enc_offset=d.get("enc_offset"),
            enc_nbytes=d.get("enc_nbytes"),
        )


@dataclass(frozen=True)
class ChunkInfo:
    """Metadata for one logical chunk, as recorded in the index file.

    Mirrors the paper's index entries: physical location (data file),
    starting offset, size, and number of data units inside the chunk.
    """

    chunk_id: int
    file_id: int
    key: str            # storage key of the containing file
    offset: int         # byte offset within the file
    nbytes: int         # chunk size in bytes
    n_units: int        # number of data units in the chunk
    location: str       # name of the storage site currently holding it
    crc32: int | None = None  # checksum of the chunk's bytes, if computed
    # Set when the organizer wrote the file pre-compressed: the chunk's
    # encoded frame lives at [enc_offset, enc_offset + enc_nbytes) of the
    # stored object, while offset/nbytes keep describing the *logical*
    # byte range.  The fetch path retrieves the encoded range and
    # decodes; crc32 always covers the logical bytes.
    codec: str | None = None
    enc_offset: int | None = None
    enc_nbytes: int | None = None
    # Additional places the same bytes live (replicated datasets).  The
    # primary source above is always tried first when healthy; these are
    # ordered failover/hedge targets.
    replicas: tuple[ChunkSource, ...] = ()

    @property
    def wire_offset(self) -> int:
        """Byte offset actually fetched from the store."""
        return self.offset if self.codec is None else self.enc_offset

    @property
    def wire_nbytes(self) -> int:
        """Byte count actually fetched from the store."""
        return self.nbytes if self.codec is None else self.enc_nbytes

    @property
    def sources(self) -> tuple[ChunkSource, ...]:
        """All places this chunk can be fetched from, primary first."""
        primary = ChunkSource(
            location=self.location,
            key=self.key,
            enc_offset=self.enc_offset,
            enc_nbytes=self.enc_nbytes,
        )
        return (primary,) + self.replicas

    def to_dict(self) -> dict:
        return {
            "chunk_id": self.chunk_id,
            "file_id": self.file_id,
            "key": self.key,
            "offset": self.offset,
            "nbytes": self.nbytes,
            "n_units": self.n_units,
            "location": self.location,
            "crc32": self.crc32,
            "codec": self.codec,
            "enc_offset": self.enc_offset,
            "enc_nbytes": self.enc_nbytes,
            **(
                {"replicas": [r.to_dict() for r in self.replicas]}
                if self.replicas
                else {}
            ),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChunkInfo":
        return cls(
            **{
                **d,
                "crc32": d.get("crc32"),
                "codec": d.get("codec"),
                "enc_offset": d.get("enc_offset"),
                "enc_nbytes": d.get("enc_nbytes"),
                "replicas": tuple(
                    ChunkSource.from_dict(r) for r in d.get("replicas", ())
                ),
            }
        )


def plan_file_chunks(
    *,
    file_id: int,
    key: str,
    file_units: int,
    unit_nbytes: int,
    chunk_units: int,
    location: str,
    first_chunk_id: int = 0,
) -> list[ChunkInfo]:
    """Split one file of ``file_units`` units into chunks of ``chunk_units``.

    The last chunk of the file may hold fewer units.  Offsets are byte
    offsets into the file, so a chunk can be fetched with a single range
    read.
    """
    if chunk_units <= 0:
        raise ValueError("chunk_units must be positive")
    if file_units < 0:
        raise ValueError("file_units must be non-negative")
    chunks: list[ChunkInfo] = []
    cid = first_chunk_id
    for start_unit in range(0, file_units, chunk_units):
        n = min(chunk_units, file_units - start_unit)
        chunks.append(
            ChunkInfo(
                chunk_id=cid,
                file_id=file_id,
                key=key,
                offset=start_unit * unit_nbytes,
                nbytes=n * unit_nbytes,
                n_units=n,
                location=location,
            )
        )
        cid += 1
    return chunks
