"""Data-unit grouping.

After a chunk is read into a slave's memory it is "further split into
groups of data units that can fit into its cache", and the reduction
function runs once per group.  Grouping both bounds working-set size and
amortizes per-call overhead of the (vectorized) reduction kernel.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["units_per_group", "iter_unit_groups"]


def units_per_group(cache_nbytes: int, unit_nbytes: int) -> int:
    """How many data units fit in a cache of ``cache_nbytes`` bytes.

    Always at least 1, so that units larger than the cache still form
    singleton groups rather than failing.
    """
    if cache_nbytes <= 0:
        raise ValueError("cache_nbytes must be positive")
    if unit_nbytes <= 0:
        raise ValueError("unit_nbytes must be positive")
    return max(1, cache_nbytes // unit_nbytes)


def iter_unit_groups(units: np.ndarray, group_units: int) -> Iterator[np.ndarray]:
    """Yield consecutive views of ``units`` with at most ``group_units`` rows.

    The yielded arrays are views (no copies); the final group may be
    shorter.  An empty input yields nothing.
    """
    if group_units <= 0:
        raise ValueError("group_units must be positive")
    n = units.shape[0]
    for start in range(0, n, group_units):
        yield units[start : start + group_units]
