"""Dataset writer/reader: the paper's "data organizer".

The organizer lays a dataset out as ``n_files`` binary files in one or
more storage backends, splits each file into chunks sized for worker
memory, and emits the index that the head node later turns into the job
pool.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.data.chunks import ChunkStats, compute_chunk_stats
from repro.data.formats import RecordFormat
from repro.data.index import DataIndex, build_index
from repro.data.redundancy import normalize_stripe, validate_redundancy
from repro.storage.base import StorageBackend
from repro.storage.codecs import decode_chunk, encode_chunk, resolve_codec

__all__ = [
    "write_dataset",
    "distribute_dataset",
    "replicate_dataset",
    "stripe_dataset",
    "ordered_placements",
    "read_chunk",
    "read_all_units",
]


def ordered_placements(
    stores: dict[str, StorageBackend],
    home: str,
    n_slots: int,
    *,
    rotation: int = 0,
    include_home: bool = False,
    distinct: bool = True,
    what: str = "replica",
) -> list[str]:
    """Choose ``n_slots`` ordered store locations for copies of an object.

    The single source-placement rule shared by :func:`replicate_dataset`
    (replica targets) and :func:`stripe_dataset` (fragment targets):
    candidates are the stores in dict order, excluding ``home`` unless
    ``include_home`` (then home comes first), walked round-robin from
    ``rotation`` so consecutive objects spread across stores.  With
    ``distinct=True`` each slot gets a different store and the candidate
    ring must be wide enough; with ``distinct=False`` the ring wraps, so
    more slots than stores are allowed (several fragments share a
    store).
    """
    if home not in stores:
        raise KeyError(f"no store for location {home!r}")
    ring = [name for name in stores if name != home]
    if include_home:
        ring = [home] + ring
    if not ring:
        raise ValueError(f"no candidate stores for {what}s of {home!r}")
    if distinct and n_slots > len(ring):
        need = n_slots + (0 if include_home else 1)
        raise ValueError(
            f"{n_slots} {what}s need {need} stores, have {len(stores)}"
        )
    start = rotation % len(ring)
    return [ring[(start + j) % len(ring)] for j in range(n_slots)]


def write_dataset(
    units: np.ndarray,
    fmt: RecordFormat,
    store: StorageBackend,
    *,
    n_files: int,
    chunk_units: int,
    key_prefix: str = "part",
    meta: dict | None = None,
    codec: str | None = None,
    stats: bool = True,
) -> DataIndex:
    """Write ``units`` into ``n_files`` files in ``store`` and build the index.

    Units are split into contiguous, nearly equal file-sized runs (sizes
    differ by at most one unit), preserving order: file 0 holds the first
    run, and chunk ids increase with position in the dataset, so
    "consecutive jobs" in the index are physically consecutive bytes.

    With ``codec`` set the organizer writes each file *pre-compressed*:
    every chunk becomes one self-describing frame
    (:func:`repro.storage.codecs.encode_chunk`) and the frames are
    concatenated, so a chunk is still one contiguous range read -- just
    of its *encoded* range, which the index records in
    ``enc_offset``/``enc_nbytes``.  ``offset``/``nbytes``/``FileInfo.nbytes``
    keep describing logical bytes (placement fractions stay
    byte-of-data fractions).  ``lz4`` silently falls back to ``zlib``
    when the optional package is missing; the codec actually used is
    recorded per chunk and in ``index.meta["codec"]``.

    ``stats=True`` (the default) additionally computes per-chunk
    :class:`~repro.data.chunks.ChunkStats` in this same pass -- over the
    *decoded* values, so stats are identical with or without a codec and
    survive :func:`replicate_dataset` unchanged.  They feed the head's
    predicate pushdown (metadata-first retrieval).
    """
    if n_files <= 0:
        raise ValueError("n_files must be positive")
    n = units.shape[0]
    if n < n_files:
        raise ValueError(f"{n} units cannot fill {n_files} files")
    codec_obj = resolve_codec(codec) if codec is not None else None
    base, extra = divmod(n, n_files)
    file_units: list[int] = []
    enc_ranges: dict[int, list[tuple[int, int]]] = {}
    chunk_stats: dict[int, list[ChunkStats]] = {}
    pos = 0
    for i in range(n_files):
        cnt = base + (1 if i < extra else 0)
        file_units.append(cnt)
        key = f"{key_prefix}-{i:05d}.bin"
        run = units[pos : pos + cnt]
        if stats:
            chunk_stats[i] = [
                compute_chunk_stats(run[start : start + chunk_units])
                for start in range(0, cnt, chunk_units)
            ]
        if codec_obj is None:
            store.put(key, fmt.encode(run))
        else:
            frames: list[bytes] = []
            ranges: list[tuple[int, int]] = []
            off = 0
            for start in range(0, cnt, chunk_units):
                frame = encode_chunk(
                    fmt.encode(run[start : start + chunk_units]),
                    codec_obj,
                    fmt.unit_nbytes,
                )
                ranges.append((off, len(frame)))
                off += len(frame)
                frames.append(frame)
            store.put(key, b"".join(frames))
            enc_ranges[i] = ranges
        pos += cnt
    index = build_index(
        fmt,
        file_units,
        chunk_units=chunk_units,
        location=store.location,
        key_prefix=key_prefix,
        meta=meta,
    )
    if codec_obj is None and not stats:
        return index
    next_in_file = {f.file_id: 0 for f in index.files}
    new_chunks = []
    for c in index.chunks:
        j = next_in_file[c.file_id]
        next_in_file[c.file_id] = j + 1
        kw: dict = {}
        if codec_obj is not None:
            enc_off, enc_n = enc_ranges[c.file_id][j]
            kw.update(codec=codec_obj.name, enc_offset=enc_off, enc_nbytes=enc_n)
        if stats:
            kw["stats"] = chunk_stats[c.file_id][j]
        new_chunks.append(replace(c, **kw))
    new_meta = dict(index.meta)
    if codec_obj is not None:
        new_meta["codec"] = codec_obj.name
    return DataIndex(index.fmt, index.files, new_chunks, new_meta)


def distribute_dataset(
    index: DataIndex,
    stores: dict[str, StorageBackend],
    fractions: dict[str, float],
    source: StorageBackend,
) -> DataIndex:
    """Move files between sites to realize a placement.

    Given a dataset whose files all live in ``source``, copy each file to
    the store its new location demands (per ``fractions``, see
    :meth:`DataIndex.with_placement`) and delete it from the source if it
    moved.  Returns the re-placed index.
    """
    placed = index.with_placement(fractions)
    for f in placed.files:
        target = stores[f.location]
        if target is source:
            continue
        target.put(f.key, source.get(f.key))
        source.delete(f.key)
    return placed


def replicate_dataset(
    index: DataIndex,
    stores: dict[str, StorageBackend],
    *,
    n_replicas: int = 1,
) -> DataIndex:
    """Copy every file to ``n_replicas`` additional stores and record sources.

    For each file, replica locations are chosen round-robin from the
    stores *other than* the file's current location (ordered by the
    ``stores`` dict, which preserves insertion order), so replicas of a
    local file land on the cloud store and vice versa.  The bytes are
    copied verbatim -- encoded frames included -- so every replica
    serves the exact same ranges; each chunk gains
    :class:`~repro.data.chunks.ChunkSource` entries in ``replicas``.

    Requires at least ``n_replicas + 1`` distinct stores.  Returns the
    replica-annotated index; the input index is unchanged.
    """
    if n_replicas <= 0:
        return index
    validate_redundancy(replicas=n_replicas, n_stores=len(stores))
    replica_locs: dict[int, list[str]] = {}
    for i, f in enumerate(index.files):
        # Rotate the start point per file so replicas spread evenly
        # when there are more candidate stores than replicas.
        locs = ordered_placements(
            stores, f.location, n_replicas, rotation=i, what="replica"
        )
        replica_locs[f.file_id] = locs
        data = stores[f.location].get(f.key)
        for loc in locs:
            stores[loc].put(f.key, data)
    from repro.data.chunks import ChunkSource

    new_chunks = [
        replace(
            c,
            replicas=tuple(
                ChunkSource(
                    location=loc,
                    key=c.key,
                    enc_offset=c.enc_offset,
                    enc_nbytes=c.enc_nbytes,
                )
                for loc in replica_locs[c.file_id]
            ),
        )
        for c in index.chunks
    ]
    new_meta = dict(index.meta)
    new_meta["n_replicas"] = n_replicas
    return DataIndex(index.fmt, index.files, new_chunks, new_meta)


def stripe_dataset(
    index: DataIndex,
    stores: dict[str, StorageBackend],
    *,
    k: int,
    m: int,
) -> DataIndex:
    """Erasure-code every chunk into ``k`` data + ``m`` parity fragments.

    The sibling of :func:`replicate_dataset` on the coding rung of the
    robustness ladder: instead of whole extra copies (overhead
    ``1 + n_replicas``), each chunk's *wire frame* (the encoded frame
    when a codec is set, the logical bytes otherwise) is split via
    :func:`repro.storage.erasure.stripe_frame` and the ``k + m``
    fragments are written round-robin across the stores (home store
    first, rotated per chunk via :func:`ordered_placements`) -- overhead
    ``(k + m) / k``, and any ``m`` lost fragments are masked.

    The original file objects are **deleted** after striping, so the
    recorded overhead really is ``(k + m) / k``; each chunk keeps its
    ``location`` as the scheduler-locality home and gains
    ``fragments``/``stripe`` metadata.  Returns the striped index; the
    input index is unchanged.
    """
    from repro.data.chunks import ChunkFragment
    from repro.storage.erasure import stripe_frame

    k, m = normalize_stripe((k, m))  # canonical wording for shape errors
    new_chunks = []
    for c in index.chunks:
        frame = stores[c.location].get(c.key, c.wire_offset, c.wire_nbytes)
        locs = ordered_placements(
            stores, c.location, k + m,
            rotation=c.chunk_id, include_home=True, distinct=False,
            what="fragment",
        )
        frags = stripe_frame(frame, k, m)
        infos = []
        for j, (loc, data) in enumerate(zip(locs, frags)):
            fkey = f"{c.key}.c{c.chunk_id:06d}.f{j:02d}"
            stores[loc].put(fkey, data)
            infos.append(
                ChunkFragment(
                    frag_index=j, location=loc, key=fkey, nbytes=len(data)
                )
            )
        new_chunks.append(replace(c, fragments=tuple(infos), stripe=(k, m)))
    for f in index.files:
        stores[f.location].delete(f.key)
    new_meta = dict(index.meta)
    new_meta["stripe"] = [k, m]
    return DataIndex(index.fmt, index.files, new_chunks, new_meta)


def read_chunk(
    index: DataIndex,
    chunk_id: int,
    stores: dict[str, StorageBackend],
    *,
    verify: bool = False,
) -> np.ndarray:
    """Fetch and decode one chunk from wherever it currently lives.

    ``verify=True`` checks the chunk's recorded CRC32 (when present)
    and raises :class:`repro.data.integrity.IntegrityError` on mismatch.
    """
    chunk = index.chunks[chunk_id]
    if chunk.chunk_id != chunk_id:  # index must be dense and ordered
        raise ValueError(f"index chunk list is not dense at id {chunk_id}")
    if chunk.fragments:
        from repro.storage.erasure import reassemble

        k, m = chunk.stripe
        frags: dict[int, bytes] = {}
        for frag in sorted(chunk.fragments, key=lambda f: f.frag_index):
            if len(frags) == k:
                break
            try:
                frags[frag.frag_index] = stores[frag.location].get(frag.key)
            except KeyError:
                continue
        buf, _ = reassemble(frags, k, m, chunk.wire_nbytes)
        raw = bytes(buf)
    else:
        raw = stores[chunk.location].get(
            chunk.key, chunk.wire_offset, chunk.wire_nbytes
        )
    if chunk.codec is not None:
        raw = decode_chunk(raw)
    if verify:
        from repro.data.integrity import verify_chunk_bytes

        verify_chunk_bytes(chunk, raw)
    return index.fmt.decode(raw)


def read_all_units(index: DataIndex, stores: dict[str, StorageBackend]) -> np.ndarray:
    """Decode the full dataset in chunk order (for verification/tests)."""
    parts = [read_chunk(index, c.chunk_id, stores) for c in index.chunks]
    return np.concatenate(parts, axis=0) if parts else np.empty((0,) + index.fmt.record_shape)
