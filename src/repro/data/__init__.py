"""Data organization: formats, chunks, data units, index, generators."""

from repro.data.chunks import (
    ChunkInfo,
    ChunkStats,
    compute_chunk_stats,
    plan_file_chunks,
)
from repro.data.dataset import (
    distribute_dataset,
    read_all_units,
    read_chunk,
    replicate_dataset,
    write_dataset,
)
from repro.data.formats import RecordFormat, edges_format, points_format, tokens_format
from repro.data.generator import generate_edges, generate_points, generate_tokens
from repro.data.index import DataIndex, FileInfo, build_index
from repro.data.integrity import (
    IntegrityError,
    attach_checksums,
    verify_chunk_bytes,
    verify_dataset,
)
from repro.data.units import iter_unit_groups, units_per_group

__all__ = [
    "ChunkInfo",
    "ChunkStats",
    "compute_chunk_stats",
    "plan_file_chunks",
    "write_dataset",
    "distribute_dataset",
    "replicate_dataset",
    "read_chunk",
    "read_all_units",
    "RecordFormat",
    "points_format",
    "edges_format",
    "tokens_format",
    "generate_points",
    "generate_edges",
    "generate_tokens",
    "DataIndex",
    "IntegrityError",
    "attach_checksums",
    "verify_chunk_bytes",
    "verify_dataset",
    "FileInfo",
    "build_index",
    "iter_unit_groups",
    "units_per_group",
]
