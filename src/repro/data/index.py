"""The data index: metadata driving the job pool.

"A data index file is generated after analyzing the data set.  It holds
metadata such as physical locations (data files), starting offset
addresses, size of chunks and number of data units inside the chunks.
When the head node starts, it reads the index file in order to generate
the job pool.  Each job in the job pool corresponds to a chunk."
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.data.chunks import ChunkInfo, plan_file_chunks
from repro.data.formats import RecordFormat

__all__ = ["FileInfo", "DataIndex", "build_index"]


@dataclass(frozen=True)
class FileInfo:
    """Metadata for one data file."""

    file_id: int
    key: str
    nbytes: int
    n_units: int
    location: str

    def to_dict(self) -> dict:
        return {
            "file_id": self.file_id,
            "key": self.key,
            "nbytes": self.nbytes,
            "n_units": self.n_units,
            "location": self.location,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FileInfo":
        return cls(**d)


@dataclass
class DataIndex:
    """Index of a dataset: record format, files, and chunk plan."""

    fmt: RecordFormat
    files: list[FileInfo]
    chunks: list[ChunkInfo]
    meta: dict = field(default_factory=dict)

    @property
    def n_units(self) -> int:
        return sum(f.n_units for f in self.files)

    @property
    def nbytes(self) -> int:
        return sum(f.nbytes for f in self.files)

    @property
    def locations(self) -> list[str]:
        """Distinct storage locations appearing in the index, in file order."""
        seen: list[str] = []
        for f in self.files:
            if f.location not in seen:
                seen.append(f.location)
        return seen

    def chunks_at(self, location: str) -> list[ChunkInfo]:
        return [c for c in self.chunks if c.location == location]

    def with_placement(self, fractions: dict[str, float]) -> "DataIndex":
        """Return a copy with file locations reassigned by data fraction.

        ``fractions`` maps location name -> fraction of total *bytes* to
        place there (values should sum to ~1).  Placement is at file
        granularity, matching the paper's setup where the 120 GB datasets
        are split across 32 files and a whole file lives at one site.
        Files are assigned greedily in file order, so e.g. a 33/67 split
        of 32 equal files puts the first ~11 files locally.
        """
        if not self.files:
            raise ValueError("cannot place an empty index")
        total = sum(fractions.values())
        if total <= 0:
            raise ValueError("fractions must sum to a positive value")
        order = list(fractions.items())
        targets = [self.nbytes * frac / total for _, frac in order]
        new_files: list[FileInfo] = []
        loc_i = 0
        placed = 0.0
        for f in self.files:
            # Advance to the next location once the current one met its target.
            while loc_i < len(order) - 1 and placed >= targets[loc_i] - 1e-9:
                loc_i += 1
                placed = 0.0
            loc = order[loc_i][0]
            placed += f.nbytes
            new_files.append(FileInfo(f.file_id, f.key, f.nbytes, f.n_units, loc))
        loc_by_file = {f.file_id: f.location for f in new_files}
        new_chunks = [
            ChunkInfo(
                c.chunk_id, c.file_id, c.key, c.offset, c.nbytes, c.n_units,
                loc_by_file[c.file_id], c.crc32,
                codec=c.codec, enc_offset=c.enc_offset, enc_nbytes=c.enc_nbytes,
                replicas=c.replicas, fragments=c.fragments, stripe=c.stripe,
                stats=c.stats,
            )
            for c in self.chunks
        ]
        return DataIndex(self.fmt, new_files, new_chunks, dict(self.meta))

    def to_dict(self) -> dict:
        """Plain-dict form of the full index (JSON-safe)."""
        return {
            "format": self.fmt.to_dict(),
            "files": [f.to_dict() for f in self.files],
            "chunks": [c.to_dict() for c in self.chunks],
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DataIndex":
        return cls(
            fmt=RecordFormat.from_dict(d["format"]),
            files=[FileInfo.from_dict(f) for f in d["files"]],
            chunks=[ChunkInfo.from_dict(c) for c in d["chunks"]],
            meta=d.get("meta", {}),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "DataIndex":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "DataIndex":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def build_index(
    fmt: RecordFormat,
    file_units: list[int],
    *,
    chunk_units: int,
    location: str = "local",
    key_prefix: str = "part",
    meta: dict | None = None,
) -> DataIndex:
    """Build an index for a dataset of ``len(file_units)`` files.

    ``file_units[i]`` is the number of data units in file ``i``.  All
    files are initially placed at ``location``; use
    :meth:`DataIndex.with_placement` to split them across sites.
    """
    files: list[FileInfo] = []
    chunks: list[ChunkInfo] = []
    for fid, n_units in enumerate(file_units):
        key = f"{key_prefix}-{fid:05d}.bin"
        files.append(
            FileInfo(fid, key, n_units * fmt.unit_nbytes, n_units, location)
        )
        chunks.extend(
            plan_file_chunks(
                file_id=fid,
                key=key,
                file_units=n_units,
                unit_nbytes=fmt.unit_nbytes,
                chunk_units=chunk_units,
                location=location,
                first_chunk_id=len(chunks),
            )
        )
    return DataIndex(fmt, files, chunks, meta or {})
