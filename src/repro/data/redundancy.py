"""The one validation path for chunk-redundancy configuration.

Replication (extra whole copies) and erasure striping (k data + m
parity fragments) are the two rungs of the robustness ladder, and they
are mutually exclusive: a chunk either carries replica sources or
fragment sources, never both.  Historically the checks were scattered
-- ``EngineOptions`` validated stripe shape, the bursting driver
checked exclusivity, and ``replicate_dataset``/``stripe_dataset``
re-validated with their own wording -- so the same misconfiguration
produced three different error messages depending on which layer saw it
first.  Every layer now calls through here, so the wording is uniform
and a new constraint lands everywhere at once.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["normalize_stripe", "validate_redundancy"]

#: Reed-Solomon over GF(256): at most 256 total fragments per stripe.
GF256_LIMIT = 256


def normalize_stripe(
    stripe: Sequence[int] | None,
) -> tuple[int, int] | None:
    """Validate a ``(k, m)`` stripe spec and return it as an int tuple.

    ``None`` (no striping) passes through.  Raises :class:`ValueError`
    with the canonical wording on a malformed shape, an infeasible
    ``k``/``m`` combination, or a stripe wider than the GF(256) field
    the Reed-Solomon coder runs over.
    """
    if stripe is None:
        return None
    try:
        normalized = tuple(int(v) for v in stripe)
    except (TypeError, ValueError):
        raise ValueError(f"stripe must be (k, m), got {stripe!r}") from None
    if len(normalized) != 2:
        raise ValueError(f"stripe must be (k, m), got {stripe!r}")
    k, m = normalized
    if k < 1 or m < 0 or k + m < 2:
        raise ValueError(f"stripe needs k >= 1 and k + m >= 2, got ({k}, {m})")
    if k + m > GF256_LIMIT:
        raise ValueError(
            f"stripe width k+m={k + m} exceeds GF(256) limit {GF256_LIMIT}"
        )
    return (k, m)


def validate_redundancy(
    *,
    replicas: int = 0,
    stripe: Sequence[int] | None = None,
    n_stores: int | None = None,
) -> tuple[int, int] | None:
    """Validate a replication/striping configuration as a whole.

    Checks replica count sanity, stripe shape (via
    :func:`normalize_stripe`), the replicas-vs-stripe exclusivity, and
    -- when ``n_stores`` is given -- that enough distinct stores exist
    to hold the requested replicas.  Returns the normalized stripe
    tuple (or ``None``) so callers can adopt the canonical form.
    """
    if replicas < 0:
        raise ValueError(f"replicas must be non-negative, got {replicas}")
    normalized = normalize_stripe(stripe)
    if replicas > 0 and normalized is not None:
        raise ValueError("replicas and stripe are mutually exclusive")
    if replicas > 0 and n_stores is not None and replicas > n_stores - 1:
        raise ValueError(
            f"{replicas} replicas need {replicas + 1} stores, have {n_stores}"
        )
    return normalized
