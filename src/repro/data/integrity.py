"""Chunk integrity: CRC32 checksums and verification.

Remote retrieval over flaky WANs makes end-to-end integrity checking a
practical necessity for a bursting middleware.  The data organizer can
stamp every chunk of the index with a CRC32 of its bytes; readers then
verify a fetched chunk before processing it and surface corruption as
:class:`IntegrityError` instead of silently wrong results.
"""

from __future__ import annotations

import zlib

from repro.data.chunks import ChunkInfo
from repro.data.index import DataIndex
from repro.storage.base import StorageBackend
from repro.storage.codecs import CodecError, decode_chunk

__all__ = ["IntegrityError", "attach_checksums", "verify_chunk_bytes", "verify_dataset"]


def _read_logical(chunk: ChunkInfo, store: StorageBackend) -> bytes:
    """Read a chunk's *logical* bytes, decoding the frame when encoded.

    Checksums always cover the logical bytes, so a chunk re-encoded with
    a different codec keeps its CRC32 and retries after a corrupted
    transfer can be verified after decode.
    """
    raw = store.get(chunk.key, chunk.wire_offset, chunk.wire_nbytes)
    return decode_chunk(raw) if chunk.codec is not None else raw


class IntegrityError(Exception):
    """A chunk's bytes do not match its recorded checksum."""

    def __init__(self, chunk: ChunkInfo, actual_crc: int) -> None:
        super().__init__(
            f"chunk {chunk.chunk_id} of {chunk.key!r} failed verification: "
            f"crc32 {actual_crc:#010x} != recorded {chunk.crc32:#010x}"
        )
        self.chunk = chunk
        self.actual_crc = actual_crc


def attach_checksums(index: DataIndex, stores: dict[str, StorageBackend]) -> DataIndex:
    """Return a copy of ``index`` with every chunk's CRC32 recorded.

    Reads each chunk once from wherever it currently lives; typically
    run by the data organizer right after writing the dataset.
    """
    new_chunks = []
    for c in index.chunks:
        raw = _read_logical(c, stores[c.location])
        new_chunks.append(
            ChunkInfo(
                c.chunk_id, c.file_id, c.key, c.offset, c.nbytes, c.n_units,
                c.location, zlib.crc32(raw),
                codec=c.codec, enc_offset=c.enc_offset, enc_nbytes=c.enc_nbytes,
            )
        )
    return DataIndex(index.fmt, list(index.files), new_chunks, dict(index.meta))


def verify_chunk_bytes(chunk: ChunkInfo, raw: bytes) -> None:
    """Raise :class:`IntegrityError` if ``raw`` mismatches the checksum.

    Chunks without a recorded checksum pass trivially (verification is
    opt-in at organization time).
    """
    if chunk.crc32 is None:
        return
    actual = zlib.crc32(raw)
    if actual != chunk.crc32:
        raise IntegrityError(chunk, actual)


def verify_dataset(
    index: DataIndex, stores: dict[str, StorageBackend]
) -> list[ChunkInfo]:
    """Scrub the whole dataset; returns the chunks that failed.

    Chunks lacking checksums are skipped.  Missing objects count as
    failures (returned in the list) rather than raising, so a scrub
    reports all damage at once.
    """
    bad: list[ChunkInfo] = []
    for c in index.chunks:
        if c.crc32 is None:
            continue
        try:
            raw = _read_logical(c, stores[c.location])
        except (KeyError, ValueError, CodecError):
            # missing object, bad range, or an undecodable frame: the
            # chunk's bytes cannot be recovered, so it scrubs as damaged
            bad.append(c)
            continue
        try:
            verify_chunk_bytes(c, raw)
        except IntegrityError:
            bad.append(c)
    return bad
