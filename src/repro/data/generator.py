"""Synthetic workload generators.

The paper's three applications consume 120 GB datasets we cannot ship;
these generators produce statistically comparable data at any scale:

* **points** -- a Gaussian mixture in ``dim`` dimensions (kNN, k-means);
* **edges** -- a directed graph with preferential attachment so the
  in-degree distribution is heavy-tailed like web graphs (PageRank);
* **tokens** -- Zipf-distributed word ids (wordcount).

Every generator takes an explicit seed and is deterministic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_points", "generate_edges", "generate_tokens"]


def generate_points(
    n: int,
    dim: int,
    *,
    n_clusters: int = 8,
    spread: float = 0.15,
    seed: int = 0,
    dtype=np.float64,
) -> np.ndarray:
    """Sample ``n`` points from a mixture of ``n_clusters`` Gaussians.

    Cluster centers are uniform in the unit cube; each component has
    isotropic standard deviation ``spread``.  Returns ``(n, dim)``.
    """
    if n < 0 or dim <= 0 or n_clusters <= 0:
        raise ValueError("n >= 0, dim > 0, n_clusters > 0 required")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(n_clusters, dim))
    labels = rng.integers(0, n_clusters, size=n)
    pts = centers[labels] + rng.normal(0.0, spread, size=(n, dim))
    return pts.astype(dtype, copy=False)


def generate_edges(
    n_pages: int,
    n_edges: int,
    *,
    seed: int = 0,
    zipf_a: float = 1.5,
    dtype=np.int64,
) -> np.ndarray:
    """Sample ``n_edges`` directed edges over pages ``0..n_pages-1``.

    Sources are uniform; destinations follow a truncated Zipf law so a
    few pages collect most in-links, matching web-graph skew.  Returns
    ``(n_edges, 2)`` with columns ``(src, dst)``.  Self-loops are allowed
    (PageRank handles them); every page is guaranteed at least one
    outgoing edge when ``n_edges >= n_pages`` so no rank mass is lost to
    dangling nodes in the common case.
    """
    if n_pages <= 0 or n_edges < 0:
        raise ValueError("n_pages > 0 and n_edges >= 0 required")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_pages, size=n_edges, dtype=dtype)
    # Truncated Zipf destinations: rejection-free via modular fold.
    dst = (rng.zipf(zipf_a, size=n_edges) - 1) % n_pages
    dst = dst.astype(dtype, copy=False)
    if n_edges >= n_pages:
        # Give every page one outgoing edge to avoid dangling nodes.
        src[:n_pages] = np.arange(n_pages, dtype=dtype)
        perm = rng.permutation(n_edges)
        src, dst = src[perm], dst[perm]
    return np.stack([src, dst], axis=1)


def generate_tokens(
    n: int,
    vocab_size: int,
    *,
    seed: int = 0,
    zipf_a: float = 1.3,
    dtype=np.int64,
) -> np.ndarray:
    """Sample ``n`` Zipf-distributed token ids in ``[0, vocab_size)``."""
    if n < 0 or vocab_size <= 0:
        raise ValueError("n >= 0 and vocab_size > 0 required")
    rng = np.random.default_rng(seed)
    tok = (rng.zipf(zipf_a, size=n) - 1) % vocab_size
    return tok.astype(dtype, copy=False)
