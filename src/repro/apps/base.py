"""Application registry.

An :class:`Application` bundles everything the drivers and benchmarks
need to run one of the paper's workloads end to end: the record format,
a synthetic data generator, factories for both programming-model specs
(generalized reduction and MapReduce), and cost hints for the
performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.api import GeneralizedReductionSpec
from repro.core.mapreduce_api import MapReduceSpec
from repro.data.formats import RecordFormat

__all__ = ["Application", "APPLICATIONS", "register_application", "get_application"]


@dataclass(frozen=True)
class Application:
    """One benchmark workload, with everything needed to run it."""

    name: str
    #: Build the record format from workload params.
    make_format: Callable[..., RecordFormat]
    #: ``generate(n_units, seed, **params) -> ndarray`` of data units.
    generate: Callable[..., np.ndarray]
    #: ``make_gr_spec(units_or_state, **params) -> GeneralizedReductionSpec``
    make_gr_spec: Callable[..., GeneralizedReductionSpec]
    #: ``make_mr_spec(units_or_state, **params) -> MapReduceSpec``
    make_mr_spec: Callable[..., MapReduceSpec]
    #: Default workload parameters (k, dim, n_pages, ...).
    default_params: dict[str, Any] = field(default_factory=dict)
    #: Qualitative profile used by docs and the cost model:
    #: "io-bound", "cpu-bound", or "balanced".
    profile: str = "balanced"

    def params_with_defaults(self, **overrides: Any) -> dict[str, Any]:
        params = dict(self.default_params)
        params.update(overrides)
        return params


APPLICATIONS: dict[str, Application] = {}


def register_application(app: Application) -> Application:
    """Register an application; names must be unique."""
    if app.name in APPLICATIONS:
        raise ValueError(f"application {app.name!r} already registered")
    APPLICATIONS[app.name] = app
    return app


def get_application(name: str) -> Application:
    try:
        return APPLICATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {sorted(APPLICATIONS)}"
        ) from None
