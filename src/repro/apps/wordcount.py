"""Wordcount over token-id streams.

Not one of the paper's three evaluation applications, but the canonical
MapReduce workload and the clearest demonstration of the API ablation:
plain MapReduce materializes one (token, 1) pair per input token, while
generalized reduction folds each group into a sparse counter directly.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.apps.base import Application, register_application
from repro.core.api import GeneralizedReductionSpec
from repro.core.combiners import get_combiner
from repro.core.mapreduce_api import MapReduceSpec
from repro.core.reduction_object import DictReductionObject, ReductionObject
from repro.data.formats import tokens_format
from repro.data.generator import generate_tokens

__all__ = ["WordCountSpec", "WordCountMapReduceSpec", "wordcount_exact", "WORDCOUNT_APP"]


class WordCountSpec(GeneralizedReductionSpec):
    """Generalized-reduction wordcount: robj is a sparse token counter."""

    def __init__(self) -> None:
        self.fmt = tokens_format()

    def create_reduction_object(self) -> DictReductionObject:
        # Module-level combiner so the object stays picklable for the
        # inter-cluster reduction-object exchange.
        return DictReductionObject(combiner=get_combiner("sum"), value_nbytes=16)

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        assert isinstance(robj, DictReductionObject)
        # One bincount per group; only unique tokens touch the dict.
        uniq, counts = np.unique(unit_group, return_counts=True)
        robj.update_many(uniq, counts)

    def local_reduction_batch(self, robj: ReductionObject, units: np.ndarray) -> None:
        # One unique+bincount over the whole chunk: each distinct token
        # touches the dict once per chunk instead of once per group.
        self.local_reduction(robj, units)

    def finalize(self, robj: ReductionObject) -> dict[int, int]:
        return {int(k): int(v) for k, v in robj.value().items()}

    compute_s_per_unit = 1.5e-8


class WordCountMapReduceSpec(MapReduceSpec):
    """Baseline MapReduce wordcount: one (token, 1) pair per token."""

    def __init__(self, with_combiner: bool = True) -> None:
        self.fmt = tokens_format()
        self._with_combiner = with_combiner

    def map(self, unit_group: np.ndarray) -> Iterator[tuple[Hashable, Any]]:
        for tok in unit_group.tolist():
            yield tok, 1

    @property
    def has_combiner(self) -> bool:
        return self._with_combiner

    def combine(self, key: Hashable, values: Sequence[Any]) -> Any:
        return sum(values)

    def reduce(self, key: Hashable, values: Sequence[Any]) -> Any:
        return sum(values)

    def finalize(self, output: dict) -> dict[int, int]:
        return {int(k): int(v) for k, v in output.items()}


def wordcount_exact(tokens: np.ndarray) -> dict[int, int]:
    """Reference counts (for tests)."""
    uniq, counts = np.unique(tokens, return_counts=True)
    return {int(t): int(c) for t, c in zip(uniq, counts)}


WORDCOUNT_APP = register_application(
    Application(
        name="wordcount",
        make_format=lambda **_: tokens_format(),
        generate=lambda n_units, seed=0, vocab_size=1000, **kw: generate_tokens(
            n_units, vocab_size, seed=seed, **{k: v for k, v in kw.items() if k == "zipf_a"}
        ),
        make_gr_spec=lambda *_state, **_ignored: WordCountSpec(),
        make_mr_spec=lambda *_state, with_combiner=True, **_ignored: WordCountMapReduceSpec(with_combiner),
        default_params={"vocab_size": 1000},
        profile="io-bound",
    )
)
