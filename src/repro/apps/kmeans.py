"""k-Means clustering.

The paper's kmeans: "heavy computation resulting in low to medium I/O,
and a small reduction object."  One run of the spec performs one Lloyd
iteration: the reduction object accumulates per-cluster coordinate sums,
member counts, and the within-cluster sum of squared errors; finalize
yields the updated centroids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.apps.base import Application, register_application
from repro.core.api import GeneralizedReductionSpec
from repro.core.mapreduce_api import MapReduceSpec
from repro.core.reduction_object import ArrayReductionObject, ReductionObject
from repro.data.formats import points_format
from repro.data.generator import generate_points

__all__ = ["KMeansResult", "KMeansSpec", "KMeansMapReduceSpec", "lloyd_step", "KMEANS_APP"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one Lloyd iteration."""

    centroids: np.ndarray  # (k, d); empty clusters keep their old centroid
    counts: np.ndarray     # (k,) members per cluster
    sse: float             # total within-cluster sum of squared errors


def _assign(group: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment, vectorized.

    Uses the expansion ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 so the hot
    path is one GEMM, per the HPC guide's "know your linear algebra".
    Returns ``(assignment, squared_distance)``.
    """
    x2 = np.einsum("ij,ij->i", group, group)
    c2 = np.einsum("ij,ij->i", centroids, centroids)
    cross = group @ centroids.T
    d2 = x2[:, None] - 2.0 * cross + c2[None, :]
    assign = np.argmin(d2, axis=1)
    best = d2[np.arange(len(group)), assign]
    # Numerical cancellation can produce tiny negatives; clamp in place.
    np.maximum(best, 0.0, out=best)
    return assign, best


def _accumulate(data: np.ndarray, group: np.ndarray, assign: np.ndarray, sq: np.ndarray) -> None:
    """Scatter-add a group's statistics into the robj array (k, d+2).

    One flattened ``bincount`` over ``assign * d + column`` scatter-adds
    every coordinate sum at once (a bincount per dimension would walk
    the assignment array d times).
    """
    k, width = data.shape
    d = width - 2
    flat = np.bincount(
        (assign[:, None] * d + np.arange(d)[None, :]).ravel(),
        weights=np.ascontiguousarray(group, dtype=np.float64).ravel(),
        minlength=k * d,
    )
    data[:, :d] += flat.reshape(k, d)
    data[:, d] += np.bincount(assign, minlength=k)
    data[:, d + 1] += np.bincount(assign, weights=sq, minlength=k)


class KMeansSpec(GeneralizedReductionSpec):
    """Generalized-reduction k-means (one Lloyd iteration per pass)."""

    def __init__(self, centroids: np.ndarray) -> None:
        centroids = np.asarray(centroids, dtype=np.float64)
        if centroids.ndim != 2 or centroids.shape[0] == 0:
            raise ValueError("centroids must be a non-empty (k, d) array")
        self.centroids = centroids
        self.k, self.dim = centroids.shape
        self.fmt = points_format(self.dim)

    def create_reduction_object(self) -> ArrayReductionObject:
        # Layout: [:, :d] coordinate sums, [:, d] counts, [:, d+1] sse.
        return ArrayReductionObject((self.k, self.dim + 2), np.float64, "add")

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        assert isinstance(robj, ArrayReductionObject)
        assign, sq = _assign(unit_group, self.centroids)
        _accumulate(robj.data, unit_group, assign, sq)

    def local_reduction_batch(self, robj: ReductionObject, units: np.ndarray) -> None:
        # The kernel is fully vectorized over any group size (one GEMM +
        # one flattened bincount), so the whole chunk folds in one call.
        self.local_reduction(robj, units)

    def finalize(self, robj: ReductionObject) -> KMeansResult:
        data = robj.value()
        d = self.dim
        counts = data[:, d].copy()
        sums = data[:, :d]
        new_centroids = self.centroids.copy()
        nonempty = counts > 0
        new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        return KMeansResult(new_centroids, counts.astype(np.int64), float(data[:, d + 1].sum()))

    compute_s_per_unit = 4.0e-7  # heavy computation per element


class KMeansMapReduceSpec(MapReduceSpec):
    """Baseline MapReduce k-means: one pair per point (cluster, stats)."""

    def __init__(self, centroids: np.ndarray, with_combiner: bool = True) -> None:
        self.centroids = np.asarray(centroids, dtype=np.float64)
        self.k, self.dim = self.centroids.shape
        self.fmt = points_format(self.dim)
        self._with_combiner = with_combiner

    def map(self, unit_group: np.ndarray) -> Iterator[tuple[Hashable, Any]]:
        assign, sq = _assign(unit_group, self.centroids)
        for a, point, s in zip(assign.tolist(), unit_group, sq.tolist()):
            yield a, (point.copy(), 1, s)

    @property
    def has_combiner(self) -> bool:
        return self._with_combiner

    @staticmethod
    def _merge(values: Sequence[Any]) -> tuple[np.ndarray, int, float]:
        total = None
        count = 0
        sse = 0.0
        for vec, c, s in values:
            total = vec.astype(np.float64, copy=True) if total is None else total + vec
            count += c
            sse += s
        assert total is not None
        return total, count, sse

    def combine(self, key: Hashable, values: Sequence[Any]) -> Any:
        return self._merge(values)

    def reduce(self, key: Hashable, values: Sequence[Any]) -> Any:
        return self._merge(values)

    def finalize(self, output: dict) -> KMeansResult:
        counts = np.zeros(self.k, dtype=np.int64)
        centroids = self.centroids.copy()
        sse = 0.0
        for cid, (total, count, s) in output.items():
            counts[cid] = count
            if count:
                centroids[cid] = total / count
            sse += s
        return KMeansResult(centroids, counts, sse)


def lloyd_step(points: np.ndarray, centroids: np.ndarray) -> KMeansResult:
    """Reference single-machine Lloyd iteration (for tests)."""
    assign, sq = _assign(points, np.asarray(centroids, dtype=np.float64))
    k, d = centroids.shape
    counts = np.bincount(assign, minlength=k)
    new = np.asarray(centroids, dtype=np.float64).copy()
    for j in range(d):
        sums = np.bincount(assign, weights=points[:, j], minlength=k)
        nz = counts > 0
        new[nz, j] = sums[nz] / counts[nz]
    return KMeansResult(new, counts.astype(np.int64), float(sq.sum()))


def _make_gr_spec(centroids: np.ndarray, **_ignored) -> KMeansSpec:
    return KMeansSpec(centroids)


def _make_mr_spec(centroids: np.ndarray, *, with_combiner: bool = True, **_ignored):
    return KMeansMapReduceSpec(centroids, with_combiner)


KMEANS_APP = register_application(
    Application(
        name="kmeans",
        make_format=lambda dim=8, **_: points_format(dim),
        generate=lambda n_units, seed=0, dim=8, **kw: generate_points(
            n_units, dim, seed=seed, **{k: v for k, v in kw.items() if k in ("n_clusters", "spread")}
        ),
        make_gr_spec=_make_gr_spec,
        make_mr_spec=_make_mr_spec,
        default_params={"dim": 8, "k": 10},
        profile="cpu-bound",
    )
)
