"""k-Nearest-Neighbors search.

The paper's knn: "a classic database/data mining algorithm.  It has low
computation, leading to medium to high I/O demands and the reduction
object is small."  Given a query point, each worker keeps the k nearest
candidates it has seen in a :class:`TopKReductionObject`; global
reduction re-selects the best k of all workers' candidates.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.apps.base import Application, register_application
from repro.core.api import GeneralizedReductionSpec
from repro.core.mapreduce_api import MapReduceSpec
from repro.core.reduction_object import ReductionObject, TopKReductionObject
from repro.data.formats import points_format
from repro.data.generator import generate_points

__all__ = ["KnnSpec", "KnnMapReduceSpec", "knn_exact", "KNN_APP"]


def _distances(group: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances of each row of ``group`` to ``query``."""
    diff = group - query  # broadcast, no copies of group
    return np.einsum("ij,ij->i", diff, diff)


class KnnSpec(GeneralizedReductionSpec):
    """Generalized-reduction kNN for a single query point."""

    def __init__(self, query: np.ndarray, k: int) -> None:
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ValueError("query must be a 1-D point")
        if k <= 0:
            raise ValueError("k must be positive")
        self.query = query
        self.k = k
        self.fmt = points_format(len(query))
        # Each retained entry: score + the point coordinates.
        self._entry_nbytes = 8 + query.nbytes

    def create_reduction_object(self) -> TopKReductionObject:
        return TopKReductionObject(self.k, largest=False, entry_nbytes=self._entry_nbytes)

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        assert isinstance(robj, TopKReductionObject)
        d = _distances(unit_group, self.query)
        # Pre-select the group's best k before offering, so the object's
        # update cost is O(k) rather than O(group).
        if len(d) > self.k:
            idx = np.argpartition(d, self.k - 1)[: self.k]
        else:
            idx = np.arange(len(d))
        robj.update_batch(d[idx], [unit_group[i].copy() for i in idx])

    def local_reduction_batch(self, robj: ReductionObject, units: np.ndarray) -> None:
        # One distance pass + one argpartition over the whole chunk (the
        # kernel already pre-selects k candidates before offering, so a
        # bigger batch only makes the selection cheaper per unit).
        self.local_reduction(robj, units)

    def finalize(self, robj: ReductionObject) -> list[tuple[float, np.ndarray]]:
        """Sorted ``(squared_distance, point)`` pairs, nearest first."""
        return robj.value()

    compute_s_per_unit = 2.0e-8  # low computation per element


class KnnMapReduceSpec(MapReduceSpec):
    """Baseline MapReduce kNN: every point becomes a (key, value) pair."""

    KEY = "nn"

    def __init__(self, query: np.ndarray, k: int, with_combiner: bool = True) -> None:
        self.query = np.asarray(query, dtype=np.float64)
        self.k = k
        self.fmt = points_format(len(self.query))
        self._with_combiner = with_combiner

    def map(self, unit_group: np.ndarray) -> Iterator[tuple[Hashable, Any]]:
        d = _distances(unit_group, self.query)
        for dist, point in zip(d.tolist(), unit_group):
            yield self.KEY, (dist, point.copy())

    @property
    def has_combiner(self) -> bool:
        return self._with_combiner

    def _best_k(self, values: Sequence[Any]) -> list[Any]:
        flat: list[tuple[float, np.ndarray]] = []
        for v in values:
            if isinstance(v, list):
                flat.extend(v)
            else:
                flat.append(v)
        flat.sort(key=lambda dv: dv[0])
        return flat[: self.k]

    def combine(self, key: Hashable, values: Sequence[Any]) -> Any:
        return self._best_k(values)

    def reduce(self, key: Hashable, values: Sequence[Any]) -> Any:
        return self._best_k(values)

    def finalize(self, output: dict) -> list[tuple[float, np.ndarray]]:
        return output.get(self.KEY, [])


def knn_exact(points: np.ndarray, query: np.ndarray, k: int) -> list[tuple[float, np.ndarray]]:
    """Reference answer computed directly (for tests)."""
    d = _distances(points, np.asarray(query, dtype=np.float64))
    order = np.argsort(d, kind="stable")[:k]
    return [(float(d[i]), points[i]) for i in order]


def _make_gr_spec(query: np.ndarray, *, k: int = 10, **_ignored) -> KnnSpec:
    return KnnSpec(query, k)


def _make_mr_spec(query: np.ndarray, *, k: int = 10, with_combiner: bool = True, **_ignored):
    return KnnMapReduceSpec(query, k, with_combiner)


KNN_APP = register_application(
    Application(
        name="knn",
        make_format=lambda dim=8, **_: points_format(dim),
        generate=lambda n_units, seed=0, dim=8, **kw: generate_points(
            n_units, dim, seed=seed, **{k: v for k, v in kw.items() if k in ("n_clusters", "spread")}
        ),
        make_gr_spec=_make_gr_spec,
        make_mr_spec=_make_mr_spec,
        default_params={"dim": 8, "k": 10},
        profile="io-bound",
    )
)
