"""Summary-statistics application (library version of the custom example).

One pass over a points dataset yields per-column count / mean / std /
min / max plus a histogram of the first column -- the kind of data
profiling pass that precedes the paper's mining workloads.  Small
reduction object, trivial compute: the most I/O-bound app in the suite.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.apps.base import Application, register_application
from repro.core.api import GeneralizedReductionSpec
from repro.core.mapreduce_api import MapReduceSpec
from repro.core.reduction_object import ReductionObject
from repro.core.stats_objects import HistogramReductionObject, MomentsReductionObject
from repro.data.formats import points_format
from repro.data.generator import generate_points

__all__ = ["ColumnStatsSpec", "ColumnStatsMapReduceSpec", "column_stats_exact", "STATS_APP"]


class _StatsObject(ReductionObject):
    """Composite robj: per-column moments + first-column histogram."""

    def __init__(self, dim: int, edges: np.ndarray) -> None:
        self.moments = MomentsReductionObject(dim)
        self.histogram = HistogramReductionObject(edges)

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, _StatsObject):
            raise TypeError("can only merge a matching stats object")
        self.moments.merge(other.moments)
        self.histogram.merge(other.histogram)

    def copy_empty(self) -> "_StatsObject":
        return _StatsObject(self.moments.dim, self.histogram.edges)

    @property
    def nbytes(self) -> int:
        return self.moments.nbytes + self.histogram.nbytes

    def value(self) -> dict[str, Any]:
        out = self.moments.value()
        out["histogram"] = self.histogram.value()
        return out


class ColumnStatsSpec(GeneralizedReductionSpec):
    """One-pass per-column statistics with a first-column histogram."""

    def __init__(self, dim: int, *, hist_range: tuple[float, float] = (-1.0, 2.0),
                 hist_bins: int = 32) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if hist_bins <= 0 or hist_range[0] >= hist_range[1]:
            raise ValueError("invalid histogram configuration")
        self.dim = dim
        self.edges = np.linspace(hist_range[0], hist_range[1], hist_bins + 1)
        self.fmt = points_format(dim)

    def create_reduction_object(self) -> _StatsObject:
        return _StatsObject(self.dim, self.edges)

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        assert isinstance(robj, _StatsObject)
        robj.moments.update(unit_group)
        robj.histogram.update(unit_group[:, 0])

    compute_s_per_unit = 1.0e-8  # the most I/O-bound app in the suite


class ColumnStatsMapReduceSpec(MapReduceSpec):
    """Baseline MapReduce stats: one pair per point per column."""

    def __init__(self, dim: int, with_combiner: bool = True) -> None:
        self.dim = dim
        self.fmt = points_format(dim)
        self._with_combiner = with_combiner

    def map(self, unit_group: np.ndarray) -> Iterator[tuple[Hashable, Any]]:
        for row in unit_group:
            for j in range(self.dim):
                v = float(row[j])
                yield j, (1, v, v * v, v, v)

    @property
    def has_combiner(self) -> bool:
        return self._with_combiner

    @staticmethod
    def _merge(values: Sequence[Any]):
        n = 0
        s = 0.0
        sq = 0.0
        mn = np.inf
        mx = -np.inf
        for cn, cs, csq, cmn, cmx in values:
            n += cn
            s += cs
            sq += csq
            mn = min(mn, cmn)
            mx = max(mx, cmx)
        return n, s, sq, mn, mx

    def combine(self, key, values):
        return self._merge(values)

    def reduce(self, key, values):
        return self._merge(values)

    def finalize(self, output: dict) -> dict[str, np.ndarray]:
        mean = np.zeros(self.dim)
        std = np.zeros(self.dim)
        mn = np.zeros(self.dim)
        mx = np.zeros(self.dim)
        count = 0
        for j, (n, s, sq, cmn, cmx) in output.items():
            count = n
            mean[j] = s / n
            std[j] = np.sqrt(max(sq / n - (s / n) ** 2, 0.0))
            mn[j] = cmn
            mx[j] = cmx
        return {"count": count, "mean": mean, "std": std, "min": mn, "max": mx}


def column_stats_exact(points: np.ndarray) -> dict[str, Any]:
    """Reference statistics (for tests)."""
    return {
        "count": len(points),
        "mean": points.mean(axis=0),
        "std": points.std(axis=0),
        "min": points.min(axis=0),
        "max": points.max(axis=0),
    }


STATS_APP = register_application(
    Application(
        name="stats",
        make_format=lambda dim=8, **_: points_format(dim),
        generate=lambda n_units, seed=0, dim=8, **kw: generate_points(
            n_units, dim, seed=seed, **{k: v for k, v in kw.items() if k in ("n_clusters", "spread")}
        ),
        make_gr_spec=lambda *_state, dim=8, **kw: ColumnStatsSpec(
            dim, **{k: v for k, v in kw.items() if k in ("hist_range", "hist_bins")}
        ),
        make_mr_spec=lambda *_state, dim=8, with_combiner=True, **_kw: ColumnStatsMapReduceSpec(
            dim, with_combiner
        ),
        default_params={"dim": 8},
        profile="io-bound",
    )
)
