"""Benchmark applications: kNN, k-means, PageRank, wordcount."""

from repro.apps.base import APPLICATIONS, Application, get_application, register_application
from repro.apps.apriori import (
    APRIORI_APP,
    AprioriMapReduceSpec,
    AprioriPassSpec,
    apriori_exact,
    apriori_mine,
    candidate_join,
    generate_transactions,
    transactions_format,
)
from repro.apps.regression import (
    REGRESSION_APP,
    LinearRegressionMapReduceSpec,
    LinearRegressionSpec,
    RegressionResult,
    generate_regression_rows,
    regression_exact,
)
from repro.apps.kmeans import (
    KMEANS_APP,
    KMeansMapReduceSpec,
    KMeansResult,
    KMeansSpec,
    lloyd_step,
)
from repro.apps.filtered import (
    BoundingBoxKMeansSpec,
    BoundingBoxKnnSpec,
    FilteredWordCountSpec,
    TopKPageRankSpec,
    bounding_box_mask,
    filtered_wordcount_exact,
    topk_pagerank_window_exact,
)
from repro.apps.knn import KNN_APP, KnnMapReduceSpec, KnnSpec, knn_exact
from repro.apps.stats import (
    STATS_APP,
    ColumnStatsMapReduceSpec,
    ColumnStatsSpec,
    column_stats_exact,
)
from repro.apps.pagerank import (
    PAGERANK_APP,
    PageRankMapReduceSpec,
    PageRankSpec,
    out_degrees,
    pagerank_reference,
    pagerank_step,
)
from repro.apps.wordcount import (
    WORDCOUNT_APP,
    WordCountMapReduceSpec,
    WordCountSpec,
    wordcount_exact,
)

__all__ = [
    "APRIORI_APP",
    "AprioriMapReduceSpec",
    "AprioriPassSpec",
    "apriori_exact",
    "apriori_mine",
    "candidate_join",
    "generate_transactions",
    "transactions_format",
    "REGRESSION_APP",
    "LinearRegressionMapReduceSpec",
    "LinearRegressionSpec",
    "RegressionResult",
    "generate_regression_rows",
    "regression_exact",
    "APPLICATIONS",
    "Application",
    "get_application",
    "register_application",
    "KMEANS_APP",
    "KMeansMapReduceSpec",
    "KMeansResult",
    "KMeansSpec",
    "lloyd_step",
    "KNN_APP",
    "KnnMapReduceSpec",
    "KnnSpec",
    "knn_exact",
    "BoundingBoxKMeansSpec",
    "BoundingBoxKnnSpec",
    "FilteredWordCountSpec",
    "TopKPageRankSpec",
    "bounding_box_mask",
    "filtered_wordcount_exact",
    "topk_pagerank_window_exact",
    "STATS_APP",
    "ColumnStatsMapReduceSpec",
    "ColumnStatsSpec",
    "column_stats_exact",
    "PAGERANK_APP",
    "PageRankMapReduceSpec",
    "PageRankSpec",
    "out_degrees",
    "pagerank_reference",
    "pagerank_step",
    "WORDCOUNT_APP",
    "WordCountMapReduceSpec",
    "WordCountSpec",
    "wordcount_exact",
]
