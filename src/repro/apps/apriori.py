"""Apriori frequent-itemset mining.

FREERIDE's flagship application ([13], [14]): market-basket
transactions are scanned level by level; pass ``k`` counts the support
of candidate ``k``-itemsets in a :class:`DictReductionObject`, the
frequent ones are joined into ``(k+1)``-candidates, and the scan
repeats until no candidates survive.  Every pass is one run of the
middleware, so the full miner composes directly with cloud bursting.

Data layout: each transaction is one data unit -- a fixed-width row of
``basket_width`` item ids padded with ``-1``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.apps.base import Application, register_application
from repro.core.api import GeneralizedReductionSpec, run_local_pass
from repro.core.combiners import get_combiner
from repro.core.mapreduce_api import MapReduceSpec
from repro.core.reduction_object import DictReductionObject, ReductionObject
from repro.data.formats import RecordFormat
from repro.data.units import iter_unit_groups

__all__ = [
    "transactions_format",
    "generate_transactions",
    "AprioriPassSpec",
    "AprioriMapReduceSpec",
    "candidate_join",
    "apriori_mine",
    "apriori_exact",
    "APRIORI_APP",
]

PAD = -1


def transactions_format(basket_width: int = 12) -> RecordFormat:
    """Fixed-width padded transactions (one unit = one basket)."""
    return RecordFormat("transactions", np.int64, (basket_width,))


def generate_transactions(
    n: int,
    *,
    n_items: int = 100,
    basket_width: int = 12,
    n_patterns: int = 8,
    pattern_len: int = 3,
    seed: int = 0,
) -> np.ndarray:
    """Synthetic baskets with planted frequent patterns.

    Each basket embeds one of ``n_patterns`` frequent itemsets with
    probability ~1/2 and fills the rest with uniform noise items, so
    real associations exist for the miner to find.  Rows are padded
    with ``PAD`` (-1) and items within a basket are distinct.
    """
    if basket_width < pattern_len + 1:
        raise ValueError("basket_width too small for the planted patterns")
    rng = np.random.default_rng(seed)
    patterns = [
        rng.choice(n_items, size=pattern_len, replace=False) for _ in range(n_patterns)
    ]
    rows = np.full((n, basket_width), PAD, dtype=np.int64)
    for i in range(n):
        basket: list[int] = []
        if rng.random() < 0.5:
            basket.extend(patterns[rng.integers(n_patterns)].tolist())
        n_noise = int(rng.integers(1, basket_width - len(basket) + 1))
        noise = rng.choice(n_items, size=n_noise, replace=False)
        for item in noise:
            if item not in basket and len(basket) < basket_width:
                basket.append(int(item))
        rows[i, : len(basket)] = sorted(basket)
    return rows


class AprioriPassSpec(GeneralizedReductionSpec):
    """One counting pass: support of each candidate itemset.

    ``candidates=None`` runs the first pass (single-item supports,
    fully vectorized via bincount); otherwise each candidate tuple is
    counted with vectorized membership tests over the whole group.
    """

    def __init__(self, fmt: RecordFormat, candidates: list[tuple[int, ...]] | None = None) -> None:
        self.fmt = fmt
        self.candidates = None if candidates is None else [tuple(c) for c in candidates]

    def create_reduction_object(self) -> DictReductionObject:
        return DictReductionObject(get_combiner("sum"), value_nbytes=24)

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        assert isinstance(robj, DictReductionObject)
        if self.candidates is None:
            items = unit_group[unit_group != PAD]
            uniq, counts = np.unique(items, return_counts=True)
            for item, cnt in zip(uniq.tolist(), counts.tolist()):
                robj.update((item,), int(cnt))
            return
        for cand in self.candidates:
            present = np.ones(unit_group.shape[0], dtype=bool)
            for item in cand:
                present &= (unit_group == item).any(axis=1)
                if not present.any():
                    break
            cnt = int(present.sum())
            if cnt:
                robj.update(cand, cnt)

    compute_s_per_unit = 2.5e-7


class AprioriMapReduceSpec(MapReduceSpec):
    """Baseline MapReduce pass: one (itemset, 1) pair per occurrence."""

    def __init__(self, fmt: RecordFormat, candidates: list[tuple[int, ...]] | None = None,
                 with_combiner: bool = True) -> None:
        self.fmt = fmt
        self.candidates = None if candidates is None else [tuple(c) for c in candidates]
        self._with_combiner = with_combiner

    def map(self, unit_group: np.ndarray) -> Iterator[tuple[Hashable, Any]]:
        if self.candidates is None:
            for row in unit_group:
                for item in row[row != PAD].tolist():
                    yield (item,), 1
            return
        for row in unit_group:
            present = set(row[row != PAD].tolist())
            for cand in self.candidates:
                if present.issuperset(cand):
                    yield cand, 1

    @property
    def has_combiner(self) -> bool:
        return self._with_combiner

    def combine(self, key: Hashable, values: Sequence[Any]) -> Any:
        return sum(values)

    def reduce(self, key: Hashable, values: Sequence[Any]) -> Any:
        return sum(values)


def candidate_join(frequent: Sequence[tuple[int, ...]]) -> list[tuple[int, ...]]:
    """Classic apriori-gen: join frequent k-itemsets into (k+1)-candidates.

    Joins pairs sharing a (k-1)-prefix and prunes candidates with an
    infrequent k-subset.
    """
    frequent = sorted(set(tuple(sorted(f)) for f in frequent))
    if not frequent:
        return []
    k = len(frequent[0])
    if any(len(f) != k for f in frequent):
        raise ValueError("all frequent itemsets must have equal length")
    freq_set = set(frequent)
    out = []
    for i, a in enumerate(frequent):
        for b in frequent[i + 1 :]:
            if a[:-1] != b[:-1]:
                continue
            cand = a + (b[-1],)
            if all(tuple(sub) in freq_set for sub in combinations(cand, k)):
                out.append(cand)
    return out


def apriori_mine(
    run_pass,
    fmt: RecordFormat,
    *,
    min_support: int,
    max_len: int = 4,
) -> dict[tuple[int, ...], int]:
    """Drive the level-wise miner.

    ``run_pass(spec) -> dict`` executes one counting pass on any engine
    (single-machine, threaded bursting, ...) and returns itemset ->
    support.  Returns all frequent itemsets up to ``max_len``.
    """
    if min_support <= 0:
        raise ValueError("min_support must be positive")
    result: dict[tuple[int, ...], int] = {}
    counts = run_pass(AprioriPassSpec(fmt, None))
    frequent = {k: v for k, v in counts.items() if v >= min_support}
    result.update(frequent)
    level = 1
    while frequent and level < max_len:
        candidates = candidate_join(list(frequent))
        if not candidates:
            break
        counts = run_pass(AprioriPassSpec(fmt, candidates))
        frequent = {k: v for k, v in counts.items() if v >= min_support}
        result.update(frequent)
        level += 1
    return result


def apriori_exact(
    transactions: np.ndarray, *, min_support: int, max_len: int = 4
) -> dict[tuple[int, ...], int]:
    """Reference miner running passes on one machine (for tests)."""
    width = transactions.shape[1]
    fmt = transactions_format(width)

    def run_pass(spec: AprioriPassSpec) -> dict:
        robj = run_local_pass(spec, iter_unit_groups(transactions, 1024))
        return robj.value()

    return apriori_mine(run_pass, fmt, min_support=min_support, max_len=max_len)


APRIORI_APP = register_application(
    Application(
        name="apriori",
        make_format=lambda basket_width=12, **_: transactions_format(basket_width),
        generate=lambda n_units, seed=0, basket_width=12, **kw: generate_transactions(
            n_units, basket_width=basket_width, seed=seed,
            **{k: v for k, v in kw.items() if k in ("n_items", "n_patterns", "pattern_len")},
        ),
        make_gr_spec=lambda candidates=None, *, basket_width=12, **_kw: AprioriPassSpec(
            transactions_format(basket_width), candidates
        ),
        make_mr_spec=lambda candidates=None, *, basket_width=12, with_combiner=True, **_kw: (
            AprioriMapReduceSpec(transactions_format(basket_width), candidates, with_combiner)
        ),
        default_params={"basket_width": 12, "n_items": 100},
        profile="cpu-bound",
    )
)
