"""PageRank.

The paper's pagerank: "low to medium computation leading to high I/O,
and a very large reduction object" (~30 MB, the per-page rank vector).
One run of the spec performs one power-iteration step over the edge
list: local reduction scatter-adds each edge's rank contribution into a
dense vector; finalize applies damping and redistributes dangling mass.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.apps.base import Application, register_application
from repro.core.api import GeneralizedReductionSpec
from repro.core.mapreduce_api import MapReduceSpec
from repro.core.reduction_object import ArrayReductionObject, ReductionObject
from repro.data.formats import edges_format
from repro.data.generator import generate_edges

__all__ = [
    "PageRankSpec",
    "PageRankMapReduceSpec",
    "out_degrees",
    "pagerank_step",
    "pagerank_reference",
    "PAGERANK_APP",
]


def out_degrees(edges: np.ndarray, n_pages: int) -> np.ndarray:
    """Out-degree of every page, from an ``(m, 2)`` edge array."""
    return np.bincount(edges[:, 0], minlength=n_pages).astype(np.float64)


class PageRankSpec(GeneralizedReductionSpec):
    """One damped power-iteration step in the generalized-reduction API.

    ``ranks`` and ``outdeg`` are broadcast read-only state (shipped to
    every worker once per iteration); the reduction object is the dense
    incoming-contribution vector, whose size is what makes pagerank's
    global reduction expensive.
    """

    def __init__(self, ranks: np.ndarray, outdeg: np.ndarray, damping: float = 0.85) -> None:
        ranks = np.asarray(ranks, dtype=np.float64)
        outdeg = np.asarray(outdeg, dtype=np.float64)
        if ranks.shape != outdeg.shape or ranks.ndim != 1 or len(ranks) == 0:
            raise ValueError("ranks and outdeg must be matching non-empty 1-D arrays")
        if not 0.0 <= damping <= 1.0:
            raise ValueError("damping must be in [0, 1]")
        self.ranks = ranks
        self.outdeg = outdeg
        self.damping = damping
        self.n_pages = len(ranks)
        self.fmt = edges_format()
        # Precompute per-source share once; avoids a divide per edge.
        safe = np.where(outdeg > 0, outdeg, 1.0)
        self._share = ranks / safe

    def create_reduction_object(self) -> ArrayReductionObject:
        return ArrayReductionObject((self.n_pages,), np.float64, "add")

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        assert isinstance(robj, ArrayReductionObject)
        src = unit_group[:, 0]
        dst = unit_group[:, 1]
        contrib = self._share[src]
        robj.data += np.bincount(dst, weights=contrib, minlength=self.n_pages)

    def local_reduction_batch(self, robj: ReductionObject, units: np.ndarray) -> None:
        # One gather + one bincount over the whole chunk's edges; a
        # bigger batch amortizes the dense n_pages-long accumulate that
        # dominates small groups.
        self.local_reduction(robj, units)

    def finalize(self, robj: ReductionObject) -> np.ndarray:
        incoming = robj.value()
        dangling = float(self.ranks[self.outdeg == 0].sum())
        n = self.n_pages
        return (1.0 - self.damping) / n + self.damping * (incoming + dangling / n)

    compute_s_per_unit = 8.0e-8  # low-to-medium computation per edge


class PageRankMapReduceSpec(MapReduceSpec):
    """Baseline MapReduce pagerank step: one pair per edge (dst, contrib)."""

    def __init__(self, ranks: np.ndarray, outdeg: np.ndarray, damping: float = 0.85,
                 with_combiner: bool = True) -> None:
        self.ranks = np.asarray(ranks, dtype=np.float64)
        self.outdeg = np.asarray(outdeg, dtype=np.float64)
        self.damping = damping
        self.n_pages = len(self.ranks)
        self.fmt = edges_format()
        safe = np.where(self.outdeg > 0, self.outdeg, 1.0)
        self._share = self.ranks / safe
        self._with_combiner = with_combiner

    def map(self, unit_group: np.ndarray) -> Iterator[tuple[Hashable, Any]]:
        contrib = self._share[unit_group[:, 0]]
        for dst, c in zip(unit_group[:, 1].tolist(), contrib.tolist()):
            yield dst, c

    @property
    def has_combiner(self) -> bool:
        return self._with_combiner

    def combine(self, key: Hashable, values: Sequence[Any]) -> Any:
        return sum(values)

    def reduce(self, key: Hashable, values: Sequence[Any]) -> Any:
        return sum(values)

    def finalize(self, output: dict) -> np.ndarray:
        incoming = np.zeros(self.n_pages)
        for dst, total in output.items():
            incoming[dst] = total
        dangling = float(self.ranks[self.outdeg == 0].sum())
        n = self.n_pages
        return (1.0 - self.damping) / n + self.damping * (incoming + dangling / n)


def pagerank_step(edges: np.ndarray, ranks: np.ndarray, outdeg: np.ndarray,
                  damping: float = 0.85) -> np.ndarray:
    """Reference single-machine power-iteration step (for tests)."""
    n = len(ranks)
    safe = np.where(outdeg > 0, outdeg, 1.0)
    contrib = (ranks / safe)[edges[:, 0]]
    incoming = np.bincount(edges[:, 1], weights=contrib, minlength=n)
    dangling = float(ranks[outdeg == 0].sum())
    return (1.0 - damping) / n + damping * (incoming + dangling / n)


def pagerank_reference(edges: np.ndarray, n_pages: int, damping: float = 0.85,
                       tol: float = 1e-10, max_iter: int = 200) -> np.ndarray:
    """Iterate to convergence on one machine (for validation)."""
    outdeg = out_degrees(edges, n_pages)
    ranks = np.full(n_pages, 1.0 / n_pages)
    for _ in range(max_iter):
        new = pagerank_step(edges, ranks, outdeg, damping)
        if np.abs(new - ranks).sum() < tol:
            return new
        ranks = new
    return ranks


def _make_gr_spec(state: tuple[np.ndarray, np.ndarray], *, damping: float = 0.85, **_ignored):
    ranks, outdeg = state
    return PageRankSpec(ranks, outdeg, damping)


def _make_mr_spec(state: tuple[np.ndarray, np.ndarray], *, damping: float = 0.85,
                  with_combiner: bool = True, **_ignored):
    ranks, outdeg = state
    return PageRankMapReduceSpec(ranks, outdeg, damping, with_combiner)


PAGERANK_APP = register_application(
    Application(
        name="pagerank",
        make_format=lambda **_: edges_format(),
        generate=lambda n_units, seed=0, n_pages=1000, **kw: generate_edges(
            n_pages, n_units, seed=seed, **{k: v for k, v in kw.items() if k == "zipf_a"}
        ),
        make_gr_spec=_make_gr_spec,
        make_mr_spec=_make_mr_spec,
        default_params={"n_pages": 1000, "damping": 0.85},
        profile="balanced",
    )
)
