"""Filtered workload variants exercising the pushdown contract.

Each spec here answers a *restricted* query -- a token range, a bounding
box, a page-id window -- and declares the matching
``relevant(chunk_stats)`` predicate (plus a ``priority(chunk_stats)``
hint) so the head can prune chunks that provably cannot contribute
(metadata-first retrieval).  The predicates are conservative interval
checks over :class:`~repro.data.chunks.ChunkStats` min/max bounds:
every pruned chunk's fold contribution is exactly the identity, so the
filtered answer is bit-identical with pruning on or off -- which
``EngineOptions(pushdown="verify")`` and the equivalence matrix assert.

Pruning only pays when data is *clustered* on the filtered field (e.g.
time-ordered logs, sorted keys, spatial tiles): a chunk whose values
span the whole domain can never be excluded by its min/max.  The
ablation benchmark generates sorted datasets for exactly this reason.
"""

from __future__ import annotations

import numpy as np

from repro.apps.kmeans import KMeansSpec
from repro.apps.knn import KnnSpec
from repro.apps.pagerank import PageRankSpec
from repro.apps.wordcount import WordCountSpec
from repro.core.reduction_object import ArrayReductionObject, ReductionObject
from repro.data.chunks import ChunkStats
from repro.data.formats import edges_format

__all__ = [
    "FilteredWordCountSpec",
    "BoundingBoxKMeansSpec",
    "BoundingBoxKnnSpec",
    "TopKPageRankSpec",
    "filtered_wordcount_exact",
    "bounding_box_mask",
    "topk_pagerank_window_exact",
]


def _box_bounds(lo, hi, dim: int) -> tuple[np.ndarray, np.ndarray]:
    lo = np.broadcast_to(np.asarray(lo, dtype=np.float64), (dim,)).copy()
    hi = np.broadcast_to(np.asarray(hi, dtype=np.float64), (dim,)).copy()
    if np.any(lo > hi):
        raise ValueError("box lower bounds must not exceed upper bounds")
    return lo, hi


def bounding_box_mask(points: np.ndarray, lo, hi) -> np.ndarray:
    """Boolean mask of rows inside the axis-aligned box [lo, hi]."""
    lo, hi = _box_bounds(lo, hi, points.shape[1])
    return np.all((points >= lo) & (points <= hi), axis=1)


def _box_relevant(stats: ChunkStats, lo: np.ndarray, hi: np.ndarray) -> bool:
    """Chunk-bbox vs query-box intersection, keep-on-unknown per dim."""
    return all(
        stats.overlaps(j, lo[j], hi[j]) for j in range(len(lo))
    )


class FilteredWordCountSpec(WordCountSpec):
    """Wordcount restricted to token ids in the inclusive range [lo, hi].

    ``relevant`` prunes chunks whose token min/max lies entirely outside
    the range; ``priority`` front-loads chunks by the fraction of their
    value span inside it.
    """

    def __init__(self, lo: int, hi: int) -> None:
        super().__init__()
        if lo > hi:
            raise ValueError("lo must not exceed hi")
        self.lo = int(lo)
        self.hi = int(hi)

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        mask = (unit_group >= self.lo) & (unit_group <= self.hi)
        if not mask.any():
            return
        super().local_reduction(robj, unit_group[mask])

    def relevant(self, stats: ChunkStats) -> bool:
        return stats.overlaps(0, self.lo, self.hi)

    def priority(self, stats: ChunkStats) -> float:
        mn, mx = stats.mins[0], stats.maxs[0]
        if mn is None or mx is None:
            return 0.0
        inter = min(float(mx), float(self.hi)) - max(float(mn), float(self.lo))
        if inter < 0:
            return 0.0
        span = float(mx) - float(mn)
        return 1.0 if span <= 0 else inter / span


class BoundingBoxKMeansSpec(KMeansSpec):
    """One Lloyd iteration over only the points inside a bounding box.

    ``relevant`` prunes chunks whose per-dimension bbox misses the query
    box; ``priority`` estimates in-box density from the chunk's value
    sample.
    """

    def __init__(self, centroids: np.ndarray, lo, hi) -> None:
        super().__init__(centroids)
        self.lo, self.hi = _box_bounds(lo, hi, self.dim)

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        mask = bounding_box_mask(unit_group, self.lo, self.hi)
        if not mask.any():
            return
        super().local_reduction(robj, unit_group[mask])

    def relevant(self, stats: ChunkStats) -> bool:
        return _box_relevant(stats, self.lo, self.hi)

    def priority(self, stats: ChunkStats) -> float:
        lo, hi = self.lo, self.hi
        return stats.sample_fraction(
            lambda row: all(
                lo[j] <= row[j] <= hi[j] for j in range(len(lo))
            )
        )


class BoundingBoxKnnSpec(KnnSpec):
    """kNN among only the points inside a bounding box.

    ``priority`` ranks chunks by (negated) squared distance from the
    query to the chunk's bbox, so the nearest chunks are folded first
    -- the classic best-first spatial-index visit order.
    """

    def __init__(self, query: np.ndarray, k: int, lo, hi) -> None:
        super().__init__(query, k)
        self.lo, self.hi = _box_bounds(lo, hi, len(self.query))

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        mask = bounding_box_mask(unit_group, self.lo, self.hi)
        if not mask.any():
            return
        super().local_reduction(robj, unit_group[mask])

    def relevant(self, stats: ChunkStats) -> bool:
        return _box_relevant(stats, self.lo, self.hi)

    def priority(self, stats: ChunkStats) -> float:
        d2 = 0.0
        for j, q in enumerate(self.query):
            mn, mx = stats.mins[j], stats.maxs[j]
            if mn is None or mx is None:
                continue
            gap = max(float(mn) - q, q - float(mx), 0.0)
            d2 += gap * gap
        return -d2


class TopKPageRankSpec(PageRankSpec):
    """One power-iteration step for a *window* of candidate pages.

    Top-k rank queries only need exact ranks for the current candidate
    set; when candidates occupy a page-id window [dst_lo, dst_hi]
    (inclusive), only edges *into* the window matter.  The reduction
    object shrinks from n_pages to the window width, and ``relevant``
    prunes edge chunks whose dst min/max misses the window entirely.
    ``finalize`` returns the damped ranks for the window only.
    """

    def __init__(
        self,
        ranks: np.ndarray,
        outdeg: np.ndarray,
        dst_lo: int,
        dst_hi: int,
        damping: float = 0.85,
    ) -> None:
        super().__init__(ranks, outdeg, damping)
        if dst_lo > dst_hi:
            raise ValueError("dst_lo must not exceed dst_hi")
        if dst_lo < 0 or dst_hi >= self.n_pages:
            raise ValueError("page-id window out of range")
        self.dst_lo = int(dst_lo)
        self.dst_hi = int(dst_hi)
        self.window = self.dst_hi - self.dst_lo + 1
        self.fmt = edges_format()

    def create_reduction_object(self) -> ArrayReductionObject:
        return ArrayReductionObject((self.window,), np.float64, "add")

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        assert isinstance(robj, ArrayReductionObject)
        dst = unit_group[:, 1]
        mask = (dst >= self.dst_lo) & (dst <= self.dst_hi)
        if not mask.any():
            return
        contrib = self._share[unit_group[:, 0][mask]]
        robj.data += np.bincount(
            dst[mask] - self.dst_lo, weights=contrib, minlength=self.window
        )

    def relevant(self, stats: ChunkStats) -> bool:
        # Field 1 of the (src, dst) edge record is the destination page.
        return stats.overlaps(1, self.dst_lo, self.dst_hi)

    def priority(self, stats: ChunkStats) -> float:
        lo, hi = self.dst_lo, self.dst_hi
        return stats.sample_fraction(lambda row: lo <= row[1] <= hi)

    def finalize(self, robj: ReductionObject) -> np.ndarray:
        incoming = robj.value()
        dangling = float(self.ranks[self.outdeg == 0].sum())
        n = self.n_pages
        return (1.0 - self.damping) / n + self.damping * (incoming + dangling / n)


def filtered_wordcount_exact(tokens: np.ndarray, lo: int, hi: int) -> dict[int, int]:
    """Reference range-filtered counts (for tests)."""
    kept = tokens[(tokens >= lo) & (tokens <= hi)]
    uniq, counts = np.unique(kept, return_counts=True)
    return {int(t): int(c) for t, c in zip(uniq, counts)}


def topk_pagerank_window_exact(
    edges: np.ndarray,
    ranks: np.ndarray,
    outdeg: np.ndarray,
    dst_lo: int,
    dst_hi: int,
    damping: float = 0.85,
) -> np.ndarray:
    """Reference window ranks computed directly (for tests)."""
    n = len(ranks)
    safe = np.where(outdeg > 0, outdeg, 1.0)
    mask = (edges[:, 1] >= dst_lo) & (edges[:, 1] <= dst_hi)
    kept = edges[mask]
    contrib = (ranks / safe)[kept[:, 0]]
    window = dst_hi - dst_lo + 1
    incoming = np.bincount(kept[:, 1] - dst_lo, weights=contrib, minlength=window)
    dangling = float(ranks[outdeg == 0].sum())
    return (1.0 - damping) / n + damping * (incoming + dangling / n)
