"""Linear regression (least squares) in one generalized-reduction pass.

One of the original FREERIDE workloads: each data unit is a row
``(x_1..x_d, y)``; the reduction object accumulates the normal-equation
blocks ``X^T X`` and ``X^T y`` (plus the residual bookkeeping needed for
R^2), so a single pass over arbitrarily distributed data yields the
exact global least-squares fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.apps.base import Application, register_application
from repro.core.api import GeneralizedReductionSpec
from repro.core.mapreduce_api import MapReduceSpec
from repro.core.reduction_object import ArrayReductionObject, ReductionObject
from repro.data.formats import points_format
from repro.data.generator import generate_points

__all__ = [
    "RegressionResult",
    "LinearRegressionSpec",
    "LinearRegressionMapReduceSpec",
    "regression_exact",
    "generate_regression_rows",
    "REGRESSION_APP",
]


@dataclass(frozen=True)
class RegressionResult:
    """Fitted model and goodness of fit."""

    coef: np.ndarray      # (d,) feature coefficients
    intercept: float
    r_squared: float
    n_rows: int


def _design_dim(dim: int) -> int:
    """Width of the augmented design (features + intercept column)."""
    return dim + 1


class LinearRegressionSpec(GeneralizedReductionSpec):
    """Exact distributed least squares via normal-equation accumulation.

    The robj is a ``(p+1, p+1)`` array (p = features + intercept)
    holding the Gram matrix of the augmented row ``(x, 1, y)`` -- its
    blocks give ``X^T X``, ``X^T y``, ``sum y``, and ``sum y^2``, which
    is everything finalize needs.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        # Unit layout: d features then the response -> (d+1)-wide points.
        self.fmt = points_format(dim + 1)

    def create_reduction_object(self) -> ArrayReductionObject:
        p = _design_dim(self.dim) + 1  # + response column
        return ArrayReductionObject((p + 1, p + 1), np.float64, "add")

    def local_reduction(self, robj: ReductionObject, unit_group: np.ndarray) -> None:
        assert isinstance(robj, ArrayReductionObject)
        n = unit_group.shape[0]
        # Augmented matrix [x | 1 | y | count-helper]: one GEMM per group.
        aug = np.empty((n, self.dim + 3))
        aug[:, : self.dim] = unit_group[:, : self.dim]
        aug[:, self.dim] = 1.0
        aug[:, self.dim + 1] = unit_group[:, self.dim]
        aug[:, self.dim + 2] = 1.0
        robj.data += aug.T @ aug

    def finalize(self, robj: ReductionObject) -> RegressionResult:
        g = robj.value()
        d = self.dim
        p = d + 1  # features + intercept
        xtx = g[:p, :p]
        xty = g[:p, d + 1]
        n = g[d, d]  # the 1s column dotted with itself
        if n == 0:
            raise ValueError("cannot fit a regression on zero rows")
        beta = np.linalg.solve(xtx, xty)
        y_sum = g[d, d + 1]
        y_sq = g[d + 1, d + 1]
        ss_tot = y_sq - y_sum**2 / n
        # Residual SS via the quadratic form: y'y - 2 b'X'y + b'X'X b.
        ss_res = y_sq - 2 * beta @ xty + beta @ xtx @ beta
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        return RegressionResult(
            coef=beta[:d].copy(),
            intercept=float(beta[d]),
            r_squared=float(max(min(r2, 1.0), -np.inf)),
            n_rows=int(round(n)),
        )

    compute_s_per_unit = 6.0e-8


class LinearRegressionMapReduceSpec(MapReduceSpec):
    """Baseline MapReduce regression: per-group partial Gram matrices."""

    KEY = "gram"

    def __init__(self, dim: int, with_combiner: bool = True) -> None:
        self.dim = dim
        self.fmt = points_format(dim + 1)
        self._with_combiner = with_combiner
        self._gr = LinearRegressionSpec(dim)

    def map(self, unit_group: np.ndarray) -> Iterator[tuple[Hashable, Any]]:
        robj = self._gr.create_reduction_object()
        self._gr.local_reduction(robj, unit_group)
        yield self.KEY, robj.data

    @property
    def has_combiner(self) -> bool:
        return self._with_combiner

    def combine(self, key: Hashable, values: Sequence[Any]) -> Any:
        return np.sum(values, axis=0)

    def reduce(self, key: Hashable, values: Sequence[Any]) -> Any:
        return np.sum(values, axis=0)

    def finalize(self, output: dict) -> RegressionResult:
        robj = self._gr.create_reduction_object()
        robj.data += output[self.KEY]
        return self._gr.finalize(robj)


def regression_exact(rows: np.ndarray) -> RegressionResult:
    """Reference fit via numpy lstsq (for tests)."""
    d = rows.shape[1] - 1
    x = np.column_stack([rows[:, :d], np.ones(len(rows))])
    y = rows[:, d]
    beta, *_ = np.linalg.lstsq(x, y, rcond=None)
    pred = x @ beta
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    return RegressionResult(
        coef=beta[:d], intercept=float(beta[d]),
        r_squared=1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0,
        n_rows=len(rows),
    )


def generate_regression_rows(
    n: int, dim: int, *, noise: float = 0.1, seed: int = 0
) -> np.ndarray:
    """Rows ``(x, y)`` from a random linear model with Gaussian noise."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, dim))
    true_coef = rng.uniform(-2, 2, size=dim)
    intercept = rng.uniform(-1, 1)
    y = x @ true_coef + intercept + rng.normal(0, noise, size=n)
    return np.column_stack([x, y])


REGRESSION_APP = register_application(
    Application(
        name="regression",
        make_format=lambda dim=8, **_: points_format(dim + 1),
        generate=lambda n_units, seed=0, dim=8, **kw: generate_regression_rows(
            n_units, dim, seed=seed, **{k: v for k, v in kw.items() if k == "noise"}
        ),
        make_gr_spec=lambda *_state, dim=8, **_kw: LinearRegressionSpec(dim),
        make_mr_spec=lambda *_state, dim=8, with_combiner=True, **_kw: (
            LinearRegressionMapReduceSpec(dim, with_combiner)
        ),
        default_params={"dim": 8},
        profile="cpu-bound",
    )
)
