"""repro: data-intensive computing with cloud bursting.

A reproduction of Bicer, Chiu, Agrawal, *A Framework for Data-Intensive
Computing with Cloud Bursting* (SC 2011): a Generalized-Reduction
(FREERIDE-style MapReduce variant) middleware that processes a dataset
split between a local cluster and a cloud object store using compute at
both sites, with pooling-based load balancing and work stealing.

Public surface
--------------
* programming APIs: :class:`GeneralizedReductionSpec`,
  :class:`MapReduceSpec`, reduction objects, combiners;
* data organization: record formats, dataset writer, chunk index,
  synthetic generators;
* storage: local/memory stores, :class:`SimulatedS3Store`, parallel
  ranged retrieval;
* execution: :class:`ThreadedEngine` (real execution),
  :func:`simulate_environment` and the sweep drivers (performance model),
  :class:`MapReduceEngine` (baseline);
* reporting: the Figure-3/4 and Table-I/II row builders.
"""

from repro.apps import (
    APPLICATIONS,
    Application,
    KMeansMapReduceSpec,
    KMeansResult,
    KMeansSpec,
    KnnMapReduceSpec,
    KnnSpec,
    PageRankMapReduceSpec,
    PageRankSpec,
    WordCountMapReduceSpec,
    WordCountSpec,
    get_application,
    knn_exact,
    lloyd_step,
    out_degrees,
    pagerank_reference,
    pagerank_step,
    wordcount_exact,
)
from repro.bursting import (
    EnvironmentConfig,
    IterationRecord,
    KMeansRun,
    PageRankRun,
    kmeans_distributed,
    pagerank_distributed,
    average_slowdown_pct,
    fig3_rows,
    fig4_rows,
    format_table,
    paper_environments,
    paper_index,
    run_paper_sweep,
    run_scalability_sweep,
    run_threaded_bursting,
    scalability_environments,
    simulate_environment,
    table1_rows,
    table2_rows,
)
from repro.core import (
    ArrayReductionObject,
    DictReductionObject,
    GeneralizedReductionSpec,
    MapReduceSpec,
    ReductionObject,
    TopKReductionObject,
    get_combiner,
    register_combiner,
    run_local_pass,
)
from repro.data import (
    DataIndex,
    RecordFormat,
    build_index,
    distribute_dataset,
    edges_format,
    generate_edges,
    generate_points,
    generate_tokens,
    iter_unit_groups,
    points_format,
    read_all_units,
    read_chunk,
    tokens_format,
    units_per_group,
    write_dataset,
)
from repro.mapreduce import MapReduceEngine, MapReduceResult, ShuffleStats
from repro.runtime import (
    ActorEngine,
    ClusterConfig,
    HeadScheduler,
    Job,
    RandomScheduler,
    RunResult,
    RunStats,
    StaticScheduler,
    ThreadedEngine,
    jobs_from_index,
)
from repro.cost import (
    CostReport,
    PlacementPoint,
    best_placement,
    placement_curve,
    PricingModel,
    ProvisioningPoint,
    cheapest_meeting_deadline,
    cost_of_run,
    fastest_within_budget,
    pareto_frontier,
    tradeoff_curve,
)
from repro.bursting.session import BurstingSession
from repro.sim import (
    APP_PROFILES,
    AppSimProfile,
    FailureSpec,
    ResourceParams,
    SimClusterConfig,
    SimRunResult,
    StragglerSpec,
    simulate_run,
)
from repro.storage import (
    ChunkCache,
    LocalDiskStore,
    MemoryStore,
    ParallelFetcher,
    S3Profile,
    SimulatedS3Store,
    StorageBackend,
)

__version__ = "1.0.0"

__all__ = [
    # apps
    "APPLICATIONS",
    "Application",
    "KMeansMapReduceSpec",
    "KMeansResult",
    "KMeansSpec",
    "KnnMapReduceSpec",
    "KnnSpec",
    "PageRankMapReduceSpec",
    "PageRankSpec",
    "WordCountMapReduceSpec",
    "WordCountSpec",
    "get_application",
    "knn_exact",
    "lloyd_step",
    "out_degrees",
    "pagerank_reference",
    "pagerank_step",
    "wordcount_exact",
    # bursting
    "EnvironmentConfig",
    "IterationRecord",
    "KMeansRun",
    "PageRankRun",
    "kmeans_distributed",
    "pagerank_distributed",
    "average_slowdown_pct",
    "fig3_rows",
    "fig4_rows",
    "format_table",
    "paper_environments",
    "paper_index",
    "run_paper_sweep",
    "run_scalability_sweep",
    "run_threaded_bursting",
    "scalability_environments",
    "simulate_environment",
    "table1_rows",
    "table2_rows",
    # core
    "ArrayReductionObject",
    "DictReductionObject",
    "GeneralizedReductionSpec",
    "MapReduceSpec",
    "ReductionObject",
    "TopKReductionObject",
    "get_combiner",
    "register_combiner",
    "run_local_pass",
    # data
    "DataIndex",
    "RecordFormat",
    "build_index",
    "distribute_dataset",
    "edges_format",
    "generate_edges",
    "generate_points",
    "generate_tokens",
    "iter_unit_groups",
    "points_format",
    "read_all_units",
    "read_chunk",
    "tokens_format",
    "units_per_group",
    "write_dataset",
    # mapreduce
    "MapReduceEngine",
    "MapReduceResult",
    "ShuffleStats",
    # runtime
    "ActorEngine",
    "ClusterConfig",
    "HeadScheduler",
    "Job",
    "RandomScheduler",
    "RunResult",
    "RunStats",
    "StaticScheduler",
    "ThreadedEngine",
    "jobs_from_index",
    # cost
    "CostReport",
    "PlacementPoint",
    "best_placement",
    "placement_curve",
    "PricingModel",
    "ProvisioningPoint",
    "cheapest_meeting_deadline",
    "cost_of_run",
    "fastest_within_budget",
    "pareto_frontier",
    "tradeoff_curve",
    # session
    "BurstingSession",
    # sim
    "APP_PROFILES",
    "AppSimProfile",
    "FailureSpec",
    "ResourceParams",
    "SimClusterConfig",
    "SimRunResult",
    "StragglerSpec",
    "simulate_run",
    # storage
    "ChunkCache",
    "LocalDiskStore",
    "MemoryStore",
    "ParallelFetcher",
    "S3Profile",
    "SimulatedS3Store",
    "StorageBackend",
    "__version__",
]
