"""Baseline MapReduce engine (comparison substrate)."""

from repro.mapreduce.engine import MapReduceEngine, MapReduceResult, ShuffleStats

__all__ = ["MapReduceEngine", "MapReduceResult", "ShuffleStats"]
