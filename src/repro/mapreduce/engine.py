"""Baseline MapReduce engine.

Implements the classic map -> (combine) -> shuffle -> reduce pipeline
(Figure 1, left and middle) over the same datasets and storage
substrates as the generalized-reduction middleware, so the two
programming models can be compared on equal footing.

Beyond producing the answer, the engine meters exactly the quantities
the paper's argument hinges on:

* ``intermediate_pairs`` / ``intermediate_nbytes`` -- the (key, value)
  traffic that must cross the shuffle (inter-node, and in a bursting
  setting, inter-cluster);
* ``peak_buffer_pairs`` -- the largest mapper-side buffer, i.e. the
  memory overhead the combine-enabled variant still pays and the
  generalized-reduction API avoids entirely.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from repro.core.mapreduce_api import MapReduceSpec
from repro.data.dataset import read_chunk
from repro.data.index import DataIndex
from repro.data.units import iter_unit_groups, units_per_group
from repro.storage.base import StorageBackend

__all__ = ["ShuffleStats", "MapReduceResult", "MapReduceEngine"]


@dataclass
class ShuffleStats:
    """Meters of intermediate-data volume and mapper memory pressure."""

    map_output_pairs: int = 0       # pairs emitted by map()
    intermediate_pairs: int = 0     # pairs entering the shuffle
    intermediate_nbytes: int = 0    # their approximate wire size
    peak_buffer_pairs: int = 0      # largest mapper-side buffer observed
    combine_invocations: int = 0


@dataclass
class MapReduceResult:
    result: Any
    stats: ShuffleStats = field(default_factory=ShuffleStats)


class MapReduceEngine:
    """Single-process MapReduce executor with optional combine stage.

    ``n_mappers`` partitions the chunk list; each mapper maintains its
    own combine buffer flushed every ``combine_flush_pairs`` emitted
    pairs (mirroring the periodic buffer flush the paper describes).
    """

    def __init__(
        self,
        stores: dict[str, StorageBackend],
        *,
        n_mappers: int = 4,
        n_reducers: int = 4,
        combine_flush_pairs: int = 65536,
        group_nbytes: int = 1 << 20,
    ) -> None:
        if n_mappers <= 0 or n_reducers <= 0:
            raise ValueError("n_mappers and n_reducers must be positive")
        if combine_flush_pairs <= 0:
            raise ValueError("combine_flush_pairs must be positive")
        self.stores = stores
        self.n_mappers = n_mappers
        self.n_reducers = n_reducers
        self.combine_flush_pairs = combine_flush_pairs
        self.group_nbytes = group_nbytes

    def run(self, spec: MapReduceSpec, index: DataIndex) -> MapReduceResult:
        stats = ShuffleStats()
        group_units = units_per_group(self.group_nbytes, index.fmt.unit_nbytes)

        # --- map (+ optional combine) phase --------------------------------
        # Shuffle partitions: reducer -> key -> [values]
        partitions: list[dict[Any, list[Any]]] = [
            defaultdict(list) for _ in range(self.n_reducers)
        ]

        def emit_to_shuffle(key: Any, value: Any) -> None:
            stats.intermediate_pairs += 1
            stats.intermediate_nbytes += spec.pair_nbytes(key, value)
            partitions[hash(key) % self.n_reducers][key].append(value)

        chunk_ids = [c.chunk_id for c in index.chunks]
        for m in range(self.n_mappers):
            my_chunks = chunk_ids[m :: self.n_mappers]
            buffer: dict[Any, list[Any]] = defaultdict(list)
            buffered_pairs = 0

            def flush_buffer() -> None:
                nonlocal buffered_pairs
                for key, values in buffer.items():
                    if spec.has_combiner and len(values) > 1:
                        stats.combine_invocations += 1
                        emit_to_shuffle(key, spec.combine(key, values))
                    else:
                        for v in values:
                            emit_to_shuffle(key, v)
                buffer.clear()
                buffered_pairs = 0

            for cid in my_chunks:
                units = read_chunk(index, cid, self.stores)
                for group in iter_unit_groups(units, group_units):
                    for key, value in spec.map(group):
                        stats.map_output_pairs += 1
                        if spec.has_combiner:
                            buffer[key].append(value)
                            buffered_pairs += 1
                            stats.peak_buffer_pairs = max(
                                stats.peak_buffer_pairs, buffered_pairs
                            )
                            if buffered_pairs >= self.combine_flush_pairs:
                                flush_buffer()
                        else:
                            emit_to_shuffle(key, value)
            flush_buffer()

        # --- reduce phase ---------------------------------------------------
        output: dict[Any, Any] = {}
        for partition in partitions:
            for key, values in partition.items():
                output[key] = spec.reduce(key, values)

        return MapReduceResult(spec.finalize(output), stats)
