"""PageRank over a synthetic web crawl stored across two sites.

Builds a preferential-attachment web graph, runs damped power iteration
through the cloud-bursting middleware until convergence, prints the
top-ranked pages, and cross-checks the fixed point against networkx.

Each iteration's reduction object is the dense rank vector -- the
paper's "very large reduction object" -- so this example also prints how
many bytes the global reduction shipped between the sites per pass.

Run:  python examples/pagerank_web.py
"""

import numpy as np

from repro import (
    MemoryStore,
    PageRankSpec,
    SimulatedS3Store,
    generate_edges,
    out_degrees,
    run_threaded_bursting,
)
from repro.core.serialization import serialized_nbytes

N_PAGES = 2_000
N_EDGES = 40_000
DAMPING = 0.85
TOL = 1e-10
MAX_ITERS = 60


def main() -> None:
    edges = generate_edges(N_PAGES, N_EDGES, seed=23)
    outdeg = out_degrees(edges, N_PAGES)
    ranks = np.full(N_PAGES, 1.0 / N_PAGES)

    print(f"pagerank: {N_PAGES} pages, {N_EDGES} links; "
          "edge list split 50/50 between cluster and S3\n")
    for it in range(1, MAX_ITERS + 1):
        stores = {"local": MemoryStore("local"), "cloud": SimulatedS3Store()}
        rr = run_threaded_bursting(
            PageRankSpec(ranks, outdeg, DAMPING),
            edges,
            stores,
            local_fraction=0.5,
            local_workers=2,
            cloud_workers=2,
        )
        new_ranks = rr.result
        delta = float(np.abs(new_ranks - ranks).sum())
        if it <= 3 or delta < TOL:
            robj_bytes = serialized_nbytes(rr.robj)
            print(f"iter {it:2d}: L1 delta={delta:.3e}  "
                  f"robj shipped per cluster: {robj_bytes / 1024:.1f} KiB")
        ranks = new_ranks
        if delta < TOL:
            print(f"\nConverged after {it} iterations.")
            break

    top = np.argsort(-ranks)[:5]
    print("\nTop-5 pages:")
    for p in top:
        print(f"  page {int(p):5d}  rank {ranks[p]:.6f}")

    # Independent validation against networkx.
    import networkx as nx

    g = nx.MultiDiGraph()
    g.add_nodes_from(range(N_PAGES))
    g.add_edges_from(map(tuple, edges))
    nx_ranks = nx.pagerank(g, alpha=DAMPING, tol=1e-12, max_iter=200)
    err = max(abs(ranks[i] - nx_ranks[i]) for i in range(N_PAGES))
    print(f"\nmax |repro - networkx| = {err:.2e}")
    assert err < 1e-6, "diverged from networkx!"


if __name__ == "__main__":
    main()
