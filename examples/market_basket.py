"""Frequent-itemset mining (apriori) over cloud-bursting infrastructure.

FREERIDE's flagship workload, run level by level through the middleware:
every counting pass is one distributed execution over transactions split
between the cluster and a simulated S3, and the candidate generation /
pruning between passes happens at the head.  The mined associations are
verified against a brute-force single-machine count.

Run:  python examples/market_basket.py
"""

from repro import BurstingSession, MemoryStore, SimulatedS3Store
from repro.apps.apriori import (
    PAD,
    apriori_mine,
    generate_transactions,
    transactions_format,
)

N_BASKETS = 20_000
N_ITEMS = 80
MIN_SUPPORT = 1500


def main() -> None:
    txns = generate_transactions(
        N_BASKETS, n_items=N_ITEMS, basket_width=10,
        n_patterns=4, pattern_len=3, seed=42,
    )
    fmt = transactions_format(10)
    stores = {"local": MemoryStore("local"), "cloud": SimulatedS3Store()}
    session = BurstingSession.from_units(
        txns, fmt, stores, local_fraction=1 / 3, n_files=8,
    )

    passes = []

    def run_pass(spec):
        rr = session.run(spec)
        n_cands = "all items" if spec.candidates is None else f"{len(spec.candidates)} candidates"
        passes.append((n_cands, rr.stats.jobs_processed, rr.stats.jobs_stolen))
        return rr.result

    frequent = apriori_mine(run_pass, fmt, min_support=MIN_SUPPORT, max_len=3)

    print(f"{N_BASKETS} baskets over {N_ITEMS} items, min support {MIN_SUPPORT}\n")
    for i, (cands, jobs, stolen) in enumerate(passes, 1):
        print(f"pass {i}: counted {cands:<16} ({jobs} jobs, {stolen} stolen)")

    by_len: dict[int, list] = {}
    for itemset, support in frequent.items():
        by_len.setdefault(len(itemset), []).append((support, itemset))
    print()
    for k in sorted(by_len):
        top = sorted(by_len[k], reverse=True)[:5]
        print(f"top {k}-itemsets: " + ", ".join(f"{set(i)}={s}" for s, i in top))

    # Brute-force verification of every reported support.
    baskets = [set(r[r != PAD].tolist()) for r in txns]
    for itemset, support in frequent.items():
        actual = sum(1 for b in baskets if b.issuperset(itemset))
        assert actual == support, (itemset, actual, support)
    print(f"\nAll {len(frequent)} supports verified against brute force.")


if __name__ == "__main__":
    main()
