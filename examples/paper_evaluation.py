"""Regenerate the paper's full evaluation section from the simulator.

Runs every configuration behind Figure 3 (a-c), Table I, Table II, and
Figure 4 (a-c) at the paper's true scale (12 GB datasets, 32 files, 960
jobs, up to 64 cores) through the discrete-event simulator and prints
the tables.  Finishes with the headline comparisons against the paper.

Run:  python examples/paper_evaluation.py
"""

from repro import (
    average_slowdown_pct,
    fig3_rows,
    fig4_rows,
    format_table,
    run_paper_sweep,
    run_scalability_sweep,
    table1_rows,
    table2_rows,
)

APPS = ("knn", "kmeans", "pagerank")
FIG3 = {"knn": "3(a)", "kmeans": "3(b)", "pagerank": "3(c)"}
FIG4 = {"knn": "4(a)", "kmeans": "4(b)", "pagerank": "4(c)"}


def main() -> None:
    sweeps = {}
    for app in APPS:
        sweeps[app] = run_paper_sweep(app)
        print(format_table(
            fig3_rows(sweeps[app]),
            f"Figure {FIG3[app]} -- {app} execution breakdown (simulated s)",
        ))
        print()

    for app in APPS:
        print(format_table(table1_rows(sweeps[app]), f"Table I -- job assignment ({app})"))
        print()

    for app in APPS:
        print(format_table(table2_rows(sweeps[app]), f"Table II -- slowdowns ({app})"))
        print()

    effs = []
    for app in APPS:
        rows = fig4_rows(run_scalability_sweep(app))
        print(format_table(rows, f"Figure {FIG4[app]} -- {app} scalability (simulated s)"))
        print()
        effs.extend(r["efficiency_pct"] for r in rows if r["efficiency_pct"])

    avg_slow = average_slowdown_pct(sweeps)
    avg_eff = sum(effs) / len(effs)
    print("=" * 64)
    print(f"Average hybrid slowdown vs centralized: {avg_slow:6.2f}%   (paper: 15.55%)")
    print(f"Average speedup efficiency per doubling: {avg_eff:5.1f}%   (paper: ~81%)")


if __name__ == "__main__":
    main()
