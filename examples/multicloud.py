"""Bursting across two cloud providers plus a campus cluster.

The paper notes the design "will also be applicable if the data and/or
processing power is spread across two different cloud providers".  This
example simulates a 12 GB knn whose files are spread over a campus
storage node, AWS S3, and a second provider ("azure"), with compute at
all three sites, and shows how the scheduler's locality + stealing
policy balances the three-way layout.

Run:  python examples/multicloud.py
"""

import numpy as np

from repro.bursting.report import format_table
from repro.data.formats import RecordFormat
from repro.data.index import build_index
from repro.sim.calibration import APP_PROFILES
from repro.sim.multisite import default_three_site_topology, simulate_multisite


def make_index(fracs: dict[str, float]):
    profile = APP_PROFILES["knn"]
    fmt = RecordFormat("sim", np.uint8, (profile.unit_nbytes,))
    units_per_file = profile.dataset_units // 32
    idx = build_index(fmt, [units_per_file] * 32, chunk_units=-(-units_per_file // 30))
    return idx.with_placement(fracs)


def main() -> None:
    topo = default_three_site_topology()
    profile = APP_PROFILES["knn"]

    scenarios = [
        ("even thirds", {"campus": 0.34, "aws": 0.33, "azure": 0.33},
         {"campus": 8, "aws": 8, "azure": 8}),
        ("all data on 2 clouds", {"aws": 0.5, "azure": 0.5},
         {"campus": 8, "aws": 8, "azure": 8}),
        ("azure data, no azure cores", {"campus": 0.3, "aws": 0.3, "azure": 0.4},
         {"campus": 12, "aws": 12}),
    ]

    rows = []
    for name, fracs, cores in scenarios:
        res = simulate_multisite(make_index(fracs), topo, cores, profile)
        row = {"scenario": name, "total_s": round(res.total_s, 1)}
        for site in ("campus", "aws", "azure"):
            c = res.stats.clusters.get(site)
            row[f"{site}_jobs"] = c.jobs_processed if c else 0
            row[f"{site}_stolen"] = c.jobs_stolen if c else 0
        rows.append(row)

    print(format_table(rows, "knn over three sites (12 GB, 960 jobs, simulated)"))
    print("\nEvery scenario processes all 960 jobs; sites without local data")
    print("steal over the inter-provider links, so no rented core idles.")


if __name__ == "__main__":
    main()
