"""Quickstart: wordcount over data split between a cluster and a cloud.

Demonstrates the complete middleware path in under a minute:

1. generate a token dataset and organize it into files + chunks;
2. place half of it in a local store and half in a simulated S3;
3. run a Generalized Reduction wordcount with workers at both sites
   (head scheduler, on-demand job pools, work stealing, global reduce);
4. print the answer and the paper-style execution breakdown.

Run:  python examples/quickstart.py
"""

from repro import (
    MemoryStore,
    S3Profile,
    SimulatedS3Store,
    WordCountSpec,
    generate_tokens,
    run_threaded_bursting,
    wordcount_exact,
)


def main() -> None:
    # 1. A synthetic corpus: 200k Zipf-distributed token ids.
    tokens = generate_tokens(200_000, vocab_size=5_000, seed=7)

    # 2. Two storage sites: the cluster's store and an S3 stand-in with
    #    per-request latency and a per-connection bandwidth cap.
    stores = {
        "local": MemoryStore(location="local"),
        "cloud": SimulatedS3Store(
            profile=S3Profile(request_latency_s=0.002, per_connection_bw=200e6)
        ),
    }

    # 3. Process with 2 local + 2 cloud workers; half the bytes at each site.
    result = run_threaded_bursting(
        WordCountSpec(),
        tokens,
        stores,
        local_fraction=0.5,
        local_workers=2,
        cloud_workers=2,
        n_files=8,
        retrieval_threads=4,
    )

    # 4. Check and report.
    assert result.result == wordcount_exact(tokens), "middleware disagrees with reference!"
    top5 = sorted(result.result.items(), key=lambda kv: -kv[1])[:5]
    print("Top-5 tokens:", top5)
    print(f"Total jobs: {result.stats.jobs_processed} "
          f"(stolen across sites: {result.stats.jobs_stolen})")
    print(f"Wall clock: {result.stats.total_s:.3f}s   "
          f"global reduction: {result.stats.global_reduction_s * 1e3:.1f}ms")
    for row in result.stats.breakdown_rows():
        print(f"  {row['cluster']:>6}: processing {row['processing_s']:.3f}s  "
              f"retrieval {row['retrieval_s']:.3f}s  sync {row['sync_s']:.3f}s")


if __name__ == "__main__":
    main()
