"""Time/cost-sensitive provisioning: how many cloud cores to rent?

The paper's motivating scenario quantified: a 12 GB knn query whose data
is mostly in S3 (the 17/83 placement) must finish within a deadline; the
local cluster contributes 16 cores for free, and every extra EC2 core
costs money.  This example sweeps cloud-core options through the
simulator, prices each run under 2011 AWS prices, prints the time/cost
trade-off and the Pareto frontier, then answers both operational
questions: cheapest-under-deadline and fastest-under-budget.

Run:  python examples/deadline_provisioning.py
"""

from repro import (
    cheapest_meeting_deadline,
    fastest_within_budget,
    format_table,
    pareto_frontier,
    tradeoff_curve,
)

DEADLINE_S = 60.0
BUDGET_USD = 2.0


def main() -> None:
    points = tradeoff_curve(
        "knn",
        local_cores=16,
        local_data_fraction=1 / 6,
        cloud_core_options=(0, 4, 8, 16, 32, 64),
    )
    print(format_table(
        [p.to_dict() for p in points],
        "knn 17/83 -- time/cost trade-off (16 free local cores + rented EC2)",
    ))

    frontier = pareto_frontier(points)
    print("\nPareto frontier (time vs dollars):")
    for p in frontier:
        print(f"  {p.cloud_cores:3d} cloud cores  ->  {p.time_s:7.1f} s   ${p.cost_usd:.3f}")

    pick = cheapest_meeting_deadline(points, DEADLINE_S)
    print(f"\nDeadline {DEADLINE_S:.0f}s  -> rent {pick.cloud_cores} cloud cores "
          f"({pick.time_s:.1f}s, ${pick.cost_usd:.3f})" if pick
          else f"\nDeadline {DEADLINE_S:.0f}s -> infeasible with these options")

    pick = fastest_within_budget(points, BUDGET_USD)
    print(f"Budget  ${BUDGET_USD:.2f} -> rent {pick.cloud_cores} cloud cores "
          f"({pick.time_s:.1f}s, ${pick.cost_usd:.3f})" if pick
          else f"Budget ${BUDGET_USD:.2f} -> infeasible with these options")


if __name__ == "__main__":
    main()
