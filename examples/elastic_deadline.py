"""Elastic cloud bursting: grow the fleet mid-run to hit a deadline.

A kmeans job is underway on 8 local + 8 cloud cores when the operator
imposes a deadline.  The elastic monitor projects the finish from the
observed throughput and leases extra EC2 capacity in 4-core steps --
each step usable only after an instance-boot delay -- until the
projection clears the deadline.  We sweep deadlines, report leases,
finish times, and the EC2 bill.

Run:  python examples/elastic_deadline.py
"""

from repro import EnvironmentConfig, PricingModel, ResourceParams, format_table
from repro.bursting.driver import paper_index
from repro.sim.calibration import APP_PROFILES
from repro.sim.elastic import ElasticPolicy, simulate_elastic_run
from repro.sim.simrun import simulate_run


def main() -> None:
    env = EnvironmentConfig("h", 0.5, 8, 8)
    profile = APP_PROFILES["kmeans"]
    params = ResourceParams()
    pricing = PricingModel(billing_quantum_h=1 / 60)  # per-minute billing
    index = paper_index(profile, env)
    clusters = env.clusters(params)

    base = simulate_run(index, clusters, profile, params, seed=0)
    print(f"base fleet (8+8 cores) finishes in {base.total_s:.0f}s\n")

    rows = []
    for factor in (1.0, 0.85, 0.7, 0.55):
        deadline = base.total_s * factor
        policy = ElasticPolicy(
            deadline_s=deadline,
            check_interval_s=base.total_s / 25,
            startup_latency_s=base.total_s / 25,
            step_cores=4,
            max_extra_cores=32,
        )
        res = simulate_elastic_run(index, clusters, profile, policy, params, seed=0)
        bill = pricing.compute_cost(8 + res.extra_cores_leased, res.total_s)
        rows.append(
            {
                "deadline_s": round(deadline),
                "leased_cores": res.extra_cores_leased,
                "lease_times_s": ",".join(f"{t:.0f}" for t in res.lease_times_s) or "-",
                "finish_s": round(res.total_s, 1),
                "met": "yes" if res.met_deadline else "NO",
                "ec2_usd": round(bill, 2),
            }
        )

    print(format_table(rows, "deadline sweep (kmeans, elastic cloud side)"))
    print("\nTighter deadlines buy speed with more leased cores;")
    print("an unreachable deadline saturates the lease cap and is reported missed.")


if __name__ == "__main__":
    main()
