"""Visualize a bursting run: per-core timeline of the 17/83 knn case.

Traces every fetch and compute span of the paper's most skewed
configuration and renders an ASCII Gantt chart: watch the local cores
(top rows) burn through their small local share (``=`` fetches), then
switch to stealing S3-resident chunks over the WAN (``%``), while the
cloud cores stream steadily from S3.

Run:  python examples/trace_timeline.py
"""

from repro import EnvironmentConfig, ResourceParams
from repro.bursting.driver import paper_index
from repro.sim.calibration import APP_PROFILES
from repro.sim.simrun import simulate_run
from repro.sim.trace import Tracer, render_gantt


def main() -> None:
    env = EnvironmentConfig("env-17/83", 1 / 6, 8, 8)
    profile = APP_PROFILES["knn"]
    params = ResourceParams()
    tracer = Tracer()
    res = simulate_run(
        paper_index(profile, env), env.clusters(params), profile, params,
        seed=0, tracer=tracer,
    )

    print(f"knn env-17/83 with 8+8 cores: {res.total_s:.1f}s, "
          f"{res.stats.jobs_stolen} jobs stolen, "
          f"utilization {tracer.utilization():.0%}\n")
    print(render_gantt(tracer, width=96))

    local_steals = [
        s for s in tracer.spans
        if s.kind == "fetch" and s.stolen and s.worker.startswith("local/")
    ]
    first = min(s.t0 for s in local_steals)
    print(f"\nLocal cluster exhausts its 160 local jobs and starts stealing "
          f"from S3 at t={first:.1f}s ({len(local_steals)} stolen fetches).")


if __name__ == "__main__":
    main()
