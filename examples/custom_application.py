"""Writing your own application against the Generalized Reduction API.

Implements per-dimension summary statistics (min / max / mean /
variance) over a points dataset as a new :class:`GeneralizedReductionSpec`
-- the three pieces the paper asks an application developer for:

* a **reduction object** (here: a dense array of moment accumulators);
* a **local reduction** that folds a whole unit group in, vectorized;
* the default **global reduction** (elementwise merge) plus a custom
  ``finalize`` turning accumulated moments into statistics.

Order independence (required by the runtime, which may process chunks
in any order and steal across sites) comes free from using sums.

Run:  python examples/custom_application.py
"""

import numpy as np

from repro import (
    ArrayReductionObject,
    GeneralizedReductionSpec,
    MemoryStore,
    SimulatedS3Store,
    generate_points,
    points_format,
    run_threaded_bursting,
)


class ColumnStatsSpec(GeneralizedReductionSpec):
    """Per-dimension count/sum/sum-of-squares/min/max in one pass."""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.fmt = points_format(dim)

    def create_reduction_object(self) -> ArrayReductionObject:
        # Rows: [count, sum, sumsq, max(-x), max(x)] per dimension.  The
        # first three blocks merge by addition, the extremes by maximum
        # (storing -min as a running max), so global_reduction below
        # overrides the default single-op merge to handle both blocks.
        return ArrayReductionObject((5, self.dim), np.float64, "add", data=self._identity())

    def _identity(self) -> np.ndarray:
        ident = np.zeros((5, self.dim))
        ident[3] = -np.inf  # running max of -x  (tracks min)
        ident[4] = -np.inf  # running max of  x
        return ident

    def local_reduction(self, robj, unit_group: np.ndarray) -> None:
        data = robj.data
        data[0] += unit_group.shape[0]
        data[1] += unit_group.sum(axis=0)
        data[2] += np.einsum("ij,ij->j", unit_group, unit_group)
        np.maximum(data[3], -unit_group.min(axis=0), out=data[3])
        np.maximum(data[4], unit_group.max(axis=0), out=data[4])

    def global_reduction(self, robjs):
        # Moments merge by addition, extremes by maximum: do both blocks
        # explicitly instead of relying on one elementwise op.
        result = robjs[0]
        for other in robjs[1:]:
            result.data[:3] += other.data[:3]
            np.maximum(result.data[3:], other.data[3:], out=result.data[3:])
        return result

    def finalize(self, robj):
        count, total, sumsq, neg_min, mx = robj.value()
        mean = total / count
        var = sumsq / count - mean**2
        return {
            "count": int(count[0]),
            "mean": mean,
            "std": np.sqrt(np.maximum(var, 0.0)),
            "min": -neg_min,
            "max": mx,
        }


def main() -> None:
    dim = 5
    points = generate_points(50_000, dim, seed=31)
    stores = {"local": MemoryStore("local"), "cloud": SimulatedS3Store()}
    rr = run_threaded_bursting(
        ColumnStatsSpec(dim), points, stores,
        local_fraction=0.25, local_workers=2, cloud_workers=2,
    )
    stats = rr.result
    print(f"rows: {stats['count']}")
    for name in ("mean", "std", "min", "max"):
        print(f"{name:>5}: {np.round(stats[name], 4).tolist()}")

    # Validate against numpy on the raw array.
    assert stats["count"] == len(points)
    np.testing.assert_allclose(stats["mean"], points.mean(axis=0))
    np.testing.assert_allclose(stats["std"], points.std(axis=0), rtol=1e-9)
    np.testing.assert_allclose(stats["min"], points.min(axis=0))
    np.testing.assert_allclose(stats["max"], points.max(axis=0))
    print("\nAll statistics match numpy. Custom spec works end to end.")


if __name__ == "__main__":
    main()
