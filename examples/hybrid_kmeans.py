"""Hybrid k-means: iterative clustering over geographically split data.

The scenario from the paper's motivation: a research group's points
dataset outgrew the local storage node, so the newer two-thirds live in
S3 -- yet analysts still want to run k-means without thinking about
where bytes are.  Each Lloyd iteration is one pass of the middleware;
the reduction object (centroid sums + counts + SSE) is all that crosses
the inter-cluster link.

Run:  python examples/hybrid_kmeans.py
"""

import numpy as np

from repro import (
    KMeansSpec,
    MemoryStore,
    SimulatedS3Store,
    generate_points,
    run_threaded_bursting,
)

N_POINTS = 60_000
DIM = 8
K = 6
MAX_ITERS = 15
TOL = 1e-6


def main() -> None:
    points = generate_points(N_POINTS, DIM, n_clusters=K, spread=0.06, seed=11)
    rng = np.random.default_rng(12)
    centroids = points[rng.choice(N_POINTS, K, replace=False)].copy()

    print(f"k-means: {N_POINTS} points x {DIM} dims, k={K}; "
          f"1/3 of data local, 2/3 in simulated S3\n")
    prev_sse = np.inf
    for it in range(1, MAX_ITERS + 1):
        # Fresh stores per pass keep the example self-contained; a real
        # deployment would reuse the same distributed dataset.
        stores = {"local": MemoryStore("local"), "cloud": SimulatedS3Store()}
        rr = run_threaded_bursting(
            KMeansSpec(centroids),
            points,
            stores,
            local_fraction=1 / 3,
            local_workers=2,
            cloud_workers=2,
            n_files=6,
        )
        res = rr.result
        shift = float(np.abs(res.centroids - centroids).max())
        print(f"iter {it:2d}: sse={res.sse:12.2f}  centroid shift={shift:.2e}  "
              f"jobs={rr.stats.jobs_processed} (stolen {rr.stats.jobs_stolen})")
        centroids = res.centroids
        if prev_sse - res.sse < TOL * max(prev_sse, 1.0):
            print("\nConverged.")
            break
        prev_sse = res.sse

    print("\nFinal cluster sizes:", res.counts.tolist())
    print("Final centroids (first 3 dims):")
    for i, c in enumerate(centroids):
        print(f"  cluster {i}: {np.round(c[:3], 4).tolist()}")


if __name__ == "__main__":
    main()
