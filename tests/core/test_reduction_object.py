"""Unit tests for reduction objects."""

import numpy as np
import pytest

from repro.core.reduction_object import (
    ArrayReductionObject,
    DictReductionObject,
    TopKReductionObject,
)


class TestArrayReductionObject:
    def test_add_identity(self):
        robj = ArrayReductionObject((3,), np.float64, "add")
        assert np.array_equal(robj.value(), np.zeros(3))

    def test_min_max_identities(self):
        assert np.all(np.isinf(ArrayReductionObject((2,), np.float64, "minimum").value()))
        assert np.all(np.isneginf(ArrayReductionObject((2,), np.float64, "maximum").value()))

    def test_merge_add(self):
        a = ArrayReductionObject((2,), np.float64, "add", data=np.array([1.0, 2.0]))
        b = ArrayReductionObject((2,), np.float64, "add", data=np.array([10.0, 20.0]))
        a.merge(b)
        assert np.array_equal(a.value(), [11.0, 22.0])

    def test_merge_minimum(self):
        a = ArrayReductionObject((2,), np.float64, "minimum", data=np.array([1.0, 9.0]))
        b = ArrayReductionObject((2,), np.float64, "minimum", data=np.array([5.0, 2.0]))
        a.merge(b)
        assert np.array_equal(a.value(), [1.0, 2.0])

    def test_merge_in_place(self):
        a = ArrayReductionObject((2,))
        buf = a.data
        a.merge(ArrayReductionObject((2,), data=np.ones(2)))
        assert a.data is buf

    def test_merge_wrong_op_rejected(self):
        a = ArrayReductionObject((2,), op="add")
        b = ArrayReductionObject((2,), op="minimum")
        with pytest.raises(TypeError):
            a.merge(b)

    def test_merge_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            ArrayReductionObject((2,)).merge(DictReductionObject(lambda x, y: x + y))

    def test_copy_empty_is_identity(self):
        a = ArrayReductionObject((2, 3), np.float32, "add", data=np.ones((2, 3), np.float32))
        e = a.copy_empty()
        assert np.array_equal(e.value(), np.zeros((2, 3)))
        assert e.dtype == np.float32

    def test_nbytes(self):
        assert ArrayReductionObject((4, 2), np.float64).nbytes == 64

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            ArrayReductionObject((2,), op="multiply")

    def test_integer_min_rejected(self):
        with pytest.raises(ValueError):
            ArrayReductionObject((2,), np.int64, "minimum")

    def test_data_shape_mismatch(self):
        with pytest.raises(ValueError):
            ArrayReductionObject((2,), data=np.zeros(3))


class TestDictReductionObject:
    def make(self):
        return DictReductionObject(combiner=lambda a, b: a + b, value_nbytes=10)

    def test_update_new_and_existing(self):
        d = self.make()
        d.update("a", 1)
        d.update("a", 2)
        d.update("b", 5)
        assert d.value() == {"a": 3, "b": 5}

    def test_update_many_combines_duplicates(self):
        d = self.make()
        d.update_many(np.array([1, 2, 1, 1]), np.array([1.0, 1.0, 1.0, 1.0]))
        assert d.value() == {1: 3.0, 2: 1.0}

    def test_merge(self):
        a, b = self.make(), self.make()
        a.update("x", 1)
        b.update("x", 2)
        b.update("y", 7)
        a.merge(b)
        assert a.value() == {"x": 3, "y": 7}

    def test_nbytes_scales_with_keys(self):
        d = self.make()
        d.update("a", 1)
        d.update("b", 1)
        assert d.nbytes == 20

    def test_copy_empty(self):
        d = self.make()
        d.update("a", 1)
        assert d.copy_empty().value() == {}

    def test_custom_combiner(self):
        d = DictReductionObject(combiner=max)
        d.update("k", 3)
        d.update("k", 9)
        d.update("k", 5)
        assert d.value() == {"k": 9}

    def test_merge_wrong_type(self):
        with pytest.raises(TypeError):
            self.make().merge(ArrayReductionObject((1,)))


class TestTopKReductionObject:
    def test_keeps_k_smallest(self):
        t = TopKReductionObject(3)
        t.update_batch(np.array([5.0, 1.0, 9.0, 3.0, 7.0]), list("abcde"))
        assert [(s, p) for s, p in t.value()] == [(1.0, "b"), (3.0, "d"), (5.0, "a")]

    def test_keeps_k_largest(self):
        t = TopKReductionObject(2, largest=True)
        t.update_batch(np.array([5.0, 1.0, 9.0]), list("abc"))
        assert t.value() == [(9.0, "c"), (5.0, "a")]

    def test_incremental_batches_equal_single_batch(self):
        scores = np.arange(20.0)[::-1]
        t1 = TopKReductionObject(5)
        t1.update_batch(scores, list(range(20)))
        t2 = TopKReductionObject(5)
        t2.update_batch(scores[:7], list(range(7)))
        t2.update_batch(scores[7:], list(range(7, 20)))
        assert t1.value() == t2.value()

    def test_fewer_than_k(self):
        t = TopKReductionObject(10)
        t.update_batch(np.array([2.0, 1.0]), ["x", "y"])
        assert t.value() == [(1.0, "y"), (2.0, "x")]

    def test_merge(self):
        a = TopKReductionObject(2)
        b = TopKReductionObject(2)
        a.update_batch(np.array([4.0, 8.0]), ["a4", "a8"])
        b.update_batch(np.array([1.0, 6.0]), ["b1", "b6"])
        a.merge(b)
        assert a.value() == [(1.0, "b1"), (4.0, "a4")]

    def test_merge_k_mismatch(self):
        with pytest.raises(ValueError):
            TopKReductionObject(2).merge(TopKReductionObject(3))

    def test_merge_direction_mismatch(self):
        with pytest.raises(TypeError):
            TopKReductionObject(2).merge(TopKReductionObject(2, largest=True))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            TopKReductionObject(2).update_batch(np.array([1.0]), ["a", "b"])

    def test_nbytes(self):
        t = TopKReductionObject(5, entry_nbytes=24)
        t.update_batch(np.array([1.0, 2.0]), ["a", "b"])
        assert t.nbytes == 48

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKReductionObject(0)
