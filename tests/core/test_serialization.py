"""Unit tests for reduction-object serialization."""

import numpy as np
import pytest

from repro.core.reduction_object import (
    ArrayReductionObject,
    DictReductionObject,
    TopKReductionObject,
)
from repro.core.serialization import (
    deserialize_robj,
    serialize_robj,
    serialized_nbytes,
)


class TestRoundtrips:
    def test_array_roundtrip(self):
        r = ArrayReductionObject((3,), np.float64, "add", data=np.array([1.0, 2.0, 3.0]))
        back = deserialize_robj(serialize_robj(r))
        assert isinstance(back, ArrayReductionObject)
        assert np.array_equal(back.value(), r.value())
        assert back.op == "add"

    def test_dict_roundtrip(self):
        from repro.core.combiners import get_combiner

        r = DictReductionObject(get_combiner("sum"))
        r.update("k", 5)
        back = deserialize_robj(serialize_robj(r))
        assert back.value() == {"k": 5}
        back.update("k", 2)
        assert back.value() == {"k": 7}

    def test_topk_roundtrip(self):
        r = TopKReductionObject(2)
        r.update_batch(np.array([3.0, 1.0, 2.0]), ["a", "b", "c"])
        back = deserialize_robj(serialize_robj(r))
        assert back.value() == r.value()

    def test_deserialized_merges_with_original(self):
        a = ArrayReductionObject((2,), data=np.array([1.0, 1.0]))
        b = deserialize_robj(serialize_robj(a))
        a.merge(b)
        assert np.array_equal(a.value(), [2.0, 2.0])


class TestSizes:
    def test_serialized_nbytes_positive_and_ge_payload(self):
        r = ArrayReductionObject((1000,))
        n = serialized_nbytes(r)
        assert n >= r.nbytes  # pickle adds framing on top of the data

    def test_large_object_dominated_by_data(self):
        small = serialized_nbytes(ArrayReductionObject((10,)))
        big = serialized_nbytes(ArrayReductionObject((100000,)))
        assert big > 50 * small


class TestValidation:
    def test_non_robj_payload_rejected(self):
        import pickle

        with pytest.raises(TypeError):
            deserialize_robj(pickle.dumps({"not": "a robj"}))
