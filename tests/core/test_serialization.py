"""Unit tests for reduction-object serialization."""

import numpy as np
import pytest

from repro.core.reduction_object import (
    ArrayReductionObject,
    DictReductionObject,
    TopKReductionObject,
)
from repro.core.serialization import (
    deserialize_robj,
    deserialize_robj_oob,
    serialize_robj,
    serialize_robj_oob,
    serialized_nbytes,
)


class TestRoundtrips:
    def test_array_roundtrip(self):
        r = ArrayReductionObject((3,), np.float64, "add", data=np.array([1.0, 2.0, 3.0]))
        back = deserialize_robj(serialize_robj(r))
        assert isinstance(back, ArrayReductionObject)
        assert np.array_equal(back.value(), r.value())
        assert back.op == "add"

    def test_dict_roundtrip(self):
        from repro.core.combiners import get_combiner

        r = DictReductionObject(get_combiner("sum"))
        r.update("k", 5)
        back = deserialize_robj(serialize_robj(r))
        assert back.value() == {"k": 5}
        back.update("k", 2)
        assert back.value() == {"k": 7}

    def test_topk_roundtrip(self):
        r = TopKReductionObject(2)
        r.update_batch(np.array([3.0, 1.0, 2.0]), ["a", "b", "c"])
        back = deserialize_robj(serialize_robj(r))
        assert back.value() == r.value()

    def test_deserialized_merges_with_original(self):
        a = ArrayReductionObject((2,), data=np.array([1.0, 1.0]))
        b = deserialize_robj(serialize_robj(a))
        a.merge(b)
        assert np.array_equal(a.value(), [2.0, 2.0])


class TestOutOfBand:
    def test_array_roundtrip_zero_copy(self):
        r = ArrayReductionObject((4,), np.float64, "add",
                                 data=np.array([1.0, 2.0, 3.0, 4.0]))
        meta, buffers = serialize_robj_oob(r)
        # The payload travels out of band: the in-band pickle is tiny.
        assert buffers and sum(b.nbytes for b in buffers) >= r.nbytes
        assert len(meta) < 1024
        back = deserialize_robj_oob(meta, buffers)
        assert np.array_equal(back.value(), r.value())

    def test_buffers_alias_original_memory(self):
        r = ArrayReductionObject((3,), data=np.array([1.0, 2.0, 3.0]))
        _meta, buffers = serialize_robj_oob(r)
        r.data[0] = 99.0  # no copy happened at serialization time
        joined = b"".join(bytes(b) for b in buffers)
        assert np.frombuffer(joined, dtype=np.float64)[0] == 99.0

    def test_reconstructed_aliases_provided_buffers(self):
        r = ArrayReductionObject((3,), data=np.array([1.0, 2.0, 3.0]))
        meta, buffers = serialize_robj_oob(r)
        backing = bytearray(b"".join(bytes(b) for b in buffers))
        views, off = [], 0
        for b in buffers:
            views.append(memoryview(backing)[off : off + b.nbytes])
            off += b.nbytes
        back = deserialize_robj_oob(meta, views)
        np.frombuffer(backing, dtype=np.float64)[:] = 7.0
        assert back.value()[0] == 7.0  # zero-copy over the backing store

    def test_dict_robj_goes_fully_in_band(self):
        from repro.core.combiners import get_combiner

        r = DictReductionObject(get_combiner("sum"))
        r.update("k", 5)
        meta, buffers = serialize_robj_oob(r)
        assert buffers == []
        assert deserialize_robj_oob(meta, []).value() == {"k": 5}

    def test_non_robj_payload_rejected(self):
        import pickle

        with pytest.raises(TypeError):
            deserialize_robj_oob(pickle.dumps({"not": "a robj"}, protocol=5), [])


class TestSizes:
    def test_serialized_nbytes_positive_and_ge_payload(self):
        r = ArrayReductionObject((1000,))
        n = serialized_nbytes(r)
        assert n >= r.nbytes  # pickle adds framing on top of the data

    def test_large_object_dominated_by_data(self):
        small = serialized_nbytes(ArrayReductionObject((10,)))
        big = serialized_nbytes(ArrayReductionObject((100000,)))
        assert big > 50 * small

    def test_streaming_count_matches_materialized_pickle(self):
        for r in (
            ArrayReductionObject((50000,), data=np.ones(50000)),
            TopKReductionObject(3),
        ):
            assert serialized_nbytes(r) == len(serialize_robj(r))


class TestValidation:
    def test_non_robj_payload_rejected(self):
        import pickle

        with pytest.raises(TypeError):
            deserialize_robj(pickle.dumps({"not": "a robj"}))
