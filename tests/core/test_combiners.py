"""Unit tests for the combiner registry."""

import pytest

from repro.core.combiners import COMBINERS, get_combiner, register_combiner


class TestBuiltins:
    def test_sum(self):
        assert get_combiner("sum")(2, 3) == 5

    def test_min_max(self):
        assert get_combiner("min")(2, 3) == 2
        assert get_combiner("max")(2, 3) == 3

    def test_concat(self):
        assert get_combiner("concat")([1], [2, 3]) == [1, 2, 3]

    def test_mean_pairs(self):
        total, count = get_combiner("mean")((10.0, 2), (5.0, 3))
        assert total == 15.0 and count == 5

    def test_count(self):
        assert get_combiner("count")(4, 6) == 10

    def test_all_builtins_present(self):
        assert {"sum", "min", "max", "concat", "mean", "count"} <= set(COMBINERS)


class TestRegistry:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_combiner("does-not-exist")

    def test_register_and_use(self):
        name = "test-xor-combiner"
        try:
            register_combiner(name, lambda a, b: a ^ b)
            assert get_combiner(name)(0b1100, 0b1010) == 0b0110
        finally:
            COMBINERS.pop(name, None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_combiner("sum", lambda a, b: a)
