"""Property-based tests (hypothesis) on reduction-object invariants.

The API contract (Section III-A): the final result must be independent
of (a) the order data elements are processed in and (b) the shape of the
merge tree.  These properties are what make work stealing and
out-of-order job completion safe.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction_object import (
    ArrayReductionObject,
    DictReductionObject,
    TopKReductionObject,
)

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64)


@st.composite
def float_arrays(draw, size=4):
    vals = draw(st.lists(floats, min_size=size, max_size=size))
    return np.array(vals)


class TestArrayMergeProperties:
    @given(a=float_arrays(), b=float_arrays())
    def test_add_commutative(self, a, b):
        x = ArrayReductionObject((4,), data=a.copy())
        x.merge(ArrayReductionObject((4,), data=b.copy()))
        y = ArrayReductionObject((4,), data=b.copy())
        y.merge(ArrayReductionObject((4,), data=a.copy()))
        np.testing.assert_allclose(x.value(), y.value())

    @given(a=float_arrays(), b=float_arrays(), c=float_arrays())
    def test_add_associative(self, a, b, c):
        left = ArrayReductionObject((4,), data=a.copy())
        left.merge(ArrayReductionObject((4,), data=b.copy()))
        left.merge(ArrayReductionObject((4,), data=c.copy()))
        bc = ArrayReductionObject((4,), data=b.copy())
        bc.merge(ArrayReductionObject((4,), data=c.copy()))
        right = ArrayReductionObject((4,), data=a.copy())
        right.merge(bc)
        np.testing.assert_allclose(left.value(), right.value(), rtol=1e-9, atol=1e-6)

    @given(a=float_arrays(), op=st.sampled_from(["minimum", "maximum"]))
    def test_identity_is_neutral(self, a, op):
        x = ArrayReductionObject((4,), op=op, data=a.copy())
        x.merge(ArrayReductionObject((4,), op=op))
        np.testing.assert_array_equal(x.value(), a)


class TestDictMergeProperties:
    @given(
        items=st.lists(
            st.tuples(st.integers(0, 20), st.integers(-100, 100)), max_size=50
        ),
        split=st.integers(0, 50),
    )
    def test_partitioning_invariance(self, items, split):
        """Splitting the update stream across two objects then merging
        gives the same counts as one object seeing everything."""
        split = min(split, len(items))
        one = DictReductionObject(lambda a, b: a + b)
        for k, v in items:
            one.update(k, v)
        left = DictReductionObject(lambda a, b: a + b)
        right = DictReductionObject(lambda a, b: a + b)
        for k, v in items[:split]:
            left.update(k, v)
        for k, v in items[split:]:
            right.update(k, v)
        left.merge(right)
        assert left.value() == one.value()

    @given(
        items=st.lists(
            st.tuples(st.integers(0, 10), st.integers(-100, 100)), max_size=40
        )
    )
    def test_merge_commutative(self, items):
        half = len(items) // 2
        def build(chunk):
            d = DictReductionObject(lambda a, b: a + b)
            for k, v in chunk:
                d.update(k, v)
            return d
        ab = build(items[:half])
        ab.merge(build(items[half:]))
        ba = build(items[half:])
        ba.merge(build(items[:half]))
        assert ab.value() == ba.value()


class TestTopKProperties:
    @given(
        scores=st.lists(floats, min_size=1, max_size=60, unique=True),
        k=st.integers(1, 10),
        split=st.integers(0, 60),
    )
    @settings(max_examples=60)
    def test_matches_sorted_prefix(self, scores, k, split):
        """top-k over any partitioning equals the k smallest overall."""
        split = min(split, len(scores))
        a = TopKReductionObject(k)
        b = TopKReductionObject(k)
        a.update_batch(np.array(scores[:split]), scores[:split])
        b.update_batch(np.array(scores[split:]), scores[split:])
        a.merge(b)
        expect = sorted(scores)[:k]
        got = [s for s, _ in a.value()]
        np.testing.assert_allclose(got, expect)

    @given(
        scores=st.lists(floats, min_size=1, max_size=40, unique=True),
        k=st.integers(1, 5),
    )
    @settings(max_examples=40)
    def test_batch_order_irrelevant(self, scores, k):
        fwd = TopKReductionObject(k)
        for s in scores:
            fwd.update_batch(np.array([s]), [s])
        rev = TopKReductionObject(k)
        rev.update_batch(np.array(scores[::-1]), scores[::-1])
        assert [s for s, _ in fwd.value()] == [s for s, _ in rev.value()]
