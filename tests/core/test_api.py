"""Unit tests for the generalized-reduction API plumbing."""

import numpy as np
import pytest

from repro.core.api import (
    GeneralizedReductionSpec,
    run_local_pass,
    tree_global_reduction,
    uses_default_global_reduction,
)
from repro.core.reduction_object import ArrayReductionObject
from repro.data.formats import tokens_format
from repro.data.units import iter_unit_groups


class SumSpec(GeneralizedReductionSpec):
    """Toy spec: sum of all token values."""

    def __init__(self):
        self.fmt = tokens_format()

    def create_reduction_object(self):
        return ArrayReductionObject((1,), np.float64, "add")

    def local_reduction(self, robj, unit_group):
        robj.data[0] += float(unit_group.sum())


class TestRunLocalPass:
    def test_sums_all_groups(self):
        spec = SumSpec()
        data = np.arange(100, dtype=np.int64)
        robj = run_local_pass(spec, iter_unit_groups(data, 7))
        assert robj.value()[0] == data.sum()

    def test_accepts_existing_robj(self):
        spec = SumSpec()
        robj = spec.create_reduction_object()
        robj.data[0] = 1000.0
        run_local_pass(spec, [np.array([1, 2])], robj)
        assert robj.value()[0] == 1003.0

    def test_empty_input(self):
        spec = SumSpec()
        robj = run_local_pass(spec, [])
        assert robj.value()[0] == 0.0


class TestGlobalReduction:
    def test_default_merges_pairwise(self):
        spec = SumSpec()
        robjs = []
        for v in (1.0, 2.0, 3.0):
            r = spec.create_reduction_object()
            r.data[0] = v
            robjs.append(r)
        merged = spec.global_reduction(robjs)
        assert merged.value()[0] == 6.0

    def test_empty_list_returns_identity(self):
        spec = SumSpec()
        assert spec.global_reduction([]).value()[0] == 0.0

    def test_single_object_passthrough(self):
        spec = SumSpec()
        r = spec.create_reduction_object()
        r.data[0] = 42.0
        assert spec.global_reduction([r]).value()[0] == 42.0

    def test_finalize_defaults_to_value(self):
        spec = SumSpec()
        r = spec.create_reduction_object()
        r.data[0] = 7.0
        assert spec.finalize(r)[0] == 7.0

    def test_order_independence(self):
        """proc order must not change the result (API contract)."""
        spec = SumSpec()
        data = np.arange(50, dtype=np.int64)
        fwd = run_local_pass(spec, iter_unit_groups(data, 6)).value()[0]
        rev = run_local_pass(spec, iter_unit_groups(data[::-1].copy(), 11)).value()[0]
        assert fwd == rev

    def test_inputs_not_mutated(self):
        """The default merge must not fold into robjs[0] in place --
        callers (and the tree merge) rely on inputs surviving."""
        spec = SumSpec()
        robjs = []
        for v in (1.0, 2.0, 3.0):
            r = spec.create_reduction_object()
            r.data[0] = v
            robjs.append(r)
        merged = spec.global_reduction(robjs)
        assert merged.value()[0] == 6.0
        assert [r.value()[0] for r in robjs] == [1.0, 2.0, 3.0]
        assert merged is not robjs[0]

    def test_result_never_aliases_single_input(self):
        spec = SumSpec()
        r = spec.create_reduction_object()
        r.data[0] = 42.0
        merged = spec.global_reduction([r])
        merged.data[0] = 0.0
        assert r.value()[0] == 42.0


class TestTreeGlobalReduction:
    def test_matches_sequential_fold(self):
        spec = SumSpec()
        for n in (0, 1, 2, 3, 7, 8):
            robjs = []
            for v in range(n):
                r = spec.create_reduction_object()
                r.data[0] = float(v + 1)
                robjs.append(r)
            tree = tree_global_reduction(spec, robjs)
            assert tree.value()[0] == spec.global_reduction(robjs).value()[0]
            # Inputs survive the tree merge too.
            assert [r.value()[0] for r in robjs] == [float(v + 1) for v in range(n)]

    def test_detects_default_vs_override(self):
        class Renormalizing(SumSpec):
            def global_reduction(self, robjs):
                merged = super().global_reduction(robjs)
                merged.data[:] /= 2.0
                return merged

        assert uses_default_global_reduction(SumSpec())
        assert not uses_default_global_reduction(Renormalizing())
