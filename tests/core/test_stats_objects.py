"""Unit + property tests for histogram and moments reduction objects."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats_objects import HistogramReductionObject, MomentsReductionObject

finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=64)


class TestHistogram:
    def edges(self):
        return np.linspace(0.0, 10.0, 11)

    def test_counts_match_numpy(self):
        rng = np.random.default_rng(1)
        vals = rng.uniform(0, 10, size=1000)
        h = HistogramReductionObject(self.edges())
        h.update(vals)
        expect, _ = np.histogram(vals, bins=self.edges())
        # np.histogram's last bin is closed; ours is half-open with an
        # overflow bin, and no value hits exactly 10.0 here.
        np.testing.assert_array_equal(h.counts, expect)

    def test_under_and_overflow(self):
        h = HistogramReductionObject(self.edges())
        h.update(np.array([-5.0, 0.0, 9.99, 10.0, 42.0]))
        assert h.underflow == 1
        assert h.overflow == 2
        assert h.total == 5

    def test_merge_sums_counts(self):
        a = HistogramReductionObject(self.edges())
        b = HistogramReductionObject(self.edges())
        a.update(np.array([1.5, 2.5]))
        b.update(np.array([1.7, 11.0]))
        a.merge(b)
        assert a.counts[1] == 2
        assert a.overflow == 1
        assert a.total == 4

    def test_edges_must_match_to_merge(self):
        a = HistogramReductionObject(self.edges())
        b = HistogramReductionObject(np.linspace(0, 5, 6))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_invalid_edges(self):
        with pytest.raises(ValueError):
            HistogramReductionObject(np.array([1.0]))
        with pytest.raises(ValueError):
            HistogramReductionObject(np.array([1.0, 1.0, 2.0]))

    def test_copy_empty(self):
        h = HistogramReductionObject(self.edges())
        h.update(np.array([3.0]))
        assert h.copy_empty().total == 0

    def test_empty_update(self):
        h = HistogramReductionObject(self.edges())
        h.update(np.array([]))
        assert h.total == 0

    @given(
        vals=st.lists(finite, max_size=60),
        split=st.integers(0, 60),
    )
    @settings(max_examples=50)
    def test_partition_invariance(self, vals, split):
        split = min(split, len(vals))
        edges = np.linspace(-50, 50, 21)
        one = HistogramReductionObject(edges)
        one.update(np.array(vals))
        a = HistogramReductionObject(edges)
        b = HistogramReductionObject(edges)
        a.update(np.array(vals[:split]))
        b.update(np.array(vals[split:]))
        a.merge(b)
        np.testing.assert_array_equal(a.counts, one.counts)
        assert a.underflow == one.underflow
        assert a.overflow == one.overflow


class TestMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        rows = rng.normal(size=(500, 3))
        m = MomentsReductionObject(3)
        m.update(rows)
        v = m.value()
        assert v["count"] == 500
        np.testing.assert_allclose(v["mean"], rows.mean(axis=0))
        np.testing.assert_allclose(v["std"], rows.std(axis=0))
        np.testing.assert_allclose(v["min"], rows.min(axis=0))
        np.testing.assert_allclose(v["max"], rows.max(axis=0))

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(3)
        rows = rng.normal(loc=5.0, size=(400, 2))
        one = MomentsReductionObject(2)
        one.update(rows)
        a = MomentsReductionObject(2)
        b = MomentsReductionObject(2)
        a.update(rows[:150])
        b.update(rows[150:])
        a.merge(b)
        np.testing.assert_allclose(a.value()["mean"], one.value()["mean"])
        np.testing.assert_allclose(a.value()["variance"], one.value()["variance"])

    def test_merge_with_empty_is_identity(self):
        m = MomentsReductionObject(2)
        m.update(np.ones((5, 2)))
        before = m.value()
        m.merge(MomentsReductionObject(2))
        after = m.value()
        np.testing.assert_allclose(after["mean"], before["mean"])
        assert after["count"] == before["count"]

    def test_empty_variance_is_nan(self):
        m = MomentsReductionObject(2)
        assert np.isnan(m.variance).all()

    def test_shape_validation(self):
        m = MomentsReductionObject(3)
        with pytest.raises(ValueError):
            m.update(np.ones((4, 2)))
        with pytest.raises(ValueError):
            MomentsReductionObject(0)

    def test_merge_type_validation(self):
        with pytest.raises(TypeError):
            MomentsReductionObject(2).merge(MomentsReductionObject(3))

    @given(
        data=st.lists(st.tuples(finite, finite), min_size=1, max_size=50),
        split=st.integers(0, 50),
    )
    @settings(max_examples=50)
    def test_partition_invariance(self, data, split):
        rows = np.array(data)
        split = min(split, len(rows))
        one = MomentsReductionObject(2)
        one.update(rows)
        a = MomentsReductionObject(2)
        b = MomentsReductionObject(2)
        a.update(rows[:split])
        b.update(rows[split:])
        a.merge(b)
        np.testing.assert_allclose(a.value()["mean"], one.value()["mean"], atol=1e-9)
        np.testing.assert_allclose(
            a.value()["variance"], one.value()["variance"], atol=1e-7
        )
        np.testing.assert_array_equal(a.value()["min"], one.value()["min"])
        np.testing.assert_array_equal(a.value()["max"], one.value()["max"])
