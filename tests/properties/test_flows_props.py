"""Property-based tests for the fluid flow network.

Invariants of max-min fair sharing: no link is ever oversubscribed, no
flow exceeds its cap, all flows complete, and total service time over a
single shared link is exactly ``total_bytes / capacity`` when saturated.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.flows as flows_mod
from repro.sim.events import SimEnv
from repro.sim.flows import FlowNetwork, Link


@st.composite
def flow_scenarios(draw):
    n_links = draw(st.integers(1, 3))
    caps = [draw(st.floats(10.0, 1000.0)) for _ in range(n_links)]
    n_flows = draw(st.integers(1, 8))
    flows = []
    for _ in range(n_flows):
        link_ids = draw(
            st.lists(st.integers(0, n_links - 1), min_size=1, max_size=n_links, unique=True)
        )
        nbytes = draw(st.floats(1.0, 5000.0))
        cap = draw(st.one_of(st.none(), st.floats(5.0, 500.0)))
        start = draw(st.floats(0.0, 5.0))
        flows.append((link_ids, nbytes, cap, start))
    return caps, flows


def run_scenario(caps, flow_specs, monitor=None):
    env = SimEnv()
    net = FlowNetwork(env)
    links = [Link(f"l{i}", c) for i, c in enumerate(caps)]
    finished = []

    def proc(link_ids, nbytes, cap, start):
        if start:
            yield start
        ev = net.transfer([links[i] for i in link_ids], nbytes,
                          cap if cap is not None else math.inf)
        yield ev
        finished.append(env.now)

    for spec in flow_specs:
        env.process(proc(*spec))
    if monitor is not None:
        orig = net._allocate_rates

        def wrapped():
            orig()
            monitor(net, links)

        net._allocate_rates = wrapped
    env.run()
    return finished, env.now


class TestFlowProperties:
    @given(scenario=flow_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_all_flows_complete(self, scenario):
        caps, specs = scenario
        finished, _ = run_scenario(caps, specs)
        assert len(finished) == len(specs)

    @given(scenario=flow_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_links_never_oversubscribed(self, scenario):
        caps, specs = scenario

        def monitor(net, links):
            load = {l: 0.0 for l in links}
            for f in net.flows:
                for l in f.links:
                    load[l] += f.rate
            for l, total in load.items():
                assert total <= l.capacity * (1 + 1e-9)

        run_scenario(caps, specs, monitor)

    @given(scenario=flow_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_flow_caps_respected(self, scenario):
        caps, specs = scenario

        def monitor(net, links):
            for f in net.flows:
                assert f.rate <= f.max_rate * (1 + 1e-9)

        run_scenario(caps, specs, monitor)

    @given(
        cap=st.floats(10.0, 500.0),
        sizes=st.lists(st.floats(1.0, 2000.0), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_saturated_link_conserves_bytes(self, cap, sizes):
        """All flows start at t=0 on one link: finish = sum(bytes)/cap."""
        specs = [([0], n, None, 0.0) for n in sizes]
        finished, end = run_scenario([cap], specs)
        assert end == max(finished)
        expect = sum(sizes) / cap
        assert abs(max(finished) - expect) < expect * 1e-6 + 1e-6

    @given(
        cap=st.floats(10.0, 500.0),
        nbytes=st.floats(1.0, 2000.0),
        flow_cap=st.floats(1.0, 1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_flow_exact_duration(self, cap, nbytes, flow_cap):
        specs = [([0], nbytes, flow_cap, 0.0)]
        finished, _ = run_scenario([cap], specs)
        expect = nbytes / min(cap, flow_cap)
        assert abs(finished[0] - expect) < expect * 1e-6 + 1e-6
