"""Property-based tests for the head scheduler.

Invariants: every job is assigned exactly once regardless of the
interleaving of cluster requests; locality is strict (no stealing while
local jobs remain); accounting always balances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.formats import tokens_format
from repro.data.index import build_index
from repro.runtime.jobs import jobs_from_index
from repro.runtime.scheduler import HeadScheduler


@st.composite
def scheduler_scenarios(draw):
    n_files = draw(st.integers(1, 6))
    units_per_file = draw(st.integers(1, 20))
    chunk_units = draw(st.integers(1, 8))
    local_frac = draw(st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]))
    idx = build_index(tokens_format(), [units_per_file] * n_files, chunk_units=chunk_units)
    fractions = {}
    if local_frac > 0:
        fractions["local"] = local_frac
    if local_frac < 1:
        fractions["cloud"] = 1 - local_frac
    jobs = jobs_from_index(idx.with_placement(fractions))
    # Random interleaving of requesters and batch sizes.
    requests = draw(
        st.lists(
            st.tuples(st.sampled_from(["local", "cloud"]), st.integers(1, 5)),
            min_size=1,
            max_size=80,
        )
    )
    return jobs, requests


class TestSchedulerProperties:
    @given(scenario=scheduler_scenarios())
    @settings(max_examples=80, deadline=None)
    def test_every_job_assigned_exactly_once(self, scenario):
        jobs, requests = scenario
        sched = HeadScheduler(jobs)
        assigned = []
        for cluster, batch in requests:
            got = sched.request_jobs(cluster, batch)
            assigned.extend(got)
            for j in got:
                sched.complete(j)
        # Drain whatever the random interleaving left over.
        while True:
            got = sched.request_jobs("local", 3)
            if not got:
                break
            assigned.extend(got)
            for j in got:
                sched.complete(j)
        assert sorted(j.job_id for j in assigned) == sorted(j.job_id for j in jobs)
        assert len(assigned) == len(set(j.job_id for j in assigned))
        assert sched.all_done

    @given(scenario=scheduler_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_no_stealing_while_local_jobs_remain(self, scenario):
        jobs, requests = scenario
        sched = HeadScheduler(jobs)
        for cluster, batch in requests:
            remaining_local = {
                j.job_id
                for q in sched._by_file.values()
                for j in q
                if j.location == cluster
            }
            got = sched.request_jobs(cluster, batch)
            if remaining_local:
                assert all(j.location == cluster for j in got)
            for j in got:
                sched.complete(j)

    @given(scenario=scheduler_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_batches_are_single_file_consecutive(self, scenario):
        jobs, requests = scenario
        sched = HeadScheduler(jobs)
        for cluster, batch in requests:
            got = sched.request_jobs(cluster, batch)
            if got:
                assert len({j.file_id for j in got}) == 1
                ids = [j.job_id for j in got]
                assert ids == list(range(ids[0], ids[0] + len(ids)))
            for j in got:
                sched.complete(j)

    @given(scenario=scheduler_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_counters_balance(self, scenario):
        jobs, requests = scenario
        sched = HeadScheduler(jobs)
        total_assigned = 0
        for cluster, batch in requests:
            got = sched.request_jobs(cluster, batch)
            total_assigned += len(got)
            assert sched.remaining + sched.outstanding + (
                total_assigned - sched.outstanding
            ) == len(jobs)
            for j in got:
                sched.complete(j)
        assert sum(sched.assigned_counts.values()) == total_assigned
