"""Property-based tests on whole simulated runs.

For arbitrary environment shapes (data skew, core counts, seeds) the
simulator must uphold its accounting invariants: every job processed
exactly once, timers internally consistent, and runs reproducible.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import simulate_environment
from repro.sim.calibration import PAPER_N_JOBS


@st.composite
def environments(draw):
    local_frac = draw(st.sampled_from([0.0, 1 / 6, 1 / 3, 0.5, 2 / 3, 1.0]))
    local = draw(st.sampled_from([0, 2, 4, 8]))
    cloud = draw(st.sampled_from([0, 2, 4, 8]))
    if local == 0 and cloud == 0:
        local = 4
    return EnvironmentConfig("prop", local_frac, local, cloud)


@st.composite
def runs(draw):
    env = draw(environments())
    app = draw(st.sampled_from(["knn", "kmeans", "pagerank"]))
    seed = draw(st.integers(0, 50))
    return app, env, seed


class TestSimulationInvariants:
    @given(scenario=runs())
    @settings(max_examples=25, deadline=None)
    def test_every_job_processed_exactly_once(self, scenario):
        app, env, seed = scenario
        res = simulate_environment(app, env, seed=seed)
        assert res.stats.jobs_processed == PAPER_N_JOBS
        per_cluster = sum(c.jobs_processed for c in res.stats.clusters.values())
        assert per_cluster == PAPER_N_JOBS

    @given(scenario=runs())
    @settings(max_examples=25, deadline=None)
    def test_timer_consistency(self, scenario):
        app, env, seed = scenario
        res = simulate_environment(app, env, seed=seed)
        assert res.total_s >= res.stats.processing_end_s >= 0
        assert res.stats.global_reduction_s == pytest.approx(
            res.total_s - res.stats.processing_end_s
        )
        for c in res.stats.clusters.values():
            assert 0 <= c.idle_s <= res.total_s
            assert c.finished_at <= res.stats.processing_end_s + 1e-9
            for w in c.workers:
                assert w.jobs_stolen <= w.jobs_processed
                # Busy time fits inside the worker's active span.
                assert w.busy_s <= w.finished_at + 1e-9
                assert w.sync_s == pytest.approx(res.total_s - w.finished_at)

    @given(scenario=runs())
    @settings(max_examples=10, deadline=None)
    def test_reproducible(self, scenario):
        app, env, seed = scenario
        a = simulate_environment(app, env, seed=seed)
        b = simulate_environment(app, env, seed=seed)
        assert a.total_s == b.total_s
        assert a.stats.jobs_stolen == b.stats.jobs_stolen

    @given(scenario=runs())
    @settings(max_examples=20, deadline=None)
    def test_stealing_only_without_local_data(self, scenario):
        """A cluster co-located with ALL the data never steals."""
        app, env, seed = scenario
        res = simulate_environment(app, env, seed=seed)
        if env.local_data_fraction == 1.0 and "local" in res.stats.clusters:
            assert res.stats.clusters["local"].jobs_stolen == 0
        if env.local_data_fraction == 0.0 and "cloud" in res.stats.clusters:
            assert res.stats.clusters["cloud"].jobs_stolen == 0
