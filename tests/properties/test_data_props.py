"""Property-based tests for data organization.

Invariants: encode/decode is the identity, chunk plans tile files
exactly, placement conserves bytes, and end-to-end dataset writes
round-trip for arbitrary shapes and chunkings.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.chunks import plan_file_chunks
from repro.data.dataset import read_all_units, write_dataset
from repro.data.formats import RecordFormat, points_format
from repro.data.index import build_index
from repro.storage.local import MemoryStore

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestFormatRoundtrip:
    @given(
        data=arrays(np.float64, st.tuples(st.integers(0, 40), st.just(3)), elements=finite)
    )
    @settings(max_examples=50)
    def test_points_roundtrip(self, data):
        fmt = points_format(3)
        assert np.array_equal(fmt.decode(fmt.encode(data)), data)

    @given(
        data=arrays(np.int64, st.integers(0, 100)),
    )
    @settings(max_examples=50)
    def test_scalar_roundtrip(self, data):
        fmt = RecordFormat("toks", np.int64)
        assert np.array_equal(fmt.decode(fmt.encode(data)), data)


class TestChunkPlanProperties:
    @given(file_units=st.integers(0, 500), chunk_units=st.integers(1, 64))
    @settings(max_examples=100)
    def test_chunks_tile_file_exactly(self, file_units, chunk_units):
        chunks = plan_file_chunks(
            file_id=0, key="k", file_units=file_units, unit_nbytes=8,
            chunk_units=chunk_units, location="local",
        )
        assert sum(c.n_units for c in chunks) == file_units
        pos = 0
        for c in chunks:
            assert c.offset == pos
            pos += c.nbytes
        assert pos == file_units * 8
        # All but the last chunk are full-size.
        for c in chunks[:-1]:
            assert c.n_units == chunk_units


class TestPlacementProperties:
    @given(
        n_files=st.integers(1, 16),
        frac=st.floats(0.01, 0.99),
        units=st.integers(1, 50),
    )
    @settings(max_examples=80)
    def test_placement_conserves_files_and_bytes(self, n_files, frac, units):
        idx = build_index(points_format(2), [units] * n_files, chunk_units=7)
        placed = idx.with_placement({"local": frac, "cloud": 1 - frac})
        assert len(placed.files) == n_files
        assert placed.nbytes == idx.nbytes
        assert len(placed.chunks) == len(idx.chunks)
        local_bytes = sum(f.nbytes for f in placed.files if f.location == "local")
        # File-granularity placement: within one file of the target.
        assert abs(local_bytes - frac * idx.nbytes) <= units * 16 + 1e-9


class TestIndexSerializationProperties:
    """DataIndex.to_dict/from_dict is the identity on everything the
    head plans from: meta, per-source encoded ranges (replicas), and
    per-chunk statistics."""

    @given(
        n=st.integers(4, 120),
        dim=st.integers(1, 4),
        n_files=st.integers(1, 4),
        chunk_units=st.integers(1, 24),
        codec=st.sampled_from([None, "zlib"]),
        replicas=st.integers(0, 2),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_index_roundtrip_identity(
        self, n, dim, n_files, chunk_units, codec, replicas, seed
    ):
        from repro.data.dataset import distribute_dataset, replicate_dataset
        from repro.data.index import DataIndex

        if n < n_files:
            n = n_files
        rng = np.random.default_rng(seed)
        units = rng.normal(size=(n, dim))
        stores = {
            "local": MemoryStore("local"),
            "cloud": MemoryStore("cloud"),
            "backup": MemoryStore("backup"),
        }
        idx = write_dataset(
            units, points_format(dim), stores["local"],
            n_files=n_files, chunk_units=chunk_units, codec=codec,
        )
        idx = distribute_dataset(
            idx, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
        )
        if replicas:
            idx = replicate_dataset(idx, stores, n_replicas=replicas)
        back = DataIndex.from_json(idx.to_json())
        assert back.meta == idx.meta
        assert back.files == idx.files
        assert len(back.chunks) == len(idx.chunks)
        for a, b in zip(idx.chunks, back.chunks):
            assert b == a  # includes sources (enc ranges) and stats
            assert b.sources == a.sources
            assert b.stats == a.stats
            assert (b.stats is None) == (a.stats is None)
        assert back.fmt.name == idx.fmt.name
        assert back.nbytes == idx.nbytes


class TestDatasetRoundtripProperties:
    @given(
        n=st.integers(4, 200),
        dim=st.integers(1, 6),
        n_files=st.integers(1, 4),
        chunk_units=st.integers(1, 32),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_identity(self, n, dim, n_files, chunk_units, seed):
        if n < n_files:
            n = n_files
        rng = np.random.default_rng(seed)
        units = rng.normal(size=(n, dim))
        store = MemoryStore()
        idx = write_dataset(
            units, points_format(dim), store, n_files=n_files, chunk_units=chunk_units
        )
        assert np.array_equal(read_all_units(idx, {"local": store}), units)
        assert idx.n_units == n
