"""Property-based tests for the erasure-coding layer.

Invariants: stripe/reassemble is the identity from any k surviving
fragments (for every loss pattern of at most m fragments), fragment
sizes follow the ceil-division padding rule, and undecodable inputs
fail loudly instead of corrupting data.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.erasure import (
    ErasureError,
    fragment_nbytes,
    reassemble,
    stripe_frame,
)


def frames(min_size=1, max_size=200):
    return st.binary(min_size=min_size, max_size=max_size)


class TestStripeRoundtrip:
    @given(
        frame=frames(),
        k=st.integers(1, 6),
        m=st.integers(0, 3),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_loss_pattern_up_to_m_recovers(self, frame, k, m, data):
        if k + m < 2:
            m = 1
        frags = stripe_frame(frame, k, m)
        assert len(frags) == k + m
        n_lost = data.draw(st.integers(0, m))
        lost = data.draw(
            st.sampled_from(
                list(itertools.combinations(range(k + m), n_lost))
            )
            if n_lost
            else st.just(())
        )
        survivors = {i: f for i, f in enumerate(frags) if i not in lost}
        buf, used_parity = reassemble(survivors, k, m, len(frame))
        assert bytes(buf) == frame
        # Parity math only runs when a data fragment was actually lost.
        assert used_parity == any(i < k for i in lost)

    @given(frame=frames(), k=st.integers(1, 6), m=st.integers(1, 3))
    @settings(max_examples=100, deadline=None)
    def test_every_single_loss_exhaustively(self, frame, k, m):
        frags = stripe_frame(frame, k, m)
        for lost in range(k + m):
            survivors = {i: f for i, f in enumerate(frags) if i != lost}
            buf, _ = reassemble(survivors, k, m, len(frame))
            assert bytes(buf) == frame

    @given(frame=frames(), k=st.integers(2, 6))
    @settings(max_examples=100, deadline=None)
    def test_lengths_not_divisible_by_k(self, frame, k):
        # The padding rule must round-trip regardless of divisibility;
        # hypothesis covers both divisible and ragged lengths.
        frags = stripe_frame(frame, k, 2)
        frag = fragment_nbytes(len(frame), k)
        assert all(len(f) == frag for f in frags)
        buf, _ = reassemble(dict(enumerate(frags)), k, 2, len(frame))
        assert bytes(buf) == frame


class TestErasureFailures:
    @given(frame=frames(), k=st.integers(1, 5), m=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_fewer_than_k_fragments_is_an_error(self, frame, k, m):
        if k + m < 2:
            m = 1
        frags = stripe_frame(frame, k, m)
        survivors = {i: frags[i] for i in range(k - 1)}
        with pytest.raises(ErasureError):
            reassemble(survivors, k, m, len(frame))

    @given(frame=frames(min_size=4), k=st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_wrong_fragment_size_rejected(self, frame, k):
        frags = stripe_frame(frame, k, 1)
        bad = dict(enumerate(frags))
        bad[0] = bad[0] + b"\x00"
        with pytest.raises(ErasureError):
            reassemble(bad, k, 1, len(frame))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ErasureError):
            stripe_frame(b"abc", 0, 2)
        with pytest.raises(ErasureError):
            stripe_frame(b"abc", 2, -1)
        with pytest.raises(ErasureError):
            fragment_nbytes(0, 2)


class TestReassembleIntoBuffer:
    @given(frame=frames(), k=st.integers(1, 4), m=st.integers(1, 2))
    @settings(max_examples=60, deadline=None)
    def test_out_buffer_filled_in_place(self, frame, k, m):
        frags = stripe_frame(frame, k, m)
        out = bytearray(len(frame))
        buf, _ = reassemble(dict(enumerate(frags)), k, m, len(frame), out=out)
        assert buf is out
        assert bytes(out) == frame
