"""Property-based tests for the pricing and cost-accounting layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.pricing import PricingModel

rates = st.floats(min_value=0.001, max_value=100.0, allow_nan=False)
durations = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
cores = st.integers(0, 256)


class TestPricingProperties:
    @given(price=rates, c=cores, d1=durations, d2=durations)
    @settings(max_examples=100)
    def test_compute_cost_monotone_in_duration(self, price, c, d1, d2):
        p = PricingModel(instance_hour_usd=price)
        lo, hi = sorted((d1, d2))
        assert p.compute_cost(c, lo) <= p.compute_cost(c, hi) + 1e-12

    @given(price=rates, d=durations, c1=cores, c2=cores)
    @settings(max_examples=100)
    def test_compute_cost_monotone_in_cores(self, price, d, c1, c2):
        p = PricingModel(instance_hour_usd=price)
        lo, hi = sorted((c1, c2))
        assert p.compute_cost(lo, d) <= p.compute_cost(hi, d) + 1e-12

    @given(price=rates, c=st.integers(1, 256), d=st.floats(1.0, 1e6))
    @settings(max_examples=100)
    def test_billing_quantum_never_undercharges(self, price, c, d):
        """Whole-hour billing is always >= exact per-second billing."""
        hourly = PricingModel(instance_hour_usd=price, billing_quantum_h=1.0)
        exact = price * hourly.instances_for(c) * (d / 3600.0)
        assert hourly.compute_cost(c, d) >= exact - 1e-9

    @given(c=cores)
    @settings(max_examples=100)
    def test_instances_cover_cores_without_waste(self, c):
        p = PricingModel(cores_per_instance=2)
        n = p.instances_for(c)
        assert n * 2 >= c
        assert (n - 1) * 2 < c or n == 0

    @given(n1=st.integers(0, 10**6), n2=st.integers(0, 10**6))
    @settings(max_examples=60)
    def test_request_cost_additive(self, n1, n2):
        p = PricingModel()
        assert p.request_cost(n1) + p.request_cost(n2) == pytest.approx(
            p.request_cost(n1 + n2)
        )

    @given(b1=st.floats(0, 1e12), b2=st.floats(0, 1e12))
    @settings(max_examples=60)
    def test_egress_cost_additive(self, b1, b2):
        p = PricingModel()
        assert p.egress_cost(b1) + p.egress_cost(b2) == pytest.approx(
            p.egress_cost(b1 + b2)
        )


class TestMultiSiteRoutingProperties:
    @given(threads=st.integers(1, 32))
    @settings(max_examples=30, deadline=None)
    def test_caps_scale_linearly_with_threads(self, threads):
        from repro.sim.multisite import default_three_site_topology

        topo = default_three_site_topology()
        one = topo.fetch_path("campus", "aws", 1).per_flow_cap
        many = topo.fetch_path("campus", "aws", threads).per_flow_cap
        assert many == pytest.approx(threads * one)

    @given(
        a=st.sampled_from(["campus", "aws", "azure"]),
        b=st.sampled_from(["campus", "aws", "azure"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_routes_exist_and_are_bounded(self, a, b):
        import math

        from repro.sim.multisite import default_three_site_topology

        topo = default_three_site_topology()
        path = topo.fetch_path(a, b, 4)
        # Every route is bounded by a finite link or a finite cap.
        assert path.links or not math.isinf(path.per_flow_cap)
        assert path.latency_s >= 0
        if a != b:
            assert len(path.links) == 2  # remote reads cross a WAN
