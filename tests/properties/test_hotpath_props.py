"""Property-based tests for the zero-copy decode->fold hot path.

Invariants, for every registered codec crossed with every record
format: a chunk that goes units -> RecordFormat.encode -> encode_chunk
-> decode_chunk -> RecordFormat.decode comes back **bit-exact**, the
decoded array is **read-only** (``OWNDATA`` False, writes raise), and
for the identity codec the decoded array **aliases the frame buffer**
itself -- no copy anywhere between the wire bytes and the fold kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.formats import RecordFormat, edges_format, points_format, tokens_format
from repro.storage.codecs import CODEC_NAMES, decode_chunk, encode_chunk, lz4_available

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)

FORMATS = {
    "points3": points_format(3),
    "edges": edges_format(),
    "tokens": tokens_format(),
    "f32x5": RecordFormat("f32x5", np.float32, (5,)),
}


def units_strategy(fmt: RecordFormat):
    shape = st.tuples(st.integers(0, 64), *map(st.just, fmt.record_shape))
    if np.issubdtype(fmt.dtype, np.floating):
        # width=64 floats also fit float32 after the encode cast; use
        # the format's own dtype so the round-trip is bit-exact.
        return arrays(fmt.dtype, shape, elements=st.floats(
            allow_nan=False, allow_infinity=False, width=32
        ))
    return arrays(fmt.dtype, shape)


def codec_params():
    for codec in CODEC_NAMES:
        if codec == "lz4" and not lz4_available():
            # resolve_codec would silently fall back to zlib; the
            # decode side is covered by the zlib case.
            continue
        for fname in FORMATS:
            yield pytest.param(codec, fname, id=f"{codec}-{fname}")


@pytest.mark.parametrize("codec,fname", list(codec_params()))
class TestHotPathRoundtrip:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_bit_exact_and_readonly(self, codec, fname, data):
        fmt = FORMATS[fname]
        units = data.draw(units_strategy(fmt))
        frame = encode_chunk(fmt.encode(units), codec, fmt.unit_nbytes)
        raw = decode_chunk(frame)
        out = fmt.decode(raw)
        # Bit-exact: compare the raw bytes, not just values, so -0.0
        # vs 0.0 or NaN payload changes would be caught.
        assert out.tobytes() == np.ascontiguousarray(
            units, dtype=fmt.dtype
        ).tobytes()
        assert out.shape == units.shape
        assert not out.flags.owndata
        assert not out.flags.writeable
        if out.size:
            with pytest.raises(ValueError):
                out[tuple(0 for _ in out.shape)] = 1

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_identity_decode_aliases_frame(self, codec, fname, data):
        if codec != "identity":
            pytest.skip("aliasing is the identity codec's contract")
        fmt = FORMATS[fname]
        units = data.draw(units_strategy(fmt))
        frame = encode_chunk(fmt.encode(units), "identity", fmt.unit_nbytes)
        raw = decode_chunk(frame)
        assert isinstance(raw, memoryview) and raw.readonly
        out = fmt.decode(raw)
        if out.size:
            # The decoded array's memory IS the frame's payload region.
            frame_arr = np.frombuffer(frame, dtype=np.uint8)
            assert np.shares_memory(out, frame_arr)
